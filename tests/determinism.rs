//! Reproducibility: identical seeds must reproduce identical results
//! end-to-end, and different seeds must actually differ.

use oat::analysis::experiment::{run, ExperimentConfig};
use oat::analysis::report::render_all;

fn config(seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::small();
    config.trace.scale = 0.003;
    config.trace.catalog_scale = 0.01;
    config.trace.seed = seed;
    config
}

#[test]
fn same_seed_same_report() {
    let a = run(&config(42)).unwrap();
    let b = run(&config(42)).unwrap();
    assert_eq!(a.records, b.records);
    // The rendered report covers every figure — byte-identical output is
    // the strongest end-to-end determinism check.
    assert_eq!(render_all(&a), render_all(&b));
}

#[test]
fn different_seed_different_trace() {
    let a = run(&config(1)).unwrap();
    let b = run(&config(2)).unwrap();
    assert_ne!(
        render_all(&a),
        render_all(&b),
        "different seeds must produce different traces"
    );
}

#[test]
fn scale_scales_volume() {
    let small = run(&config(7)).unwrap();
    let mut larger_config = config(7);
    larger_config.trace.scale *= 4.0;
    let larger = run(&larger_config).unwrap();
    let ratio = larger.records as f64 / small.records as f64;
    assert!(
        (2.0..8.0).contains(&ratio),
        "4x scale should roughly 4x the records, got ratio {ratio:.2}"
    );
}
