//! Cross-crate pipeline integrity: generate → simulate → persist → reload
//! → analyze must be lossless in both wire formats.

use oat::analysis::analyzers::composition::CompositionAnalyzer;
use oat::analysis::analyzers::run_analyzer;
use oat::analysis::SiteMap;
use oat::cdnsim::{SimConfig, Simulator};
use oat::httplog::io::{read_all, write_all, Format};
use oat::httplog::LogStreamExt;
use oat::workload::{generate, TraceConfig};

fn records() -> (
    Vec<oat::httplog::LogRecord>,
    Vec<oat::workload::SiteProfile>,
) {
    let config = TraceConfig::small()
        .with_scale(0.002)
        .with_catalog_scale(0.01)
        .with_seed(99);
    let trace = generate(&config).unwrap();
    let sim = Simulator::new(&SimConfig::default_edge());
    (sim.replay(trace.requests), config.sites)
}

#[test]
fn both_formats_roundtrip_generated_traffic() {
    let (records, _) = records();
    for format in [Format::Text, Format::Binary] {
        let mut buf = Vec::new();
        let written = write_all(&mut buf, format, &records).unwrap();
        assert_eq!(written as usize, records.len());
        let back = read_all(&buf[..], format).unwrap();
        assert_eq!(back, records, "{format:?} must be lossless");
    }
}

#[test]
fn analysis_identical_on_reloaded_records() {
    let (records, sites) = records();
    let map = SiteMap::from_profiles(&sites);
    let direct = run_analyzer(CompositionAnalyzer::new(map.clone()), &records);

    let mut buf = Vec::new();
    write_all(&mut buf, Format::Text, &records).unwrap();
    let reloaded = read_all(&buf[..], Format::Text).unwrap();
    let indirect = run_analyzer(CompositionAnalyzer::new(map), &reloaded);

    assert_eq!(direct, indirect);
}

#[test]
fn stream_filters_compose_over_real_traffic() {
    let (records, sites) = records();
    let publisher = sites[0].publisher;
    let window_start = records[records.len() / 4].timestamp;
    let window_end = records[records.len() / 2].timestamp;

    let filtered: Vec<_> = records
        .iter()
        .cloned()
        .publisher(publisher)
        .time_window(window_start..window_end)
        .content_class(oat::httplog::ContentClass::Video)
        .collect();
    assert!(
        !filtered.is_empty(),
        "V-1 video traffic exists in the window"
    );
    for r in &filtered {
        assert_eq!(r.publisher, publisher);
        assert!((window_start..window_end).contains(&r.timestamp));
        assert_eq!(r.content_class(), oat::httplog::ContentClass::Video);
    }
}

#[test]
fn simulator_stats_match_record_stream() {
    let config = TraceConfig::small()
        .with_scale(0.002)
        .with_catalog_scale(0.01)
        .with_seed(123);
    let trace = generate(&config).unwrap();
    let sim = Simulator::new(&SimConfig::default_edge());
    let records = sim.replay(trace.requests);
    let stats = sim.stats();

    assert_eq!(stats.requests, records.len() as u64);
    let bytes: u64 = records.iter().map(|r| r.bytes_served).sum();
    assert_eq!(stats.bytes_served, bytes);
    let hits = records
        .iter()
        .filter(|r| r.status.carries_body() && r.cache_status.is_hit())
        .count() as u64;
    assert_eq!(stats.hits, hits);
    // Every record's hour fits the configured trace window.
    let end = config.start_unix + config.duration_secs;
    assert!(records
        .iter()
        .all(|r| (config.start_unix..=end).contains(&r.timestamp)));
}

#[test]
fn ground_truth_catalog_consistency() {
    let config = TraceConfig::small()
        .with_scale(0.002)
        .with_catalog_scale(0.01)
        .with_seed(5);
    let trace = generate(&config).unwrap();
    // Requests only reference catalog objects, with matching sizes/formats.
    for (i, site) in config.sites.iter().enumerate() {
        let by_id: std::collections::HashMap<_, _> = trace.catalogs[i]
            .objects()
            .iter()
            .map(|o| (o.id, o))
            .collect();
        for req in trace
            .requests
            .iter()
            .filter(|r| r.publisher == site.publisher)
        {
            let obj = by_id.get(&req.object).expect("request references catalog");
            assert_eq!(req.object_size, obj.size);
            assert_eq!(req.format, obj.format);
        }
    }
}
