//! Cross-crate cache studies: ablation invariants on real generated
//! traffic (not micro-benchmarks — correctness relations).

use oat::cdnsim::cache::{CachePolicy, LruCache, SlruCache, TieredCache};
use oat::cdnsim::{cacheable_key, plan_push, PolicyKind, SimConfig, Simulator};
use oat::workload::{generate, TraceConfig};

fn trace() -> oat::workload::Trace {
    let config = TraceConfig::small()
        .with_scale(0.004)
        .with_catalog_scale(0.015)
        .with_seed(2024);
    generate(&config).unwrap()
}

fn hit_ratio(policy: PolicyKind, capacity: u64, requests: Vec<oat::httplog::Request>) -> f64 {
    let sim = Simulator::new(
        &SimConfig::default_edge()
            .with_policy(policy)
            .with_capacity(capacity),
    );
    sim.replay(requests);
    sim.stats().hit_ratio().unwrap_or(0.0)
}

#[test]
fn infinite_cache_upper_bounds_every_policy() {
    let trace = trace();
    let ceiling = hit_ratio(PolicyKind::Infinite, u64::MAX, trace.requests.clone());
    assert!(
        ceiling > 0.5,
        "compulsory-miss ceiling is high: {ceiling:.3}"
    );
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Fifo,
        PolicyKind::TwoQ,
        PolicyKind::Gdsf,
        PolicyKind::Slru,
    ] {
        let ratio = hit_ratio(policy, 500_000_000, trace.requests.clone());
        assert!(
            ratio <= ceiling + 1e-9,
            "{policy}: bounded cache cannot beat the infinite ceiling"
        );
        assert!(ratio > 0.0, "{policy}: some hits expected");
    }
}

#[test]
fn more_capacity_never_hurts_lru_much() {
    // LRU is not strictly monotone in capacity for arbitrary traces, but on
    // this workload a 16x capacity increase must help substantially.
    let trace = trace();
    let small = hit_ratio(PolicyKind::Lru, 250_000_000, trace.requests.clone());
    let large = hit_ratio(PolicyKind::Lru, 4_000_000_000, trace.requests.clone());
    assert!(
        large > small + 0.05,
        "capacity should buy hit ratio: {small:.3} -> {large:.3}"
    );
}

#[test]
fn tiered_cache_beats_unified_on_mixed_sizes() {
    // The paper's §IV-B suggestion: small objects deserve their own tier so
    // video churn cannot evict thumbnails.
    let trace = trace();
    let capacity = 400_000_000u64;

    let run = |cache: &mut dyn CachePolicy| {
        let (mut hits, mut total) = (0u64, 0u64);
        for req in &trace.requests {
            if let Some((key, size)) = cacheable_key(req) {
                total += 1;
                hits += u64::from(cache.request(key, size, req.timestamp));
            }
        }
        hits as f64 / total.max(1) as f64
    };

    let mut unified = LruCache::new(capacity);
    let unified_ratio = run(&mut unified);
    let mut tiered = TieredCache::new(
        Box::new(SlruCache::new(capacity * 3 / 10)),
        Box::new(LruCache::new(capacity * 7 / 10)),
        1_000_000,
    );
    let tiered_ratio = run(&mut tiered);
    assert!(
        tiered_ratio > unified_ratio,
        "tiered ({tiered_ratio:.3}) should beat unified ({unified_ratio:.3})"
    );
}

#[test]
fn push_placement_lifts_hit_ratio() {
    let trace = trace();
    let split = trace.config.start_unix + 86_400;
    let day1: Vec<_> = trace
        .requests
        .iter()
        .filter(|r| r.timestamp < split)
        .cloned()
        .collect();
    let rest: Vec<_> = trace
        .requests
        .iter()
        .filter(|r| r.timestamp >= split)
        .cloned()
        .collect();
    assert!(!day1.is_empty() && !rest.is_empty());

    let base_sim = Simulator::new(&SimConfig::default_edge().with_capacity(1_000_000_000));
    base_sim.replay(rest.clone());
    let base = base_sim.stats().hit_ratio().unwrap();

    let plan = plan_push(&day1, 200_000_000);
    assert!(!plan.is_empty());
    // Plan is ranked by observed popularity.
    for w in plan.windows(2) {
        assert!(w[0].observed_requests >= w[1].observed_requests);
    }
    let push_sim = Simulator::new(&SimConfig::default_edge().with_capacity(1_000_000_000));
    push_sim.preload(plan.iter().map(|p| (p.key, p.size)));
    push_sim.replay(rest);
    let pushed = push_sim.stats().hit_ratio().unwrap();
    assert!(
        pushed >= base,
        "pushing day-1 favourites must not hurt: {base:.3} -> {pushed:.3}"
    );
}

#[test]
fn cooperative_caching_lifts_hit_ratio() {
    let trace = trace();
    let plain = Simulator::new(&SimConfig::default_edge().with_capacity(500_000_000));
    plain.replay(trace.requests.clone());
    let isolated = plain.stats().hit_ratio().unwrap();

    let coop_sim = Simulator::new(
        &SimConfig::default_edge()
            .with_capacity(500_000_000)
            .with_cooperative(),
    );
    coop_sim.replay(trace.requests.clone());
    let cooperative = coop_sim.stats().hit_ratio().unwrap();
    assert!(
        cooperative > isolated,
        "sibling lookups should lift hit ratio: {isolated:.3} -> {cooperative:.3}"
    );
}

#[test]
fn parent_tier_beats_flat_edges_at_equal_budget() {
    let trace = trace();
    let edge = 300_000_000u64;
    let run = |config: SimConfig| {
        let sim = Simulator::new(&config);
        sim.replay(trace.requests.clone());
        sim.stats().hit_ratio().unwrap()
    };
    let base = SimConfig {
        pops_per_region: 4,
        ..SimConfig::default_edge()
    };
    let tiered = run(base.clone().with_capacity(edge).with_parent(4 * edge));
    let flat = run(base.with_capacity(2 * edge));
    assert!(
        tiered > flat,
        "shared parent should beat flat edges at equal bytes: {tiered:.3} vs {flat:.3}"
    );
}

#[test]
fn ttl_reduces_hit_ratio_monotonically() {
    let trace = trace();
    let mut previous = -1.0f64;
    for ttl in [3_600u64, 21_600, 86_400, 7 * 86_400] {
        let sim = Simulator::new(&SimConfig::default_edge().with_ttl(ttl));
        sim.replay(trace.requests.clone());
        let ratio = sim.stats().hit_ratio().unwrap();
        assert!(
            ratio >= previous - 0.02,
            "longer TTL should not reduce hit ratio much: ttl {ttl} gave {ratio:.3} after {previous:.3}"
        );
        previous = ratio;
    }
    // And no TTL at all is the ceiling.
    let sim = Simulator::new(&SimConfig::default_edge());
    sim.replay(trace.requests.clone());
    assert!(sim.stats().hit_ratio().unwrap() >= previous - 1e-9);
}
