//! End-to-end shape anchors: one reproduction run must exhibit every
//! qualitative finding of the paper's evaluation (the "shape" column of
//! DESIGN.md §3).
//!
//! Absolute numbers are scale-dependent; these tests pin orderings, modes,
//! and coarse bands that must hold at any reasonable scale.

use oat::analysis::experiment::{run, ExperimentConfig, ExperimentResult};
use oat::httplog::{ContentClass, HttpStatus};
use oat::timeseries::TrendClass;
use std::sync::OnceLock;

fn result() -> &'static ExperimentResult {
    static RESULT: OnceLock<ExperimentResult> = OnceLock::new();
    RESULT.get_or_init(|| {
        let mut config = ExperimentConfig::small();
        config.trace.scale = 0.03;
        config.trace.catalog_scale = 0.06;
        config.trace.seed = 0xF16;
        run(&config).expect("valid config")
    })
}

#[test]
fn fig1_object_composition() {
    let r = result();
    let v1 = r.composition.site("V-1").unwrap();
    assert!(
        v1.object_share(ContentClass::Video) > 0.9,
        "V-1 is ~98% video objects: {:?}",
        v1.objects
    );
    let v2 = r.composition.site("V-2").unwrap();
    assert!(
        (v2.object_share(ContentClass::Image) - 0.84).abs() < 0.06,
        "V-2 is ~84% image objects: {:?}",
        v2.objects
    );
    assert!(
        (v2.object_share(ContentClass::Video) - 0.15).abs() < 0.06,
        "V-2 is ~15% video objects"
    );
    for code in ["P-1", "P-2", "S-1"] {
        let site = r.composition.site(code).unwrap();
        assert!(
            site.object_share(ContentClass::Image) > 0.95,
            "{code} is ~99% image objects: {:?}",
            site.objects
        );
    }
}

#[test]
fn fig2a_request_composition() {
    let r = result();
    let v1 = r.composition.site("V-1").unwrap();
    assert!(
        v1.request_share(ContentClass::Video) > 0.9,
        "V-1 requests are video-dominated"
    );
    let v2 = r.composition.site("V-2").unwrap();
    let video = v2.request_share(ContentClass::Video);
    let image = v2.request_share(ContentClass::Image);
    assert!(
        image > video,
        "V-2 image requests ({image:.2}) outnumber video ({video:.2})"
    );
    assert!(
        (0.2..0.5).contains(&video),
        "V-2 video request share ~34%: {video:.2}"
    );
    assert!(
        (0.5..0.8).contains(&image),
        "V-2 image request share ~62%: {image:.2}"
    );
}

#[test]
fn fig2b_video_dominates_bytes() {
    let r = result();
    for code in ["V-1", "V-2"] {
        let site = r.composition.site(code).unwrap();
        assert!(
            site.byte_share(ContentClass::Video) > site.byte_share(ContentClass::Image),
            "{code}: video should dominate traffic volume"
        );
    }
}

#[test]
fn fig3_temporal_patterns() {
    let r = result();
    let v1 = r.temporal.site("V-1").unwrap();
    assert!(
        v1.peaks_late_night(),
        "V-1 peaks late-night/early-morning, got hour {}",
        v1.peak_hour()
    );
    // V-1 has the most pronounced peak-to-trough variation.
    let v1_ratio = v1.peak_to_trough().expect("nonzero traffic");
    for code in ["V-2", "P-1", "P-2", "S-1"] {
        let other = r.temporal.site(code).unwrap();
        let ratio = other.peak_to_trough().expect("nonzero traffic");
        assert!(
            v1_ratio > ratio,
            "V-1 variation ({v1_ratio:.2}) exceeds {code} ({ratio:.2})"
        );
        // The classic 7-11pm evening peak region is NOT where V-1 peaks.
        assert!(
            !(19..=23).contains(&v1.peak_hour()),
            "V-1 must not follow the classic evening peak"
        );
    }
}

#[test]
fn fig4_device_mix() {
    let r = result();
    for site in &r.devices.sites {
        assert!(
            site.user_pct[0] > 50.0,
            "{}: desktop majority, got {:.1}%",
            site.code,
            site.user_pct[0]
        );
    }
    let v2 = r.devices.site("V-2").unwrap();
    assert!(
        v2.user_pct[0] > 93.0,
        "V-2 > 95% desktop, got {:.1}%",
        v2.user_pct[0]
    );
    let s1 = r.devices.site("S-1").unwrap();
    assert!(
        s1.mobile_and_misc_pct() > 30.0,
        "S-1 has >1/3 smartphone+misc, got {:.1}%",
        s1.mobile_and_misc_pct()
    );
}

#[test]
fn fig5_content_sizes() {
    let r = result();
    // Videos: majority over 1 MB on the video-rich sites.
    for code in ["V-1", "V-2"] {
        let d = r.sizes.site(code, ContentClass::Video).unwrap();
        assert!(
            d.fraction_above_1mb() > 0.8,
            "{code}: most videos exceed 1 MB ({:.2})",
            d.fraction_above_1mb()
        );
        assert!(d.median().unwrap() > 1_000_000.0);
    }
    // Images: bi-modal and mostly under 1 MB on image-rich sites.
    for code in ["V-2", "P-1", "P-2", "S-1"] {
        let d = r.sizes.site(code, ContentClass::Image).unwrap();
        assert!(d.is_bimodal(), "{code}: image sizes must be bi-modal");
        assert!(
            d.fraction_above_1mb() < 0.35,
            "{code}: images mostly below 1 MB"
        );
        assert!(d.median().unwrap() < 1_000_000.0);
    }
}

#[test]
fn fig5_video_and_image_sizes_are_different_populations() {
    // KS statistic: video and image size distributions must diverge
    // decisively (the paper plots them as separate sub-figures for a
    // reason), while the image-heavy sites' image distributions should be
    // broadly similar to each other.
    let r = result();
    let v2_video = &r.sizes.site("V-2", ContentClass::Video).unwrap().ecdf;
    let v2_image = &r.sizes.site("V-2", ContentClass::Image).unwrap().ecdf;
    let d = oat::stats::ks_statistic(v2_video, v2_image).unwrap();
    assert!(d > 0.8, "video vs image sizes nearly disjoint, KS = {d:.3}");

    let p1 = &r.sizes.site("P-1", ContentClass::Image).unwrap().ecdf;
    let s1 = &r.sizes.site("S-1", ContentClass::Image).unwrap().ecdf;
    let similar = oat::stats::ks_statistic(p1, s1).unwrap();
    assert!(
        similar < 0.35,
        "image-heavy sites share the thumbnail/full-size mixture, KS = {similar:.3}"
    );
}

#[test]
fn fig6_popularity_long_tailed() {
    let r = result();
    for (code, class) in [
        ("V-1", ContentClass::Video),
        ("V-2", ContentClass::Video),
        ("V-2", ContentClass::Image),
        ("P-1", ContentClass::Image),
        ("P-2", ContentClass::Image),
        ("S-1", ContentClass::Image),
    ] {
        let d = r.popularity.site(code, class).unwrap();
        let top = d.top_decile_share.expect("objects exist");
        assert!(
            top > 0.4,
            "{code} {class}: top 10% of objects draw most requests, got {top:.2}"
        );
        let fit = d.zipf.expect("enough objects to fit");
        assert!(
            (0.4..2.2).contains(&fit.alpha),
            "{code} {class}: Zipf-like exponent, got {}",
            fit.alpha
        );
    }
}

#[test]
fn fig7_content_aging() {
    let r = result();
    for site in &r.aging.sites {
        assert!(site.objects > 0, "{}: objects observed", site.code);
        // Monotone non-increasing, starts at 1.
        assert!((site.fraction_at_day(1).unwrap() - 1.0).abs() < 1e-9);
        for w in site.fraction_by_day.windows(2) {
            assert!(w[0] >= w[1], "{}: aging curve declines", site.code);
        }
        // A minority of objects stays requested throughout the week.
        let final_day = *site.fraction_by_day.last().unwrap();
        assert!(
            (0.02..0.55).contains(&final_day),
            "{}: week-long survivors are a minority, got {final_day:.2}",
            site.code
        );
    }
}

#[test]
fn fig8_10_clustering_recovers_trend_families() {
    let r = result();
    assert_eq!(r.clusterings.len(), 2, "V-2 video and P-2 image targets");
    for report in &r.clusterings {
        assert!(
            report.clustered_objects >= 20,
            "{}: enough objects to cluster, got {}",
            report.code,
            report.clustered_objects
        );
        assert!(
            report.clusters.len() >= 3,
            "{}: several clusters",
            report.code
        );
        // Shares sum to 1 over clustered objects.
        let total: f64 = report.clusters.iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Medoids have the trace length and a std envelope.
        for c in &report.clusters {
            assert_eq!(c.medoid.len(), 168);
            assert_eq!(c.std_dev.len(), 168);
        }
    }
    // Across both targets, the recovered labels include a persistent
    // (diurnal) family and a decaying/bursty family — the paper's key
    // qualitative split.
    let all_labels: Vec<TrendClass> = r.clusterings.iter().flat_map(|c| c.labels()).collect();
    assert!(
        all_labels.contains(&TrendClass::Diurnal),
        "diurnal family recovered: {all_labels:?}"
    );
    assert!(
        all_labels.iter().any(|l| matches!(
            l,
            TrendClass::LongLived | TrendClass::ShortLived | TrendClass::FlashCrowd
        )),
        "decaying/bursty family recovered: {all_labels:?}"
    );
}

#[test]
fn fig11_iat_video_vs_image() {
    let r = result();
    let v1 = r.iat.site("V-1").unwrap().median_secs().unwrap();
    let v2 = r.iat.site("V-2").unwrap().median_secs().unwrap();
    assert!(v1 < 600.0, "V-1 median IAT < 10 min, got {v1}");
    assert!(v2 < 600.0, "V-2 median IAT < 10 min, got {v2}");
    for code in ["P-1", "P-2", "S-1"] {
        let m = r.iat.site(code).unwrap().median_secs().unwrap();
        assert!(m > 3_600.0, "{code} median IAT > 1 h, got {m}");
    }
}

#[test]
fn fig12_short_sessions() {
    let r = result();
    for site in &r.sessions.sites {
        assert!(site.sessions > 100, "{}: sessions reconstructed", site.code);
        let median = site.median_secs().unwrap();
        assert!(
            median < 300.0,
            "{}: adult sessions are short (<5 min median), got {median}",
            site.code
        );
    }
    // Video sites have the longer engaged sessions.
    let v1 = r.sessions.site("V-1").unwrap().median_secs().unwrap();
    let p1 = r.sessions.site("P-1").unwrap().median_secs().unwrap();
    assert!(v1 > p1, "video sessions outlast image sessions");
    assert_eq!(
        r.sessions.timeout_secs, 600,
        "the paper's 10-minute timeout"
    );
}

#[test]
fn fig13_14_addiction() {
    let r = result();
    // Video: at least 10% of objects see more than 10 requests from one
    // user.
    for code in ["V-1", "V-2"] {
        let d = r.addiction.site(code, ContentClass::Video).unwrap();
        let frac = d.fraction_above(10.0);
        assert!(
            frac >= 0.10,
            "{code}: >=10% of video objects exceed 10 req by one user, got {frac:.3}"
        );
        // Some objects are far above the diagonal.
        assert!(d.max_ratio().unwrap() > 5.0);
    }
    // Images: a small minority.
    for code in ["P-1", "P-2", "S-1"] {
        let d = r.addiction.site(code, ContentClass::Image).unwrap();
        let frac = d.fraction_above(10.0);
        assert!(
            frac < 0.03,
            "{code}: ~1% of image objects exceed 10 req by one user, got {frac:.3}"
        );
    }
}

#[test]
fn fig15_cache_hit_ratios() {
    let r = result();
    // Overall CDN hit ratio lands in a broad 60-95% band at this scale
    // (the paper reports 80-90% at full scale).
    let overall = r.sim_stats.hit_ratio().unwrap();
    assert!(
        (0.6..0.97).contains(&overall),
        "aggregate hit ratio in band, got {overall:.3}"
    );
    // Popularity correlates strongly with hit ratio.
    let mut correlated = 0;
    for s in &r.cache.summaries {
        if let Some(c) = s.popularity_correlation {
            assert!(
                c > 0.5,
                "{}: popularity-hit correlation positive, got {c}",
                s.code
            );
            correlated += 1;
        }
    }
    assert!(correlated >= 4, "correlation computable for most sites");
    // Image objects cache at least as well as video on the image-heavy
    // sites (chunked one-shot video views cache poorly).
    let p1_image = r
        .cache
        .site("P-1", ContentClass::Image)
        .unwrap()
        .mean()
        .unwrap();
    assert!(p1_image > 0.2, "P-1 image objects get cache hits");
}

#[test]
fn fig16_response_codes() {
    let r = result();
    // 200 dominates image requests everywhere.
    for code in ["V-2", "P-1", "P-2", "S-1"] {
        let d = r.responses.site(code, ContentClass::Image).unwrap();
        assert!(
            d.share(HttpStatus::OK) > 0.8,
            "{code}: 200 dominates image responses"
        );
        // 304 is rare (incognito browsing).
        assert!(
            d.share(HttpStatus::NOT_MODIFIED) < 0.05,
            "{code}: 304 responses rare, got {:.3}",
            d.share(HttpStatus::NOT_MODIFIED)
        );
    }
    // Video: 206 range responses are heavily present; 403/416 exist at V-1.
    let v1 = r.responses.site("V-1", ContentClass::Video).unwrap();
    assert!(v1.count(HttpStatus::PARTIAL_CONTENT) > v1.count(HttpStatus::OK) / 10);
    assert!(v1.count(HttpStatus::FORBIDDEN) > 0);
    assert!(v1.count(HttpStatus::RANGE_NOT_SATISFIABLE) > 0);
    // 206 only appears for video, never images.
    for code in ["P-1", "S-1"] {
        let d = r.responses.site(code, ContentClass::Image).unwrap();
        assert_eq!(
            d.count(HttpStatus::PARTIAL_CONTENT),
            0,
            "{code}: no image 206s"
        );
    }
}
