//! End-to-end tests of the `oat` command-line binary.

use std::process::Command;

fn oat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oat"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("oat-cli-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn generate_info_analyze_roundtrip() {
    let log = tmp("cli_roundtrip.log");
    let out = oat()
        .args([
            "generate",
            "--out",
            log.to_str().unwrap(),
            "--scale",
            "0.002",
            "--seed",
            "3",
        ])
        .output()
        .expect("run oat generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(log.exists());

    let info = oat()
        .args(["info", "--in", log.to_str().unwrap()])
        .output()
        .expect("run oat info");
    assert!(info.status.success());
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.contains("records:"), "info output: {text}");
    assert!(text.contains("V-1"), "info lists sites: {text}");

    let analyze = oat()
        .args(["analyze", "--in", log.to_str().unwrap()])
        .output()
        .expect("run oat analyze");
    assert!(analyze.status.success());
    let report = String::from_utf8_lossy(&analyze.stdout);
    for needle in ["Fig 1/2", "Fig 16", "V-1", "S-1"] {
        assert!(report.contains(needle), "analyze output missing {needle}");
    }
}

#[test]
fn convert_text_to_binary_preserves_records() {
    let log = tmp("cli_convert.log");
    let bin = tmp("cli_convert.bin");
    assert!(oat()
        .args([
            "generate",
            "--out",
            log.to_str().unwrap(),
            "--scale",
            "0.001",
            "--seed",
            "5"
        ])
        .status()
        .expect("generate")
        .success());
    assert!(oat()
        .args([
            "convert",
            "--in",
            log.to_str().unwrap(),
            "--out",
            bin.to_str().unwrap()
        ])
        .status()
        .expect("convert")
        .success());
    // Binary output is smaller and reports the same record count.
    let text_size = std::fs::metadata(&log).unwrap().len();
    let bin_size = std::fs::metadata(&bin).unwrap().len();
    assert!(
        bin_size < text_size,
        "binary ({bin_size}) < text ({text_size})"
    );

    let info_text = oat()
        .args(["info", "--in", log.to_str().unwrap()])
        .output()
        .unwrap();
    let info_bin = oat()
        .args(["info", "--in", bin.to_str().unwrap()])
        .output()
        .unwrap();
    let records_line = |out: &std::process::Output| {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("records:"))
            .map(str::to_string)
            .expect("records line")
    };
    assert_eq!(records_line(&info_text), records_line(&info_bin));
}

#[test]
fn helpful_errors() {
    let bad = oat().args(["frobnicate"]).output().expect("run");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown command"));

    let missing = oat()
        .args(["info", "--in", "/nonexistent/zz.log"])
        .output()
        .expect("run");
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("cannot open"));

    let usage = oat().output().expect("run with no args");
    assert!(usage.status.success());
    assert!(String::from_utf8_lossy(&usage.stdout).contains("USAGE"));
}

#[test]
fn deterministic_generation_across_runs() {
    let a = tmp("cli_det_a.log");
    let b = tmp("cli_det_b.log");
    for path in [&a, &b] {
        assert!(oat()
            .args([
                "generate",
                "--out",
                path.to_str().unwrap(),
                "--scale",
                "0.001",
                "--seed",
                "77"
            ])
            .status()
            .expect("generate")
            .success());
    }
    let ca = std::fs::read(&a).unwrap();
    let cb = std::fs::read(&b).unwrap();
    assert_eq!(ca, cb, "same seed must produce byte-identical logs");
}
