//! `oat` — command-line front end for the toolkit.
//!
//! ```sh
//! oat generate --out week.log --scale 0.02            # synthesize + simulate
//! oat analyze  --in  week.log                         # all 16 figures
//! oat info     --in  week.log                         # quick trace summary
//! oat convert  --in  week.log --out week.bin          # text <-> binary
//! ```
//!
//! Formats are inferred from the file extension (`.log`/`.txt` = text,
//! `.bin` = binary) and can be forced with `--format`.

use oat::analysis::analyzers::clustering::ClusteringConfig;
use oat::analysis::experiment::{analyze, ExperimentConfig};
use oat::analysis::{report, SiteMap};
use oat::cdnsim::{ServeStats, Simulator};
use oat::httplog::io::{read_all, write_all, Format};
use oat::httplog::{ContentClass, LogRecord};
use oat::workload::generate as generate_trace;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("oat: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match command.as_str() {
        "generate" => cmd_generate(rest),
        "analyze" => cmd_analyze(rest),
        "info" => cmd_info(rest),
        "convert" => cmd_convert(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try `oat help`)")),
    }
}

fn print_usage() {
    println!(
        "oat — online adult traffic measurement toolkit\n\n\
         USAGE:\n  \
         oat generate --out FILE [--scale S] [--catalog-scale S] [--seed N] [--format text|binary]\n  \
         oat analyze  --in FILE  [--format text|binary]\n  \
         oat info     --in FILE  [--format text|binary]\n  \
         oat convert  --in FILE --out FILE [--format ...] [--out-format ...]"
    );
}

/// Minimal flag parser: `--key value` pairs only.
fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut flags = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {key:?}"));
        };
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn parse_f64(
    flags: &std::collections::HashMap<String, String>,
    name: &str,
    default: f64,
) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
    }
}

fn parse_u64(
    flags: &std::collections::HashMap<String, String>,
    name: &str,
    default: u64,
) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
    }
}

/// Infers a wire format from `--format`/`--out-format` or the extension.
fn resolve_format(
    flags: &std::collections::HashMap<String, String>,
    key: &str,
    path: &Path,
) -> Result<Format, String> {
    if let Some(v) = flags.get(key) {
        return match v.as_str() {
            "text" => Ok(Format::Text),
            "binary" | "bin" => Ok(Format::Binary),
            other => Err(format!("--{key}: unknown format {other:?} (text|binary)")),
        };
    }
    Ok(match path.extension().and_then(|e| e.to_str()) {
        Some("bin") => Format::Binary,
        _ => Format::Text,
    })
}

fn required_path(
    flags: &std::collections::HashMap<String, String>,
    name: &str,
) -> Result<PathBuf, String> {
    flags
        .get(name)
        .map(PathBuf::from)
        .ok_or_else(|| format!("--{name} FILE is required"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let out = required_path(&flags, "out")?;
    let format = resolve_format(&flags, "format", &out)?;
    let scale = parse_f64(&flags, "scale", 0.01)?;
    let catalog_scale = parse_f64(&flags, "catalog-scale", scale.min(0.05))?;
    let seed = parse_u64(&flags, "seed", 0x0A7_5EED)?;

    let mut config = ExperimentConfig::small();
    config.trace.scale = scale;
    config.trace.catalog_scale = catalog_scale;
    config.trace.seed = seed;
    config.sim.cache_capacity_bytes = ((64e9 * catalog_scale) as u64).max(2_000_000_000);

    eprintln!("oat: generating (scale {scale}, catalog-scale {catalog_scale}, seed {seed})...");
    let trace = generate_trace(&config.trace).map_err(|e| e.to_string())?;
    let simulator = Simulator::new(&config.sim);
    let records = simulator.replay(trace.requests);

    let file =
        std::fs::File::create(&out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let written = write_all(std::io::BufWriter::new(file), format, &records)
        .map_err(|e| format!("write failed: {e}"))?;
    eprintln!(
        "oat: wrote {written} records to {} ({})",
        out.display(),
        report::human_bytes(std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0)),
    );
    Ok(())
}

fn load(
    flags: &std::collections::HashMap<String, String>,
) -> Result<(Vec<LogRecord>, Format), String> {
    let input = required_path(flags, "in")?;
    let format = resolve_format(flags, "format", &input)?;
    let file =
        std::fs::File::open(&input).map_err(|e| format!("cannot open {}: {e}", input.display()))?;
    let records = read_all(file, format).map_err(|e| format!("read failed: {e}"))?;
    Ok((records, format))
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let (records, _) = load(&flags)?;
    if records.is_empty() {
        return Err("no records to analyze".to_string());
    }
    let start = records
        .iter()
        .map(|r| r.timestamp)
        .min()
        .expect("non-empty");
    let end = records
        .iter()
        .map(|r| r.timestamp)
        .max()
        .expect("non-empty");
    // Align the analysis window to whole days.
    let duration = (end - start + 1).div_ceil(86_400) * 86_400;
    // Reconstruct cache stats from the records themselves.
    let mut stats = ServeStats::new();
    for r in &records {
        stats.record(r.object, r.status, r.cache_status.is_hit(), r.bytes_served);
    }
    let result = analyze(
        &records,
        &SiteMap::paper_five(),
        start,
        duration,
        &ClusteringConfig::default(),
        &[
            ("V-2".to_string(), ContentClass::Video),
            ("P-2".to_string(), ContentClass::Image),
        ],
        stats,
    );
    println!("{}", report::render_all(&result));
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let (records, format) = load(&flags)?;
    if records.is_empty() {
        println!("0 records");
        return Ok(());
    }
    let start = records
        .iter()
        .map(|r| r.timestamp)
        .min()
        .expect("non-empty");
    let end = records
        .iter()
        .map(|r| r.timestamp)
        .max()
        .expect("non-empty");
    let bytes: u64 = records.iter().map(|r| r.bytes_served).sum();
    let users: std::collections::HashSet<_> = records.iter().map(|r| r.user).collect();
    let objects: std::collections::HashSet<_> = records.iter().map(|r| r.object).collect();
    let map = SiteMap::paper_five();
    println!("format:    {format:?}");
    println!("records:   {}", records.len());
    println!(
        "span:      {}s ({:.1} days)",
        end - start,
        (end - start) as f64 / 86_400.0
    );
    println!("users:     {}", users.len());
    println!("objects:   {}", objects.len());
    println!("bytes:     {}", report::human_bytes(bytes));
    for publisher in map.publishers() {
        let n = records.iter().filter(|r| r.publisher == publisher).count();
        if n > 0 {
            println!(
                "  {:<5} {n} records",
                map.code(publisher).expect("publisher in map")
            );
        }
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let (records, _) = load(&flags)?;
    let out = required_path(&flags, "out")?;
    let out_format = resolve_format(&flags, "out-format", &out)?;
    let file =
        std::fs::File::create(&out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let written = write_all(std::io::BufWriter::new(file), out_format, &records)
        .map_err(|e| format!("write failed: {e}"))?;
    eprintln!("oat: converted {written} records to {}", out.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> std::collections::HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_flags_pairs() {
        let args: Vec<String> = ["--out", "x.log", "--scale", "0.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["out"], "x.log");
        assert_eq!(f["scale"], "0.5");
        assert!(parse_flags(&["oops".to_string()]).is_err());
        assert!(parse_flags(&["--dangling".to_string()]).is_err());
    }

    #[test]
    fn numeric_flag_parsing() {
        let f = flags(&[("scale", "0.25"), ("seed", "7")]);
        assert_eq!(parse_f64(&f, "scale", 1.0).unwrap(), 0.25);
        assert_eq!(parse_f64(&f, "missing", 2.0).unwrap(), 2.0);
        assert_eq!(parse_u64(&f, "seed", 0).unwrap(), 7);
        let bad = flags(&[("scale", "abc")]);
        assert!(parse_f64(&bad, "scale", 1.0).is_err());
    }

    #[test]
    fn format_resolution() {
        let empty = flags(&[]);
        assert_eq!(
            resolve_format(&empty, "format", Path::new("a.bin")).unwrap(),
            Format::Binary
        );
        assert_eq!(
            resolve_format(&empty, "format", Path::new("a.log")).unwrap(),
            Format::Text
        );
        assert_eq!(
            resolve_format(&empty, "format", Path::new("noext")).unwrap(),
            Format::Text
        );
        let forced = flags(&[("format", "binary")]);
        assert_eq!(
            resolve_format(&forced, "format", Path::new("a.log")).unwrap(),
            Format::Binary
        );
        let bad = flags(&[("format", "xml")]);
        assert!(resolve_format(&bad, "format", Path::new("a.log")).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(run(&[]).is_ok()); // prints usage
    }

    #[test]
    fn required_path_errors_when_missing() {
        let empty = flags(&[]);
        assert!(required_path(&empty, "in").is_err());
    }
}
