//! `oat` — Online Adult Traffic measurement & analysis toolkit.
//!
//! Facade crate re-exporting the whole workspace. See the README for the
//! architecture overview and `oat_core` for the analysis pipeline.

#![forbid(unsafe_code)]

pub use oat_cdnsim as cdnsim;
pub use oat_core as analysis;
pub use oat_httplog as httplog;
pub use oat_stats as stats;
pub use oat_timeseries as timeseries;
pub use oat_useragent as useragent;
pub use oat_workload as workload;
