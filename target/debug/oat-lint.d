/root/repo/target/debug/oat-lint: /root/repo/crates/oat-lint/src/engine.rs /root/repo/crates/oat-lint/src/lexer.rs /root/repo/crates/oat-lint/src/main.rs /root/repo/crates/oat-lint/src/rules.rs
