/root/repo/target/debug/examples/cluster_debug-929c9a182f466dd6.d: examples/cluster_debug.rs

/root/repo/target/debug/examples/cluster_debug-929c9a182f466dd6: examples/cluster_debug.rs

examples/cluster_debug.rs:
