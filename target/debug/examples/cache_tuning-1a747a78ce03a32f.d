/root/repo/target/debug/examples/cache_tuning-1a747a78ce03a32f.d: examples/cache_tuning.rs

/root/repo/target/debug/examples/cache_tuning-1a747a78ce03a32f: examples/cache_tuning.rs

examples/cache_tuning.rs:
