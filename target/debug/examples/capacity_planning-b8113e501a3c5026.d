/root/repo/target/debug/examples/capacity_planning-b8113e501a3c5026.d: examples/capacity_planning.rs

/root/repo/target/debug/examples/capacity_planning-b8113e501a3c5026: examples/capacity_planning.rs

examples/capacity_planning.rs:
