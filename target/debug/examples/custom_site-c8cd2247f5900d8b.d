/root/repo/target/debug/examples/custom_site-c8cd2247f5900d8b.d: examples/custom_site.rs

/root/repo/target/debug/examples/custom_site-c8cd2247f5900d8b: examples/custom_site.rs

examples/custom_site.rs:
