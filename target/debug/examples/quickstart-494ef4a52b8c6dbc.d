/root/repo/target/debug/examples/quickstart-494ef4a52b8c6dbc.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-494ef4a52b8c6dbc.rmeta: examples/quickstart.rs

examples/quickstart.rs:
