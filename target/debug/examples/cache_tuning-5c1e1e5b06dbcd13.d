/root/repo/target/debug/examples/cache_tuning-5c1e1e5b06dbcd13.d: examples/cache_tuning.rs

/root/repo/target/debug/examples/libcache_tuning-5c1e1e5b06dbcd13.rmeta: examples/cache_tuning.rs

examples/cache_tuning.rs:
