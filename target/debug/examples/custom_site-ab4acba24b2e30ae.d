/root/repo/target/debug/examples/custom_site-ab4acba24b2e30ae.d: examples/custom_site.rs

/root/repo/target/debug/examples/libcustom_site-ab4acba24b2e30ae.rmeta: examples/custom_site.rs

examples/custom_site.rs:
