/root/repo/target/debug/examples/cluster_debug-5ff4865ba2174b77.d: examples/cluster_debug.rs

/root/repo/target/debug/examples/libcluster_debug-5ff4865ba2174b77.rmeta: examples/cluster_debug.rs

examples/cluster_debug.rs:
