/root/repo/target/debug/examples/quickstart-088107b2aef4eae2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-088107b2aef4eae2: examples/quickstart.rs

examples/quickstart.rs:
