/root/repo/target/debug/examples/capacity_planning-0857332fa6c91b51.d: examples/capacity_planning.rs

/root/repo/target/debug/examples/libcapacity_planning-0857332fa6c91b51.rmeta: examples/capacity_planning.rs

examples/capacity_planning.rs:
