/root/repo/target/debug/examples/log_pipeline-9d0a1a659d031bc2.d: examples/log_pipeline.rs

/root/repo/target/debug/examples/liblog_pipeline-9d0a1a659d031bc2.rmeta: examples/log_pipeline.rs

examples/log_pipeline.rs:
