/root/repo/target/debug/examples/log_pipeline-eae207de19ed7815.d: examples/log_pipeline.rs

/root/repo/target/debug/examples/log_pipeline-eae207de19ed7815: examples/log_pipeline.rs

examples/log_pipeline.rs:
