/root/repo/target/debug/deps/oat-6ffa32b0bcae61f5.d: src/bin/oat.rs

/root/repo/target/debug/deps/oat-6ffa32b0bcae61f5: src/bin/oat.rs

src/bin/oat.rs:
