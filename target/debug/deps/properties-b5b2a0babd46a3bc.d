/root/repo/target/debug/deps/properties-b5b2a0babd46a3bc.d: crates/timeseries/tests/properties.rs

/root/repo/target/debug/deps/properties-b5b2a0babd46a3bc: crates/timeseries/tests/properties.rs

crates/timeseries/tests/properties.rs:
