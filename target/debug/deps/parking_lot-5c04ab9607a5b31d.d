/root/repo/target/debug/deps/parking_lot-5c04ab9607a5b31d.d: target/_stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-5c04ab9607a5b31d.rlib: target/_stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-5c04ab9607a5b31d.rmeta: target/_stubs/parking_lot/src/lib.rs

target/_stubs/parking_lot/src/lib.rs:
