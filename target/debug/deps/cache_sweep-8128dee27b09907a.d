/root/repo/target/debug/deps/cache_sweep-8128dee27b09907a.d: crates/bench/benches/cache_sweep.rs

/root/repo/target/debug/deps/libcache_sweep-8128dee27b09907a.rmeta: crates/bench/benches/cache_sweep.rs

crates/bench/benches/cache_sweep.rs:
