/root/repo/target/debug/deps/stats_primitives-0127d67ddf694517.d: crates/bench/benches/stats_primitives.rs

/root/repo/target/debug/deps/libstats_primitives-0127d67ddf694517.rmeta: crates/bench/benches/stats_primitives.rs

crates/bench/benches/stats_primitives.rs:
