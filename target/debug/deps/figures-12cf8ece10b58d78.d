/root/repo/target/debug/deps/figures-12cf8ece10b58d78.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/libfigures-12cf8ece10b58d78.rmeta: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
