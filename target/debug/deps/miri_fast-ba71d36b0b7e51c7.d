/root/repo/target/debug/deps/miri_fast-ba71d36b0b7e51c7.d: crates/workload/tests/miri_fast.rs

/root/repo/target/debug/deps/libmiri_fast-ba71d36b0b7e51c7.rmeta: crates/workload/tests/miri_fast.rs

crates/workload/tests/miri_fast.rs:
