/root/repo/target/debug/deps/oat_cdnsim-0c103d9a19dc14c0.d: crates/cdnsim/src/lib.rs crates/cdnsim/src/cache/mod.rs crates/cdnsim/src/cache/admit.rs crates/cdnsim/src/cache/core_lru.rs crates/cdnsim/src/cache/fifo.rs crates/cdnsim/src/cache/gdsf.rs crates/cdnsim/src/cache/infinite.rs crates/cdnsim/src/cache/lfu.rs crates/cdnsim/src/cache/lru.rs crates/cdnsim/src/cache/slru.rs crates/cdnsim/src/cache/tiered.rs crates/cdnsim/src/cache/ttl.rs crates/cdnsim/src/cache/twoq.rs crates/cdnsim/src/faults.rs crates/cdnsim/src/latency.rs crates/cdnsim/src/mattson.rs crates/cdnsim/src/push.rs crates/cdnsim/src/simulator.rs crates/cdnsim/src/stats.rs crates/cdnsim/src/sweep.rs crates/cdnsim/src/topology.rs

/root/repo/target/debug/deps/liboat_cdnsim-0c103d9a19dc14c0.rlib: crates/cdnsim/src/lib.rs crates/cdnsim/src/cache/mod.rs crates/cdnsim/src/cache/admit.rs crates/cdnsim/src/cache/core_lru.rs crates/cdnsim/src/cache/fifo.rs crates/cdnsim/src/cache/gdsf.rs crates/cdnsim/src/cache/infinite.rs crates/cdnsim/src/cache/lfu.rs crates/cdnsim/src/cache/lru.rs crates/cdnsim/src/cache/slru.rs crates/cdnsim/src/cache/tiered.rs crates/cdnsim/src/cache/ttl.rs crates/cdnsim/src/cache/twoq.rs crates/cdnsim/src/faults.rs crates/cdnsim/src/latency.rs crates/cdnsim/src/mattson.rs crates/cdnsim/src/push.rs crates/cdnsim/src/simulator.rs crates/cdnsim/src/stats.rs crates/cdnsim/src/sweep.rs crates/cdnsim/src/topology.rs

/root/repo/target/debug/deps/liboat_cdnsim-0c103d9a19dc14c0.rmeta: crates/cdnsim/src/lib.rs crates/cdnsim/src/cache/mod.rs crates/cdnsim/src/cache/admit.rs crates/cdnsim/src/cache/core_lru.rs crates/cdnsim/src/cache/fifo.rs crates/cdnsim/src/cache/gdsf.rs crates/cdnsim/src/cache/infinite.rs crates/cdnsim/src/cache/lfu.rs crates/cdnsim/src/cache/lru.rs crates/cdnsim/src/cache/slru.rs crates/cdnsim/src/cache/tiered.rs crates/cdnsim/src/cache/ttl.rs crates/cdnsim/src/cache/twoq.rs crates/cdnsim/src/faults.rs crates/cdnsim/src/latency.rs crates/cdnsim/src/mattson.rs crates/cdnsim/src/push.rs crates/cdnsim/src/simulator.rs crates/cdnsim/src/stats.rs crates/cdnsim/src/sweep.rs crates/cdnsim/src/topology.rs

crates/cdnsim/src/lib.rs:
crates/cdnsim/src/cache/mod.rs:
crates/cdnsim/src/cache/admit.rs:
crates/cdnsim/src/cache/core_lru.rs:
crates/cdnsim/src/cache/fifo.rs:
crates/cdnsim/src/cache/gdsf.rs:
crates/cdnsim/src/cache/infinite.rs:
crates/cdnsim/src/cache/lfu.rs:
crates/cdnsim/src/cache/lru.rs:
crates/cdnsim/src/cache/slru.rs:
crates/cdnsim/src/cache/tiered.rs:
crates/cdnsim/src/cache/ttl.rs:
crates/cdnsim/src/cache/twoq.rs:
crates/cdnsim/src/faults.rs:
crates/cdnsim/src/latency.rs:
crates/cdnsim/src/mattson.rs:
crates/cdnsim/src/push.rs:
crates/cdnsim/src/simulator.rs:
crates/cdnsim/src/stats.rs:
crates/cdnsim/src/sweep.rs:
crates/cdnsim/src/topology.rs:
