/root/repo/target/debug/deps/figure_shapes-5190f7350ffc9014.d: tests/figure_shapes.rs

/root/repo/target/debug/deps/libfigure_shapes-5190f7350ffc9014.rmeta: tests/figure_shapes.rs

tests/figure_shapes.rs:
