/root/repo/target/debug/deps/oat-adc49f74e5c96eae.d: src/bin/oat.rs

/root/repo/target/debug/deps/oat-adc49f74e5c96eae: src/bin/oat.rs

src/bin/oat.rs:
