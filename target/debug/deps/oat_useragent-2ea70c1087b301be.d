/root/repo/target/debug/deps/oat_useragent-2ea70c1087b301be.d: crates/useragent/src/lib.rs crates/useragent/src/corpus.rs crates/useragent/src/device.rs crates/useragent/src/parser.rs

/root/repo/target/debug/deps/oat_useragent-2ea70c1087b301be: crates/useragent/src/lib.rs crates/useragent/src/corpus.rs crates/useragent/src/device.rs crates/useragent/src/parser.rs

crates/useragent/src/lib.rs:
crates/useragent/src/corpus.rs:
crates/useragent/src/device.rs:
crates/useragent/src/parser.rs:
