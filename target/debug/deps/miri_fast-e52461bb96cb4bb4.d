/root/repo/target/debug/deps/miri_fast-e52461bb96cb4bb4.d: crates/timeseries/tests/miri_fast.rs

/root/repo/target/debug/deps/miri_fast-e52461bb96cb4bb4: crates/timeseries/tests/miri_fast.rs

crates/timeseries/tests/miri_fast.rs:
