/root/repo/target/debug/deps/properties-14ab45f2bdf41194.d: crates/workload/tests/properties.rs

/root/repo/target/debug/deps/libproperties-14ab45f2bdf41194.rmeta: crates/workload/tests/properties.rs

crates/workload/tests/properties.rs:
