/root/repo/target/debug/deps/generator-5d2e6bc9931e361d.d: crates/bench/benches/generator.rs

/root/repo/target/debug/deps/libgenerator-5d2e6bc9931e361d.rmeta: crates/bench/benches/generator.rs

crates/bench/benches/generator.rs:
