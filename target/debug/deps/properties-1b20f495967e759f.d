/root/repo/target/debug/deps/properties-1b20f495967e759f.d: crates/cdnsim/tests/properties.rs

/root/repo/target/debug/deps/libproperties-1b20f495967e759f.rmeta: crates/cdnsim/tests/properties.rs

crates/cdnsim/tests/properties.rs:
