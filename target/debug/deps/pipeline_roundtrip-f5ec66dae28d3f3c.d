/root/repo/target/debug/deps/pipeline_roundtrip-f5ec66dae28d3f3c.d: tests/pipeline_roundtrip.rs

/root/repo/target/debug/deps/pipeline_roundtrip-f5ec66dae28d3f3c: tests/pipeline_roundtrip.rs

tests/pipeline_roundtrip.rs:
