/root/repo/target/debug/deps/figure_shapes-59ffac083d62902b.d: tests/figure_shapes.rs

/root/repo/target/debug/deps/figure_shapes-59ffac083d62902b: tests/figure_shapes.rs

tests/figure_shapes.rs:
