/root/repo/target/debug/deps/properties-df44cb7c6abda0ca.d: crates/stats/tests/properties.rs

/root/repo/target/debug/deps/properties-df44cb7c6abda0ca: crates/stats/tests/properties.rs

crates/stats/tests/properties.rs:
