/root/repo/target/debug/deps/cli-c024480be829b273.d: tests/cli.rs

/root/repo/target/debug/deps/libcli-c024480be829b273.rmeta: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_oat=placeholder:oat
