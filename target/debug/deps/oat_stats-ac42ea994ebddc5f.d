/root/repo/target/debug/deps/oat_stats-ac42ea994ebddc5f.d: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/ecdf.rs crates/stats/src/frequency.rs crates/stats/src/histogram.rs crates/stats/src/ks.rs crates/stats/src/psquare.rs crates/stats/src/streaming.rs crates/stats/src/topk.rs crates/stats/src/zipf.rs

/root/repo/target/debug/deps/liboat_stats-ac42ea994ebddc5f.rmeta: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/ecdf.rs crates/stats/src/frequency.rs crates/stats/src/histogram.rs crates/stats/src/ks.rs crates/stats/src/psquare.rs crates/stats/src/streaming.rs crates/stats/src/topk.rs crates/stats/src/zipf.rs

crates/stats/src/lib.rs:
crates/stats/src/correlation.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/frequency.rs:
crates/stats/src/histogram.rs:
crates/stats/src/ks.rs:
crates/stats/src/psquare.rs:
crates/stats/src/streaming.rs:
crates/stats/src/topk.rs:
crates/stats/src/zipf.rs:
