/root/repo/target/debug/deps/oat-7182b7705991ecc7.d: src/lib.rs

/root/repo/target/debug/deps/liboat-7182b7705991ecc7.rlib: src/lib.rs

/root/repo/target/debug/deps/liboat-7182b7705991ecc7.rmeta: src/lib.rs

src/lib.rs:
