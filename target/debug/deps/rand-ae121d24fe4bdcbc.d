/root/repo/target/debug/deps/rand-ae121d24fe4bdcbc.d: target/_stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ae121d24fe4bdcbc.rlib: target/_stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ae121d24fe4bdcbc.rmeta: target/_stubs/rand/src/lib.rs

target/_stubs/rand/src/lib.rs:
