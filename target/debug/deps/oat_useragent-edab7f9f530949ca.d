/root/repo/target/debug/deps/oat_useragent-edab7f9f530949ca.d: crates/useragent/src/lib.rs crates/useragent/src/corpus.rs crates/useragent/src/device.rs crates/useragent/src/parser.rs

/root/repo/target/debug/deps/liboat_useragent-edab7f9f530949ca.rmeta: crates/useragent/src/lib.rs crates/useragent/src/corpus.rs crates/useragent/src/device.rs crates/useragent/src/parser.rs

crates/useragent/src/lib.rs:
crates/useragent/src/corpus.rs:
crates/useragent/src/device.rs:
crates/useragent/src/parser.rs:
