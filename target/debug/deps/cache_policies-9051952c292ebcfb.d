/root/repo/target/debug/deps/cache_policies-9051952c292ebcfb.d: crates/bench/benches/cache_policies.rs

/root/repo/target/debug/deps/libcache_policies-9051952c292ebcfb.rmeta: crates/bench/benches/cache_policies.rs

crates/bench/benches/cache_policies.rs:
