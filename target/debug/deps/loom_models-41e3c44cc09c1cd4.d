/root/repo/target/debug/deps/loom_models-41e3c44cc09c1cd4.d: crates/workload/tests/loom_models.rs

/root/repo/target/debug/deps/libloom_models-41e3c44cc09c1cd4.rmeta: crates/workload/tests/loom_models.rs

crates/workload/tests/loom_models.rs:
