/root/repo/target/debug/deps/cli-fbd53a86286a2bb7.d: tests/cli.rs

/root/repo/target/debug/deps/cli-fbd53a86286a2bb7: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_oat=/root/repo/target/debug/oat
