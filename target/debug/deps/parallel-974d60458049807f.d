/root/repo/target/debug/deps/parallel-974d60458049807f.d: crates/timeseries/tests/parallel.rs

/root/repo/target/debug/deps/libparallel-974d60458049807f.rmeta: crates/timeseries/tests/parallel.rs

crates/timeseries/tests/parallel.rs:
