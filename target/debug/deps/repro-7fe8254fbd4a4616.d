/root/repo/target/debug/deps/repro-7fe8254fbd4a4616.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-7fe8254fbd4a4616.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
