/root/repo/target/debug/deps/oat-f1fcb09850139684.d: src/bin/oat.rs

/root/repo/target/debug/deps/liboat-f1fcb09850139684.rmeta: src/bin/oat.rs

src/bin/oat.rs:
