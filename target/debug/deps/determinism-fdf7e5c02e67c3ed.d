/root/repo/target/debug/deps/determinism-fdf7e5c02e67c3ed.d: crates/core/tests/determinism.rs

/root/repo/target/debug/deps/libdeterminism-fdf7e5c02e67c3ed.rmeta: crates/core/tests/determinism.rs

crates/core/tests/determinism.rs:
