/root/repo/target/debug/deps/determinism-9a1153f5ede1c1ab.d: tests/determinism.rs

/root/repo/target/debug/deps/libdeterminism-9a1153f5ede1c1ab.rmeta: tests/determinism.rs

tests/determinism.rs:
