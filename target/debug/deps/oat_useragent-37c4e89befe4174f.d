/root/repo/target/debug/deps/oat_useragent-37c4e89befe4174f.d: crates/useragent/src/lib.rs crates/useragent/src/corpus.rs crates/useragent/src/device.rs crates/useragent/src/parser.rs

/root/repo/target/debug/deps/liboat_useragent-37c4e89befe4174f.rlib: crates/useragent/src/lib.rs crates/useragent/src/corpus.rs crates/useragent/src/device.rs crates/useragent/src/parser.rs

/root/repo/target/debug/deps/liboat_useragent-37c4e89befe4174f.rmeta: crates/useragent/src/lib.rs crates/useragent/src/corpus.rs crates/useragent/src/device.rs crates/useragent/src/parser.rs

crates/useragent/src/lib.rs:
crates/useragent/src/corpus.rs:
crates/useragent/src/device.rs:
crates/useragent/src/parser.rs:
