/root/repo/target/debug/deps/repro-0b2f16ca2075400f.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-0b2f16ca2075400f: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
