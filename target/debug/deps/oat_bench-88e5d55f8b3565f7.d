/root/repo/target/debug/deps/oat_bench-88e5d55f8b3565f7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liboat_bench-88e5d55f8b3565f7.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liboat_bench-88e5d55f8b3565f7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
