/root/repo/target/debug/deps/criterion-98db35f6ae7fe7ca.d: target/_stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-98db35f6ae7fe7ca.rmeta: target/_stubs/criterion/src/lib.rs

target/_stubs/criterion/src/lib.rs:
