/root/repo/target/debug/deps/oat_timeseries-a096ca0526f3164d.d: crates/timeseries/src/lib.rs crates/timeseries/src/distance.rs crates/timeseries/src/dtw.rs crates/timeseries/src/hierarchical.rs crates/timeseries/src/kmedoids.rs crates/timeseries/src/matrix.rs crates/timeseries/src/medoid.rs crates/timeseries/src/normalize.rs crates/timeseries/src/prune.rs crates/timeseries/src/trend.rs

/root/repo/target/debug/deps/oat_timeseries-a096ca0526f3164d: crates/timeseries/src/lib.rs crates/timeseries/src/distance.rs crates/timeseries/src/dtw.rs crates/timeseries/src/hierarchical.rs crates/timeseries/src/kmedoids.rs crates/timeseries/src/matrix.rs crates/timeseries/src/medoid.rs crates/timeseries/src/normalize.rs crates/timeseries/src/prune.rs crates/timeseries/src/trend.rs

crates/timeseries/src/lib.rs:
crates/timeseries/src/distance.rs:
crates/timeseries/src/dtw.rs:
crates/timeseries/src/hierarchical.rs:
crates/timeseries/src/kmedoids.rs:
crates/timeseries/src/matrix.rs:
crates/timeseries/src/medoid.rs:
crates/timeseries/src/normalize.rs:
crates/timeseries/src/prune.rs:
crates/timeseries/src/trend.rs:
