/root/repo/target/debug/deps/properties-c5b59eaeb0503446.d: crates/timeseries/tests/properties.rs

/root/repo/target/debug/deps/libproperties-c5b59eaeb0503446.rmeta: crates/timeseries/tests/properties.rs

crates/timeseries/tests/properties.rs:
