/root/repo/target/debug/deps/oat_stats-88e6a19b180577c1.d: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/ecdf.rs crates/stats/src/frequency.rs crates/stats/src/histogram.rs crates/stats/src/ks.rs crates/stats/src/psquare.rs crates/stats/src/streaming.rs crates/stats/src/topk.rs crates/stats/src/zipf.rs

/root/repo/target/debug/deps/liboat_stats-88e6a19b180577c1.rmeta: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/ecdf.rs crates/stats/src/frequency.rs crates/stats/src/histogram.rs crates/stats/src/ks.rs crates/stats/src/psquare.rs crates/stats/src/streaming.rs crates/stats/src/topk.rs crates/stats/src/zipf.rs

crates/stats/src/lib.rs:
crates/stats/src/correlation.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/frequency.rs:
crates/stats/src/histogram.rs:
crates/stats/src/ks.rs:
crates/stats/src/psquare.rs:
crates/stats/src/streaming.rs:
crates/stats/src/topk.rs:
crates/stats/src/zipf.rs:
