/root/repo/target/debug/deps/oat-4e4d8c8271af9c01.d: src/lib.rs

/root/repo/target/debug/deps/oat-4e4d8c8271af9c01: src/lib.rs

src/lib.rs:
