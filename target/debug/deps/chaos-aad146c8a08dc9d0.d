/root/repo/target/debug/deps/chaos-aad146c8a08dc9d0.d: crates/bench/benches/chaos.rs

/root/repo/target/debug/deps/libchaos-aad146c8a08dc9d0.rmeta: crates/bench/benches/chaos.rs

crates/bench/benches/chaos.rs:
