/root/repo/target/debug/deps/columnar-ab8c88c878272230.d: crates/bench/benches/columnar.rs

/root/repo/target/debug/deps/libcolumnar-ab8c88c878272230.rmeta: crates/bench/benches/columnar.rs

crates/bench/benches/columnar.rs:
