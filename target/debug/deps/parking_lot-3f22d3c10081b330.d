/root/repo/target/debug/deps/parking_lot-3f22d3c10081b330.d: target/_stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-3f22d3c10081b330.rmeta: target/_stubs/parking_lot/src/lib.rs

target/_stubs/parking_lot/src/lib.rs:
