/root/repo/target/debug/deps/repro-cb1a5d471b6c7939.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-cb1a5d471b6c7939.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
