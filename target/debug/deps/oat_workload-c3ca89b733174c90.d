/root/repo/target/debug/deps/oat_workload-c3ca89b733174c90.d: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/dist.rs crates/workload/src/generator.rs crates/workload/src/merge.rs crates/workload/src/profile.rs crates/workload/src/temporal.rs crates/workload/src/trendspec.rs crates/workload/src/users.rs

/root/repo/target/debug/deps/oat_workload-c3ca89b733174c90: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/dist.rs crates/workload/src/generator.rs crates/workload/src/merge.rs crates/workload/src/profile.rs crates/workload/src/temporal.rs crates/workload/src/trendspec.rs crates/workload/src/users.rs

crates/workload/src/lib.rs:
crates/workload/src/catalog.rs:
crates/workload/src/dist.rs:
crates/workload/src/generator.rs:
crates/workload/src/merge.rs:
crates/workload/src/profile.rs:
crates/workload/src/temporal.rs:
crates/workload/src/trendspec.rs:
crates/workload/src/users.rs:
