/root/repo/target/debug/deps/proptest-e650c37fea4b60b4.d: target/_stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e650c37fea4b60b4.rlib: target/_stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e650c37fea4b60b4.rmeta: target/_stubs/proptest/src/lib.rs

target/_stubs/proptest/src/lib.rs:
