/root/repo/target/debug/deps/miri_fast-a3f3bba53a559327.d: crates/timeseries/tests/miri_fast.rs

/root/repo/target/debug/deps/libmiri_fast-a3f3bba53a559327.rmeta: crates/timeseries/tests/miri_fast.rs

crates/timeseries/tests/miri_fast.rs:
