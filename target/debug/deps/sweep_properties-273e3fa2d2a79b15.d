/root/repo/target/debug/deps/sweep_properties-273e3fa2d2a79b15.d: crates/cdnsim/tests/sweep_properties.rs

/root/repo/target/debug/deps/sweep_properties-273e3fa2d2a79b15: crates/cdnsim/tests/sweep_properties.rs

crates/cdnsim/tests/sweep_properties.rs:
