/root/repo/target/debug/deps/dtw-5337a0d471b24196.d: crates/bench/benches/dtw.rs

/root/repo/target/debug/deps/libdtw-5337a0d471b24196.rmeta: crates/bench/benches/dtw.rs

crates/bench/benches/dtw.rs:
