/root/repo/target/debug/deps/oat_workload-612ab374fc4e87d5.d: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/dist.rs crates/workload/src/generator.rs crates/workload/src/merge.rs crates/workload/src/profile.rs crates/workload/src/temporal.rs crates/workload/src/trendspec.rs crates/workload/src/users.rs

/root/repo/target/debug/deps/liboat_workload-612ab374fc4e87d5.rlib: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/dist.rs crates/workload/src/generator.rs crates/workload/src/merge.rs crates/workload/src/profile.rs crates/workload/src/temporal.rs crates/workload/src/trendspec.rs crates/workload/src/users.rs

/root/repo/target/debug/deps/liboat_workload-612ab374fc4e87d5.rmeta: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/dist.rs crates/workload/src/generator.rs crates/workload/src/merge.rs crates/workload/src/profile.rs crates/workload/src/temporal.rs crates/workload/src/trendspec.rs crates/workload/src/users.rs

crates/workload/src/lib.rs:
crates/workload/src/catalog.rs:
crates/workload/src/dist.rs:
crates/workload/src/generator.rs:
crates/workload/src/merge.rs:
crates/workload/src/profile.rs:
crates/workload/src/temporal.rs:
crates/workload/src/trendspec.rs:
crates/workload/src/users.rs:
