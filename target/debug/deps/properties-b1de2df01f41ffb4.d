/root/repo/target/debug/deps/properties-b1de2df01f41ffb4.d: crates/httplog/tests/properties.rs

/root/repo/target/debug/deps/libproperties-b1de2df01f41ffb4.rmeta: crates/httplog/tests/properties.rs

crates/httplog/tests/properties.rs:
