/root/repo/target/debug/deps/properties-bffa624a944d3874.d: crates/stats/tests/properties.rs

/root/repo/target/debug/deps/libproperties-bffa624a944d3874.rmeta: crates/stats/tests/properties.rs

crates/stats/tests/properties.rs:
