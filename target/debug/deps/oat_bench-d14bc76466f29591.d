/root/repo/target/debug/deps/oat_bench-d14bc76466f29591.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liboat_bench-d14bc76466f29591.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
