/root/repo/target/debug/deps/properties-122f0b29f961dea0.d: crates/workload/tests/properties.rs

/root/repo/target/debug/deps/properties-122f0b29f961dea0: crates/workload/tests/properties.rs

crates/workload/tests/properties.rs:
