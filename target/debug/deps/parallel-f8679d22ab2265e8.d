/root/repo/target/debug/deps/parallel-f8679d22ab2265e8.d: crates/timeseries/tests/parallel.rs

/root/repo/target/debug/deps/parallel-f8679d22ab2265e8: crates/timeseries/tests/parallel.rs

crates/timeseries/tests/parallel.rs:
