/root/repo/target/debug/deps/cache_behaviour-ea4a4dea2e53bb4f.d: tests/cache_behaviour.rs

/root/repo/target/debug/deps/cache_behaviour-ea4a4dea2e53bb4f: tests/cache_behaviour.rs

tests/cache_behaviour.rs:
