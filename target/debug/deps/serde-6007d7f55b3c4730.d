/root/repo/target/debug/deps/serde-6007d7f55b3c4730.d: target/_stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6007d7f55b3c4730.rlib: target/_stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6007d7f55b3c4730.rmeta: target/_stubs/serde/src/lib.rs

target/_stubs/serde/src/lib.rs:
