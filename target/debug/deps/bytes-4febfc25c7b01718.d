/root/repo/target/debug/deps/bytes-4febfc25c7b01718.d: target/_stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-4febfc25c7b01718.rmeta: target/_stubs/bytes/src/lib.rs

target/_stubs/bytes/src/lib.rs:
