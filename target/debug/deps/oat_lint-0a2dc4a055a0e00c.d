/root/repo/target/debug/deps/oat_lint-0a2dc4a055a0e00c.d: crates/oat-lint/src/main.rs crates/oat-lint/src/engine.rs crates/oat-lint/src/lexer.rs crates/oat-lint/src/rules.rs

/root/repo/target/debug/deps/liboat_lint-0a2dc4a055a0e00c.rmeta: crates/oat-lint/src/main.rs crates/oat-lint/src/engine.rs crates/oat-lint/src/lexer.rs crates/oat-lint/src/rules.rs

crates/oat-lint/src/main.rs:
crates/oat-lint/src/engine.rs:
crates/oat-lint/src/lexer.rs:
crates/oat-lint/src/rules.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/oat-lint
