/root/repo/target/debug/deps/oat-4fd8532ca1988389.d: src/lib.rs

/root/repo/target/debug/deps/liboat-4fd8532ca1988389.rmeta: src/lib.rs

src/lib.rs:
