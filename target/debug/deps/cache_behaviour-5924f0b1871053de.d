/root/repo/target/debug/deps/cache_behaviour-5924f0b1871053de.d: tests/cache_behaviour.rs

/root/repo/target/debug/deps/libcache_behaviour-5924f0b1871053de.rmeta: tests/cache_behaviour.rs

tests/cache_behaviour.rs:
