/root/repo/target/debug/deps/oat_stats-88fe1f4553b37d3b.d: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/ecdf.rs crates/stats/src/frequency.rs crates/stats/src/histogram.rs crates/stats/src/ks.rs crates/stats/src/psquare.rs crates/stats/src/streaming.rs crates/stats/src/topk.rs crates/stats/src/zipf.rs

/root/repo/target/debug/deps/oat_stats-88fe1f4553b37d3b: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/ecdf.rs crates/stats/src/frequency.rs crates/stats/src/histogram.rs crates/stats/src/ks.rs crates/stats/src/psquare.rs crates/stats/src/streaming.rs crates/stats/src/topk.rs crates/stats/src/zipf.rs

crates/stats/src/lib.rs:
crates/stats/src/correlation.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/frequency.rs:
crates/stats/src/histogram.rs:
crates/stats/src/ks.rs:
crates/stats/src/psquare.rs:
crates/stats/src/streaming.rs:
crates/stats/src/topk.rs:
crates/stats/src/zipf.rs:
