/root/repo/target/debug/deps/proptest-db44aca56b806a5d.d: target/_stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-db44aca56b806a5d.rmeta: target/_stubs/proptest/src/lib.rs

target/_stubs/proptest/src/lib.rs:
