/root/repo/target/debug/deps/oat_lint-c13e5bf0c30a7c32.d: crates/oat-lint/src/main.rs crates/oat-lint/src/engine.rs crates/oat-lint/src/lexer.rs crates/oat-lint/src/rules.rs

/root/repo/target/debug/deps/oat_lint-c13e5bf0c30a7c32: crates/oat-lint/src/main.rs crates/oat-lint/src/engine.rs crates/oat-lint/src/lexer.rs crates/oat-lint/src/rules.rs

crates/oat-lint/src/main.rs:
crates/oat-lint/src/engine.rs:
crates/oat-lint/src/lexer.rs:
crates/oat-lint/src/rules.rs:
