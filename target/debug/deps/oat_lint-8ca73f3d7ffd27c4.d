/root/repo/target/debug/deps/oat_lint-8ca73f3d7ffd27c4.d: crates/oat-lint/src/main.rs crates/oat-lint/src/engine.rs crates/oat-lint/src/lexer.rs crates/oat-lint/src/rules.rs

/root/repo/target/debug/deps/liboat_lint-8ca73f3d7ffd27c4.rmeta: crates/oat-lint/src/main.rs crates/oat-lint/src/engine.rs crates/oat-lint/src/lexer.rs crates/oat-lint/src/rules.rs

crates/oat-lint/src/main.rs:
crates/oat-lint/src/engine.rs:
crates/oat-lint/src/lexer.rs:
crates/oat-lint/src/rules.rs:
