/root/repo/target/debug/deps/sweep_properties-83b90909d1e5cb86.d: crates/cdnsim/tests/sweep_properties.rs

/root/repo/target/debug/deps/libsweep_properties-83b90909d1e5cb86.rmeta: crates/cdnsim/tests/sweep_properties.rs

crates/cdnsim/tests/sweep_properties.rs:
