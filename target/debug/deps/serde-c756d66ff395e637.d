/root/repo/target/debug/deps/serde-c756d66ff395e637.d: target/_stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c756d66ff395e637.rmeta: target/_stubs/serde/src/lib.rs

target/_stubs/serde/src/lib.rs:
