/root/repo/target/debug/deps/bytes-7379a731c8ec8f02.d: target/_stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-7379a731c8ec8f02.rlib: target/_stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-7379a731c8ec8f02.rmeta: target/_stubs/bytes/src/lib.rs

target/_stubs/bytes/src/lib.rs:
