/root/repo/target/debug/deps/properties-f054948a014e8e82.d: crates/cdnsim/tests/properties.rs

/root/repo/target/debug/deps/properties-f054948a014e8e82: crates/cdnsim/tests/properties.rs

crates/cdnsim/tests/properties.rs:
