/root/repo/target/debug/deps/fault_properties-e6691d759206baa9.d: crates/cdnsim/tests/fault_properties.rs

/root/repo/target/debug/deps/fault_properties-e6691d759206baa9: crates/cdnsim/tests/fault_properties.rs

crates/cdnsim/tests/fault_properties.rs:
