/root/repo/target/debug/deps/loom_models-6e63fcd95a4ede61.d: crates/workload/tests/loom_models.rs

/root/repo/target/debug/deps/loom_models-6e63fcd95a4ede61: crates/workload/tests/loom_models.rs

crates/workload/tests/loom_models.rs:
