/root/repo/target/debug/deps/oat_core-78d44bc7cddb4622.d: crates/core/src/lib.rs crates/core/src/analyzers/mod.rs crates/core/src/analyzers/addiction.rs crates/core/src/analyzers/aging.rs crates/core/src/analyzers/availability.rs crates/core/src/analyzers/cache.rs crates/core/src/analyzers/clustering.rs crates/core/src/analyzers/composition.rs crates/core/src/analyzers/device.rs crates/core/src/analyzers/iat.rs crates/core/src/analyzers/popularity.rs crates/core/src/analyzers/response.rs crates/core/src/analyzers/sessions.rs crates/core/src/analyzers/sizes.rs crates/core/src/analyzers/temporal.rs crates/core/src/experiment.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/sitemap.rs

/root/repo/target/debug/deps/oat_core-78d44bc7cddb4622: crates/core/src/lib.rs crates/core/src/analyzers/mod.rs crates/core/src/analyzers/addiction.rs crates/core/src/analyzers/aging.rs crates/core/src/analyzers/availability.rs crates/core/src/analyzers/cache.rs crates/core/src/analyzers/clustering.rs crates/core/src/analyzers/composition.rs crates/core/src/analyzers/device.rs crates/core/src/analyzers/iat.rs crates/core/src/analyzers/popularity.rs crates/core/src/analyzers/response.rs crates/core/src/analyzers/sessions.rs crates/core/src/analyzers/sizes.rs crates/core/src/analyzers/temporal.rs crates/core/src/experiment.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/sitemap.rs

crates/core/src/lib.rs:
crates/core/src/analyzers/mod.rs:
crates/core/src/analyzers/addiction.rs:
crates/core/src/analyzers/aging.rs:
crates/core/src/analyzers/availability.rs:
crates/core/src/analyzers/cache.rs:
crates/core/src/analyzers/clustering.rs:
crates/core/src/analyzers/composition.rs:
crates/core/src/analyzers/device.rs:
crates/core/src/analyzers/iat.rs:
crates/core/src/analyzers/popularity.rs:
crates/core/src/analyzers/response.rs:
crates/core/src/analyzers/sessions.rs:
crates/core/src/analyzers/sizes.rs:
crates/core/src/analyzers/temporal.rs:
crates/core/src/experiment.rs:
crates/core/src/export.rs:
crates/core/src/report.rs:
crates/core/src/sitemap.rs:
