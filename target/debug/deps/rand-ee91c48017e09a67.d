/root/repo/target/debug/deps/rand-ee91c48017e09a67.d: target/_stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ee91c48017e09a67.rmeta: target/_stubs/rand/src/lib.rs

target/_stubs/rand/src/lib.rs:
