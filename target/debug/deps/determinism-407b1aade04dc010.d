/root/repo/target/debug/deps/determinism-407b1aade04dc010.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-407b1aade04dc010: tests/determinism.rs

tests/determinism.rs:
