/root/repo/target/debug/deps/crossbeam-131eaab021bc8b20.d: target/_stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-131eaab021bc8b20.rlib: target/_stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-131eaab021bc8b20.rmeta: target/_stubs/crossbeam/src/lib.rs

target/_stubs/crossbeam/src/lib.rs:
