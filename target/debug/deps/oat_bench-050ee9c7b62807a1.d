/root/repo/target/debug/deps/oat_bench-050ee9c7b62807a1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liboat_bench-050ee9c7b62807a1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
