/root/repo/target/debug/deps/fault_properties-aad0bf70b4ffadc6.d: crates/cdnsim/tests/fault_properties.rs

/root/repo/target/debug/deps/libfault_properties-aad0bf70b4ffadc6.rmeta: crates/cdnsim/tests/fault_properties.rs

crates/cdnsim/tests/fault_properties.rs:
