/root/repo/target/debug/deps/properties-14af4743fe716576.d: crates/httplog/tests/properties.rs

/root/repo/target/debug/deps/properties-14af4743fe716576: crates/httplog/tests/properties.rs

crates/httplog/tests/properties.rs:
