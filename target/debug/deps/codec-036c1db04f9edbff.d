/root/repo/target/debug/deps/codec-036c1db04f9edbff.d: crates/bench/benches/codec.rs

/root/repo/target/debug/deps/libcodec-036c1db04f9edbff.rmeta: crates/bench/benches/codec.rs

crates/bench/benches/codec.rs:
