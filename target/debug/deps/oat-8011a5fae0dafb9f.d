/root/repo/target/debug/deps/oat-8011a5fae0dafb9f.d: src/bin/oat.rs

/root/repo/target/debug/deps/liboat-8011a5fae0dafb9f.rmeta: src/bin/oat.rs

src/bin/oat.rs:
