/root/repo/target/debug/deps/miri_fast-c375ce51f20ff008.d: crates/workload/tests/miri_fast.rs

/root/repo/target/debug/deps/miri_fast-c375ce51f20ff008: crates/workload/tests/miri_fast.rs

crates/workload/tests/miri_fast.rs:
