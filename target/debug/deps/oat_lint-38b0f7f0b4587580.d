/root/repo/target/debug/deps/oat_lint-38b0f7f0b4587580.d: crates/oat-lint/src/main.rs crates/oat-lint/src/engine.rs crates/oat-lint/src/lexer.rs crates/oat-lint/src/rules.rs

/root/repo/target/debug/deps/oat_lint-38b0f7f0b4587580: crates/oat-lint/src/main.rs crates/oat-lint/src/engine.rs crates/oat-lint/src/lexer.rs crates/oat-lint/src/rules.rs

crates/oat-lint/src/main.rs:
crates/oat-lint/src/engine.rs:
crates/oat-lint/src/lexer.rs:
crates/oat-lint/src/rules.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/oat-lint
