/root/repo/target/debug/deps/crossbeam-16d22926efb3e139.d: target/_stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-16d22926efb3e139.rmeta: target/_stubs/crossbeam/src/lib.rs

target/_stubs/crossbeam/src/lib.rs:
