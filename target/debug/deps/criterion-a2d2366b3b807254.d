/root/repo/target/debug/deps/criterion-a2d2366b3b807254.d: target/_stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-a2d2366b3b807254.rlib: target/_stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-a2d2366b3b807254.rmeta: target/_stubs/criterion/src/lib.rs

target/_stubs/criterion/src/lib.rs:
