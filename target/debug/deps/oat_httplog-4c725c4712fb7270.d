/root/repo/target/debug/deps/oat_httplog-4c725c4712fb7270.d: crates/httplog/src/lib.rs crates/httplog/src/anonymize.rs crates/httplog/src/codec/mod.rs crates/httplog/src/codec/binary.rs crates/httplog/src/codec/columnar.rs crates/httplog/src/codec/text.rs crates/httplog/src/content.rs crates/httplog/src/error.rs crates/httplog/src/filter.rs crates/httplog/src/geo.rs crates/httplog/src/ids.rs crates/httplog/src/io.rs crates/httplog/src/record.rs crates/httplog/src/request.rs crates/httplog/src/shard.rs crates/httplog/src/status.rs

/root/repo/target/debug/deps/liboat_httplog-4c725c4712fb7270.rmeta: crates/httplog/src/lib.rs crates/httplog/src/anonymize.rs crates/httplog/src/codec/mod.rs crates/httplog/src/codec/binary.rs crates/httplog/src/codec/columnar.rs crates/httplog/src/codec/text.rs crates/httplog/src/content.rs crates/httplog/src/error.rs crates/httplog/src/filter.rs crates/httplog/src/geo.rs crates/httplog/src/ids.rs crates/httplog/src/io.rs crates/httplog/src/record.rs crates/httplog/src/request.rs crates/httplog/src/shard.rs crates/httplog/src/status.rs

crates/httplog/src/lib.rs:
crates/httplog/src/anonymize.rs:
crates/httplog/src/codec/mod.rs:
crates/httplog/src/codec/binary.rs:
crates/httplog/src/codec/columnar.rs:
crates/httplog/src/codec/text.rs:
crates/httplog/src/content.rs:
crates/httplog/src/error.rs:
crates/httplog/src/filter.rs:
crates/httplog/src/geo.rs:
crates/httplog/src/ids.rs:
crates/httplog/src/io.rs:
crates/httplog/src/record.rs:
crates/httplog/src/request.rs:
crates/httplog/src/shard.rs:
crates/httplog/src/status.rs:
