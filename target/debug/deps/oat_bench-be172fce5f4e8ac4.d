/root/repo/target/debug/deps/oat_bench-be172fce5f4e8ac4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/oat_bench-be172fce5f4e8ac4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
