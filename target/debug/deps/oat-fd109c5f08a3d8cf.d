/root/repo/target/debug/deps/oat-fd109c5f08a3d8cf.d: src/lib.rs

/root/repo/target/debug/deps/liboat-fd109c5f08a3d8cf.rmeta: src/lib.rs

src/lib.rs:
