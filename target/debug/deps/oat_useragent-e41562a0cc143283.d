/root/repo/target/debug/deps/oat_useragent-e41562a0cc143283.d: crates/useragent/src/lib.rs crates/useragent/src/corpus.rs crates/useragent/src/device.rs crates/useragent/src/parser.rs

/root/repo/target/debug/deps/liboat_useragent-e41562a0cc143283.rmeta: crates/useragent/src/lib.rs crates/useragent/src/corpus.rs crates/useragent/src/device.rs crates/useragent/src/parser.rs

crates/useragent/src/lib.rs:
crates/useragent/src/corpus.rs:
crates/useragent/src/device.rs:
crates/useragent/src/parser.rs:
