/root/repo/target/debug/deps/generate-f9915d4d694781f4.d: crates/bench/benches/generate.rs

/root/repo/target/debug/deps/libgenerate-f9915d4d694781f4.rmeta: crates/bench/benches/generate.rs

crates/bench/benches/generate.rs:
