/root/repo/target/debug/deps/determinism-32f8162ba1e8450d.d: crates/core/tests/determinism.rs

/root/repo/target/debug/deps/determinism-32f8162ba1e8450d: crates/core/tests/determinism.rs

crates/core/tests/determinism.rs:
