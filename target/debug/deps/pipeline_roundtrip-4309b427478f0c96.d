/root/repo/target/debug/deps/pipeline_roundtrip-4309b427478f0c96.d: tests/pipeline_roundtrip.rs

/root/repo/target/debug/deps/libpipeline_roundtrip-4309b427478f0c96.rmeta: tests/pipeline_roundtrip.rs

tests/pipeline_roundtrip.rs:
