//! Offline stub: parking_lot::Mutex over std (no poisoning).
use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> StdGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
    pub fn try_lock(&self) -> Option<StdGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

pub type MutexGuard<'a, T> = StdGuard<'a, T>;
