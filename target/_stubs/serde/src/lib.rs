//! Offline stub: serde trait names + re-exported no-op derives.
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
pub trait Deserialize<'de>: Sized {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
