//! Offline stub: the crossbeam subset the workspace uses — scoped threads
//! and bounded MPMC-ish channels — implemented over std. Scoped spawning
//! uses the same lifetime-erasure trick as the real crate and joins every
//! thread before `scope` returns, so it is sound for the same reasons.

pub mod thread {
    use std::marker::PhantomData;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub struct Scope<'env> {
        handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
        _marker: PhantomData<&'env mut &'env ()>,
    }

    impl<'env> std::fmt::Debug for Scope<'env> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Scope { .. }")
        }
    }

    pub struct ScopedJoinHandle<'scope, T> {
        result: Arc<Mutex<Option<std::thread::Result<T>>>>,
        done: mpsc::Receiver<()>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> std::fmt::Debug for ScopedJoinHandle<'scope, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("ScopedJoinHandle { .. }")
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            // The sender half drops when the thread body finishes.
            let _ = self.done.recv();
            let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
            slot.take().expect("scoped thread result already taken")
        }
    }

    impl<'env> Scope<'env> {
        pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env>) -> T + Send + 'env,
            T: Send + 'env,
        {
            let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
            let (done_tx, done_rx) = mpsc::channel::<()>();
            let slot = Arc::clone(&result);
            // Erase `self`'s lifetime for the move into the thread; the
            // scope joins every handle before returning, so the reference
            // never outlives the frame it points into.
            let scope_ptr: *const Scope<'env> = self;
            let scope_addr = scope_ptr as usize;
            let body = move || {
                let scope: &Scope<'env> = unsafe { &*(scope_addr as *const Scope<'env>) };
                let out = catch_unwind(AssertUnwindSafe(|| f(scope)));
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                drop(done_tx);
            };
            let body: Box<dyn FnOnce() + Send + 'env> = Box::new(body);
            let body: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(body) };
            let handle = std::thread::spawn(body);
            self.handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(handle);
            ScopedJoinHandle {
                result,
                done: done_rx,
                _marker: PhantomData,
            }
        }
    }

    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let scope = Scope {
            handles: Mutex::new(Vec::new()),
            _marker: PhantomData,
        };
        let out = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        loop {
            let handle = scope
                .handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        out
    }
}

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Shared-receiver wrapper: crossbeam receivers are MPMC and `Clone`;
    /// std's are not, so guard one consumer behind a mutex.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv()
                .map_err(|_| RecvError)
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}
