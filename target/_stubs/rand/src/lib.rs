//! Offline stub: a deterministic, API-compatible subset of rand 0.8.
//! Not bit-compatible with the real crate — good enough for local
//! type-checking and self-consistent deterministic tests.

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** core (same state width as the real StdRng; different
    /// stream — deterministic is what matters here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 0xC0FF_EE00, 0x1234_5678, 0x9ABC_DEF0];
            }
            Self { s }
        }
    }

    pub type SmallRng = StdRng;
}

pub mod distributions {
    use super::Rng;

    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u16> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
            rng.next_u32() as u16
        }
    }
    impl Distribution<u8> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Distribution<i64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub trait SampleUniform: Sized {
        fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
                    let span = (hi_excl as i128 - lo as i128) as u128;
                    assert!(span > 0, "empty gen_range span");
                    let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
            let unit: f64 = Standard.sample(rng);
            lo + unit * (hi_excl - lo)
        }
    }
    impl SampleUniform for f32 {
        fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
            let unit: f32 = Standard.sample(rng);
            lo + unit * (hi_excl - lo)
        }
    }

    pub trait SampleRange<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            T::sample_range(rng, self.start, self.end)
        }
    }

    macro_rules! impl_range_incl_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_incl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub use distributions::Distribution;

pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }

    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}
