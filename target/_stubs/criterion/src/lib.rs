//! Offline stand-in for the `criterion` crate: just enough API for the
//! workspace benches to compile and smoke-run (each closure executes once,
//! no statistics). Never committed; see the workspace [patch.crates-io].

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchId,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench(stub): {}", id.into_id());
        f(&mut Bencher);
        self
    }
}

pub trait IntoBenchId {
    fn into_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchId,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench(stub): {}/{}", self.name, id.into_id());
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench(stub): {}/{}", self.name, id.0);
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self(format!("{}/{param}", name.into()))
    }
}

#[derive(Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug)]
pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

impl BenchmarkId {
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self(param.to_string())
    }
}
