//! Offline stand-in for the `proptest` crate: a deterministic, shrink-free
//! mini property-testing framework implementing exactly the API surface
//! the workspace's test suites use (strategy tuples, integer/float ranges,
//! `prop::collection::vec`, `prop::option::of`, `prop::sample::select`, a
//! `[class]{lo,hi}` regex-string subset, `prop_map`). Never committed; see
//! the workspace [patch.crates-io].

/// Deterministic case generator (splitmix64 core).
#[derive(Debug)]
pub struct Gen {
    state: u64,
}

impl Gen {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn reseed(&mut self, case: u64) {
        self.state = self.state.wrapping_add(0xA076_1D64_78BD_642F ^ case);
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. No shrinking: failures report the generated inputs
/// via the panic message only.
pub trait Strategy {
    type Value;

    fn generate(&self, gen: &mut Gen) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, gen: &mut Gen) -> O {
        (self.f)(self.inner.generate(gen))
    }
}

#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _gen: &mut Gen) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + gen.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + gen.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let unit = gen.f64_unit() as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let unit = gen.f64_unit() as $t;
                self.start() + (self.end() - self.start()) * unit
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// The `[class]{lo,hi}` regex subset: a single character class (literal
/// chars, `a-b` ranges, `\t`/`\n`/`\r`/`\\` escapes) with a bounded
/// repetition. Anything else panics — extend the stub if a test needs it.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, gen: &mut Gen) -> String {
        let (class, lo, hi) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("proptest stub: unsupported regex strategy {self:?}"));
        let len = lo + gen.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| class[gen.below(class.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class_src, repeat) = rest.split_once(']')?;
    let repeat = repeat.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = repeat.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    let (negated, class_src) = match class_src.strip_prefix('^') {
        Some(stripped) => (true, stripped),
        None => (false, class_src),
    };
    let mut class = Vec::new();
    let mut chars = class_src.chars().peekable();
    while let Some(c) = chars.next() {
        let c = if c == '\\' {
            match chars.next()? {
                't' => '\t',
                'n' => '\n',
                'r' => '\r',
                other => other,
            }
        } else {
            c
        };
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next();
            if let Some(&end) = lookahead.peek() {
                if end != ']' {
                    chars.next();
                    let end = chars.next()?;
                    for code in (c as u32)..=(end as u32) {
                        class.push(char::from_u32(code)?);
                    }
                    continue;
                }
            }
        }
        class.push(c);
    }
    if negated {
        // Complement over printable ASCII plus tab/newline — narrower than
        // real proptest's full-unicode complement but plenty for fuzzing.
        let excluded: std::collections::HashSet<char> = class.into_iter().collect();
        class = (0x20u32..=0x7E)
            .filter_map(char::from_u32)
            .chain(['\t', '\n'])
            .filter(|c| !excluded.contains(c))
            .collect();
    }
    if class.is_empty() {
        return None;
    }
    Some((class, lo, hi))
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(gen),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}

/// Full-range value generation (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(gen: &mut Gen) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(gen: &mut Gen) -> $t {
                gen.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> bool {
        gen.next_u64() & 1 == 1
    }
}

#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u64,
}

impl ProptestConfig {
    pub fn with_cases(cases: u64) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

pub mod prop {
    pub mod collection {
        use crate::{Gen, Strategy};

        /// Length specification: a fixed size or a (half-open / inclusive)
        /// range.
        pub trait IntoLen {
            fn pick(&self, gen: &mut Gen) -> usize;
        }

        impl IntoLen for usize {
            fn pick(&self, _gen: &mut Gen) -> usize {
                *self
            }
        }

        impl IntoLen for std::ops::Range<usize> {
            fn pick(&self, gen: &mut Gen) -> usize {
                self.generate(gen)
            }
        }

        impl IntoLen for std::ops::RangeInclusive<usize> {
            fn pick(&self, gen: &mut Gen) -> usize {
                self.generate(gen)
            }
        }

        #[derive(Debug)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate(&self, gen: &mut Gen) -> Self::Value {
                let len = self.len.pick(gen);
                (0..len).map(|_| self.element.generate(gen)).collect()
            }
        }

        pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        #[derive(Debug)]
        pub struct HashSetStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoLen> Strategy for HashSetStrategy<S, L>
        where
            S::Value: std::hash::Hash + Eq,
        {
            type Value = std::collections::HashSet<S::Value>;

            fn generate(&self, gen: &mut Gen) -> Self::Value {
                let len = self.len.pick(gen);
                let mut set = std::collections::HashSet::new();
                // Insertion can collide; cap the retries so generation halts
                // even on tiny value domains.
                let mut attempts = 0usize;
                while set.len() < len && attempts < len * 20 + 100 {
                    set.insert(self.element.generate(gen));
                    attempts += 1;
                }
                set
            }
        }

        pub fn hash_set<S: Strategy, L: IntoLen>(element: S, len: L) -> HashSetStrategy<S, L> {
            HashSetStrategy { element, len }
        }
    }

    pub mod option {
        use crate::{Gen, Strategy};

        #[derive(Debug)]
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, gen: &mut Gen) -> Self::Value {
                if gen.next_u64() & 3 == 0 {
                    None
                } else {
                    Some(self.0.generate(gen))
                }
            }
        }

        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    pub mod sample {
        use crate::{Gen, Strategy};

        #[derive(Debug)]
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, gen: &mut Gen) -> T {
                self.0[gen.below(self.0.len() as u64) as usize].clone()
            }
        }

        pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
            assert!(!choices.is_empty(), "select needs at least one choice");
            Select(choices)
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Gen, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut gen = $crate::Gen::new(0x0A7_5EED ^ stringify!($name).len() as u64);
            for case in 0..config.cases {
                gen.reseed(case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut gen);)+
                $body
            }
        }
    )*};
}
