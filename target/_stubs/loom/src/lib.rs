//! Offline stub.
