//! Offline stub: the functional subset of `bytes` the codecs use.

pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len());
        let mut off = 0;
        while off < dst.len() {
            let src = self.chunk();
            let n = src.len().min(dst.len() - off);
            dst[off..off + n].copy_from_slice(&src[..n]);
            self.advance(n);
            off += n;
        }
    }
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }
    pub fn freeze(self) -> Bytes {
        Bytes {
            buf: self.buf,
            pos: 0,
        }
    }
    pub fn len(&self) -> usize {
        self.buf.len()
    }
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    buf: Vec<u8>,
    pos: usize,
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn chunk(&self) -> &[u8] {
        &self.buf[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        self.pos += cnt;
    }
}

impl Bytes {
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let rest = &self.buf[self.pos..];
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => rest.len(),
        };
        Bytes {
            buf: rest[lo..hi].to_vec(),
            pos: 0,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.pos..]
    }
}
