/root/repo/target/release/oat-lint: /root/repo/crates/oat-lint/src/engine.rs /root/repo/crates/oat-lint/src/lexer.rs /root/repo/crates/oat-lint/src/main.rs /root/repo/crates/oat-lint/src/rules.rs
