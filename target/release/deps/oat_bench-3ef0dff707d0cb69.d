/root/repo/target/release/deps/oat_bench-3ef0dff707d0cb69.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/liboat_bench-3ef0dff707d0cb69.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/liboat_bench-3ef0dff707d0cb69.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
