/root/repo/target/release/deps/oat_stats-836a4b236f034b7c.d: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/ecdf.rs crates/stats/src/frequency.rs crates/stats/src/histogram.rs crates/stats/src/ks.rs crates/stats/src/psquare.rs crates/stats/src/streaming.rs crates/stats/src/topk.rs crates/stats/src/zipf.rs

/root/repo/target/release/deps/liboat_stats-836a4b236f034b7c.rlib: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/ecdf.rs crates/stats/src/frequency.rs crates/stats/src/histogram.rs crates/stats/src/ks.rs crates/stats/src/psquare.rs crates/stats/src/streaming.rs crates/stats/src/topk.rs crates/stats/src/zipf.rs

/root/repo/target/release/deps/liboat_stats-836a4b236f034b7c.rmeta: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/ecdf.rs crates/stats/src/frequency.rs crates/stats/src/histogram.rs crates/stats/src/ks.rs crates/stats/src/psquare.rs crates/stats/src/streaming.rs crates/stats/src/topk.rs crates/stats/src/zipf.rs

crates/stats/src/lib.rs:
crates/stats/src/correlation.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/frequency.rs:
crates/stats/src/histogram.rs:
crates/stats/src/ks.rs:
crates/stats/src/psquare.rs:
crates/stats/src/streaming.rs:
crates/stats/src/topk.rs:
crates/stats/src/zipf.rs:
