/root/repo/target/release/deps/oat_workload-57371d4257923bbd.d: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/dist.rs crates/workload/src/generator.rs crates/workload/src/merge.rs crates/workload/src/profile.rs crates/workload/src/temporal.rs crates/workload/src/trendspec.rs crates/workload/src/users.rs

/root/repo/target/release/deps/liboat_workload-57371d4257923bbd.rlib: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/dist.rs crates/workload/src/generator.rs crates/workload/src/merge.rs crates/workload/src/profile.rs crates/workload/src/temporal.rs crates/workload/src/trendspec.rs crates/workload/src/users.rs

/root/repo/target/release/deps/liboat_workload-57371d4257923bbd.rmeta: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/dist.rs crates/workload/src/generator.rs crates/workload/src/merge.rs crates/workload/src/profile.rs crates/workload/src/temporal.rs crates/workload/src/trendspec.rs crates/workload/src/users.rs

crates/workload/src/lib.rs:
crates/workload/src/catalog.rs:
crates/workload/src/dist.rs:
crates/workload/src/generator.rs:
crates/workload/src/merge.rs:
crates/workload/src/profile.rs:
crates/workload/src/temporal.rs:
crates/workload/src/trendspec.rs:
crates/workload/src/users.rs:
