/root/repo/target/release/deps/oat_timeseries-e37847792ccf4b7f.d: crates/timeseries/src/lib.rs crates/timeseries/src/distance.rs crates/timeseries/src/dtw.rs crates/timeseries/src/hierarchical.rs crates/timeseries/src/kmedoids.rs crates/timeseries/src/matrix.rs crates/timeseries/src/medoid.rs crates/timeseries/src/normalize.rs crates/timeseries/src/prune.rs crates/timeseries/src/trend.rs

/root/repo/target/release/deps/liboat_timeseries-e37847792ccf4b7f.rlib: crates/timeseries/src/lib.rs crates/timeseries/src/distance.rs crates/timeseries/src/dtw.rs crates/timeseries/src/hierarchical.rs crates/timeseries/src/kmedoids.rs crates/timeseries/src/matrix.rs crates/timeseries/src/medoid.rs crates/timeseries/src/normalize.rs crates/timeseries/src/prune.rs crates/timeseries/src/trend.rs

/root/repo/target/release/deps/liboat_timeseries-e37847792ccf4b7f.rmeta: crates/timeseries/src/lib.rs crates/timeseries/src/distance.rs crates/timeseries/src/dtw.rs crates/timeseries/src/hierarchical.rs crates/timeseries/src/kmedoids.rs crates/timeseries/src/matrix.rs crates/timeseries/src/medoid.rs crates/timeseries/src/normalize.rs crates/timeseries/src/prune.rs crates/timeseries/src/trend.rs

crates/timeseries/src/lib.rs:
crates/timeseries/src/distance.rs:
crates/timeseries/src/dtw.rs:
crates/timeseries/src/hierarchical.rs:
crates/timeseries/src/kmedoids.rs:
crates/timeseries/src/matrix.rs:
crates/timeseries/src/medoid.rs:
crates/timeseries/src/normalize.rs:
crates/timeseries/src/prune.rs:
crates/timeseries/src/trend.rs:
