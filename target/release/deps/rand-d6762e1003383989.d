/root/repo/target/release/deps/rand-d6762e1003383989.d: target/_stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-d6762e1003383989.rlib: target/_stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-d6762e1003383989.rmeta: target/_stubs/rand/src/lib.rs

target/_stubs/rand/src/lib.rs:
