/root/repo/target/release/deps/crossbeam-71e74597ec0e4245.d: target/_stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-71e74597ec0e4245.rlib: target/_stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-71e74597ec0e4245.rmeta: target/_stubs/crossbeam/src/lib.rs

target/_stubs/crossbeam/src/lib.rs:
