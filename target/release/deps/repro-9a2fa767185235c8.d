/root/repo/target/release/deps/repro-9a2fa767185235c8.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-9a2fa767185235c8: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
