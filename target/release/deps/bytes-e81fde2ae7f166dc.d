/root/repo/target/release/deps/bytes-e81fde2ae7f166dc.d: target/_stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-e81fde2ae7f166dc.rlib: target/_stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-e81fde2ae7f166dc.rmeta: target/_stubs/bytes/src/lib.rs

target/_stubs/bytes/src/lib.rs:
