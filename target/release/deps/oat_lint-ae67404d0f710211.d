/root/repo/target/release/deps/oat_lint-ae67404d0f710211.d: crates/oat-lint/src/main.rs crates/oat-lint/src/engine.rs crates/oat-lint/src/lexer.rs crates/oat-lint/src/rules.rs

/root/repo/target/release/deps/oat_lint-ae67404d0f710211: crates/oat-lint/src/main.rs crates/oat-lint/src/engine.rs crates/oat-lint/src/lexer.rs crates/oat-lint/src/rules.rs

crates/oat-lint/src/main.rs:
crates/oat-lint/src/engine.rs:
crates/oat-lint/src/lexer.rs:
crates/oat-lint/src/rules.rs:
