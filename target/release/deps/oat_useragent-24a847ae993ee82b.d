/root/repo/target/release/deps/oat_useragent-24a847ae993ee82b.d: crates/useragent/src/lib.rs crates/useragent/src/corpus.rs crates/useragent/src/device.rs crates/useragent/src/parser.rs

/root/repo/target/release/deps/liboat_useragent-24a847ae993ee82b.rlib: crates/useragent/src/lib.rs crates/useragent/src/corpus.rs crates/useragent/src/device.rs crates/useragent/src/parser.rs

/root/repo/target/release/deps/liboat_useragent-24a847ae993ee82b.rmeta: crates/useragent/src/lib.rs crates/useragent/src/corpus.rs crates/useragent/src/device.rs crates/useragent/src/parser.rs

crates/useragent/src/lib.rs:
crates/useragent/src/corpus.rs:
crates/useragent/src/device.rs:
crates/useragent/src/parser.rs:
