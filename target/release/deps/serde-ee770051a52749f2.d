/root/repo/target/release/deps/serde-ee770051a52749f2.d: target/_stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ee770051a52749f2.rlib: target/_stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ee770051a52749f2.rmeta: target/_stubs/serde/src/lib.rs

target/_stubs/serde/src/lib.rs:
