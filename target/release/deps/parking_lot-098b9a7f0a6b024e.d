/root/repo/target/release/deps/parking_lot-098b9a7f0a6b024e.d: target/_stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-098b9a7f0a6b024e.rlib: target/_stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-098b9a7f0a6b024e.rmeta: target/_stubs/parking_lot/src/lib.rs

target/_stubs/parking_lot/src/lib.rs:
