/root/repo/target/release/deps/serde_derive-630b1993f29c5ba3.d: target/_stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-630b1993f29c5ba3.so: target/_stubs/serde_derive/src/lib.rs

target/_stubs/serde_derive/src/lib.rs:
