//! Quickstart: run the full reproduction at laptop scale and print every
//! figure's data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use oat::analysis::experiment::{run, ExperimentConfig};
use oat::analysis::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ~1.5 % of the paper's request volume: a few seconds of wall-clock.
    let config = ExperimentConfig::small();
    eprintln!(
        "generating + replaying + analyzing (scale {}, seed {})...",
        config.trace.scale, config.trace.seed
    );
    let result = run(&config)?;
    println!("{}", report::render_all(&result));
    Ok(())
}
