//! Research scenario: define a *hypothetical* sixth site and measure it
//! with the same pipeline.
//!
//! The paper anonymizes five sites; a natural follow-up question is how a
//! mobile-first adult site (the direction §V predicts the market must move)
//! would look in the same figures. This example defines "M-1": a
//! smartphone-majority, short-video site, and contrasts its measured
//! profile against V-1.
//!
//! ```sh
//! cargo run --release --example custom_site
//! ```

use oat::analysis::analyzers::{
    composition::CompositionAnalyzer, device::DeviceAnalyzer, iat::IatAnalyzer,
    sessions::SessionAnalyzer, temporal::TemporalAnalyzer, Analyzer,
};
use oat::analysis::{report, SiteMap};
use oat::cdnsim::{SimConfig, Simulator};
use oat::httplog::{PublisherId, Region};
use oat::useragent::DeviceMix;
use oat::workload::{
    generate, ClassParams, DiurnalCurve, SiteProfile, SizeModel, TraceConfig, TrendMix,
};

/// A mobile-first short-video site the paper's market analysis anticipates.
fn m1() -> SiteProfile {
    SiteProfile {
        code: "M-1".to_string(),
        publisher: PublisherId::new(6),
        catalog_size: 12_000,
        request_volume: 900_000,
        video: ClassParams {
            catalog_fraction: 0.9,
            request_boost: 1.0,
            // Short clips: a few MB, phone-friendly.
            sizes: SizeModel::unimodal(3e6, 0.8, 200_000, 60_000_000),
        },
        image: ClassParams {
            catalog_fraction: 0.09,
            request_boost: 0.8,
            sizes: SizeModel::bimodal(15e3, 0.6, 250e3, 0.6, 0.3, 1_000, 2_000_000),
        },
        other: ClassParams {
            catalog_fraction: 0.01,
            request_boost: 0.5,
            sizes: SizeModel::unimodal(10e3, 1.0, 200, 300_000),
        },
        zipf_alpha: 1.0,
        trend_mix: TrendMix {
            diurnal: 0.3,
            long_lived: 0.2,
            short_lived: 0.35, // virality turns over faster on mobile
            flash_crowd: 0.05,
            outlier: 0.1,
        },
        // Mobile browsing happens through the day: commute + evening peaks
        // flatten into a broad curve peaking at 21:00.
        diurnal: DiurnalCurve::new(21.0, 0.2),
        devices: DeviceMix::new(0.25, 0.45, 0.22, 0.08).expect("valid mix"),
        region_weights: [
            (Region::Asia, 0.4),
            (Region::NorthAmerica, 0.25),
            (Region::Europe, 0.25),
            (Region::SouthAmerica, 0.1),
        ],
        sessions_per_user: 5.0, // many short visits
        requests_per_session: 2.0,
        within_iat_median_secs: 15.0,
        within_iat_sigma: 1.0,
        repeat_affinity: 0.3,
        incognito_rate: 0.8, // even higher on shared phones
        preexisting_fraction: 0.4,
        revalidate_rate: 0.5,
        hotlink_rate: 0.01,
        bad_range_rate: 0.002,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sites = vec![SiteProfile::v1(), m1()];
    sites[0].request_volume = 900_000; // equal volume for a fair comparison
    let config = TraceConfig {
        sites,
        ..TraceConfig::paper_week()
    }
    .with_scale(0.05)
    .with_catalog_scale(0.05);

    let trace = generate(&config)?;
    let sim = Simulator::new(&SimConfig::default_edge());
    let records = sim.replay(trace.requests);
    let map = SiteMap::from_profiles(&config.sites);

    let mut composition = CompositionAnalyzer::new(map.clone());
    let mut devices = DeviceAnalyzer::new(map.clone());
    let mut temporal = TemporalAnalyzer::new(map.clone());
    let mut iat = IatAnalyzer::new(map.clone());
    let mut sessions = SessionAnalyzer::new(map);
    for r in &records {
        composition.observe(r);
        devices.observe(r);
        temporal.observe(r);
        iat.observe(r);
        sessions.observe(r);
    }

    println!("=== V-1 (paper) vs M-1 (hypothetical mobile-first) ===\n");
    println!("{}", report::render_composition(&composition.finish()));
    println!("{}", report::render_devices(&devices.finish()));
    println!("{}", report::render_temporal(&temporal.finish()));
    println!("{}", report::render_iat(&iat.finish()));
    println!("{}", report::render_sessions(&sessions.finish()));
    println!(
        "Takeaway: the same pipeline measures any SiteProfile — the paper's \n\
         'improve mobile interfaces' implication becomes testable: M-1 shifts \n\
         the device mix to >70% mobile and compresses session lengths further."
    );
    Ok(())
}
