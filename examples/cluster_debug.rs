//! Dev diagnostic: clustering purity vs planted ground truth.
//! Not part of the shipped examples (see quickstart / capacity_planning /
//! cache_tuning); kept for tuning the Fig 8–10 pipeline.

use oat::analysis::analyzers::clustering::{ClusteringAnalyzer, ClusteringConfig};
use oat::analysis::analyzers::Analyzer;
use oat::cdnsim::{SimConfig, Simulator};
use oat::httplog::ContentClass;
use oat::workload::{generate, SiteProfile, TraceConfig};

fn main() {
    let mut config = TraceConfig::paper_week();
    config.scale = 0.25;
    config.catalog_scale = 0.25;
    config.sites = vec![SiteProfile::v2()];
    let trace = generate(&config).unwrap();
    let catalog = &trace.catalogs[0];

    // Ground truth trend per object id.
    let truth: std::collections::HashMap<u64, String> = catalog
        .objects()
        .iter()
        .map(|o| (o.id.raw(), o.trend.class().to_string()))
        .collect();

    let sim = Simulator::new(&SimConfig::default_edge());
    let records = sim.replay(trace.requests);
    println!("records: {}", records.len());

    for (band, linkage) in [(Some(24), oat::timeseries::Linkage::Ward)] {
        println!("\n##### band {band:?} linkage {linkage:?} #####");
        for class in [ContentClass::Video, ContentClass::Image] {
            let mut analyzer = ClusteringAnalyzer::new(
                config.sites[0].publisher,
                "V-2",
                class,
                config.start_unix,
                168,
                ClusteringConfig {
                    k: 5,
                    min_requests: 24,
                    band,
                    linkage,
                    ..Default::default()
                },
            );
            // Track which objects are clustered for purity computation.
            for r in &records {
                analyzer.observe(r);
            }
            let report = analyzer.finish();
            println!("\n== {class} ({} objects) ==", report.clustered_objects);
            for c in &report.clusters {
                let f = oat::timeseries::trend::trend_features(&c.medoid, 24);
                println!(
                    "  cluster size {:>4} share {:>5.1}% label {:<12} features {:?}",
                    c.size,
                    c.share * 100.0,
                    c.label.to_string(),
                    f.map(|f| (
                        format!("ac24 {:.2}", f.autocorr_period),
                        format!("peak {}", f.peak_index),
                        format!("conc {:.2}", f.peak_concentration),
                        format!("t90 {}", f.t90),
                        format!("last {:.2}", f.last_period_mass)
                    ))
                );
            }
            // Per planted class: how many objects have >= min requests?
            let mut planted = std::collections::HashMap::new();
            for o in catalog
                .objects()
                .iter()
                .filter(|o| o.content_class() == class)
            {
                *planted.entry(o.trend.class().to_string()).or_insert(0u32) += 1;
            }
            println!("  planted mix: {planted:?}");
            let _ = &truth;
        }
    }
}
