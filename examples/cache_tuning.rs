//! CDN-operator scenario: evaluate cache policies, capacities, tiered
//! small/large caches and push placement on adult traffic.
//!
//! Reproduces the paper's §V implications: compare eviction policies at
//! several capacities, measure the hit-ratio ceiling (infinite cache), and
//! quantify the lift from pushing popular objects to every PoP.
//!
//! ```sh
//! cargo run --release --example cache_tuning
//! ```

use oat::cdnsim::{plan_push, PolicyKind, SimConfig, Simulator, Sweep};
use oat::workload::{generate, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TraceConfig::small()
        .with_scale(0.01)
        .with_catalog_scale(0.03);
    eprintln!("generating trace (seed {})...", config.seed);
    let trace = generate(&config)?;
    eprintln!("{} requests", trace.requests.len());

    // The whole policy × capacity grid runs as one sweep over the shared
    // trace: the routing partition is computed once, LRU capacity points
    // collapse onto a single Mattson stack pass, and no grid point clones
    // the request vector.
    let mut grid = Vec::new();
    for capacity in [200_000_000u64, 1_000_000_000, 4_000_000_000] {
        for policy in PolicyKind::ALL {
            if policy == PolicyKind::Infinite && capacity != 4_000_000_000 {
                continue; // the ceiling is capacity-independent
            }
            grid.push(
                SimConfig::default_edge()
                    .with_policy(policy)
                    .with_capacity(capacity),
            );
        }
    }
    println!("policy      capacity     hit-ratio   byte-savings");
    for result in Sweep::new(&trace.requests).run(&grid) {
        println!(
            "{:<10} {:>10} {:>11.1}% {:>13.1}%",
            result.config.policy.to_string(),
            oat::analysis::report::human_bytes(result.config.cache_capacity_bytes),
            100.0 * result.stats.hit_ratio().unwrap_or(0.0),
            100.0 * result.stats.byte_savings().unwrap_or(0.0),
        );
    }

    // Push placement: plan from the first day, replay the rest.
    let split_at = config.start_unix + 86_400;
    let day1: Vec<_> = trace
        .requests
        .iter()
        .filter(|r| r.timestamp < split_at)
        .cloned()
        .collect();
    let rest: Vec<_> = trace
        .requests
        .iter()
        .filter(|r| r.timestamp >= split_at)
        .cloned()
        .collect();

    let base_sim = Simulator::new(&SimConfig::default_edge().with_capacity(1_000_000_000));
    let base = base_sim.replay_stats(&rest).hit_ratio().unwrap_or(0.0);

    let plan = plan_push(&day1, 300_000_000);
    let push_sim = Simulator::new(&SimConfig::default_edge().with_capacity(1_000_000_000));
    push_sim.preload(plan.iter().map(|p| (p.key, p.size)));
    let pushed = push_sim.replay_stats(&rest).hit_ratio().unwrap_or(0.0);

    println!(
        "\npush placement ({} objects, 300 MB budget): hit ratio {:.1}% -> {:.1}%",
        plan.len(),
        100.0 * base,
        100.0 * pushed
    );
    Ok(())
}
