//! Log-pipeline scenario: persist a trace as CDN access logs (text and
//! binary), stream it back, and analyze the re-read records.
//!
//! Demonstrates the `oat-httplog` wire formats and that the analysis
//! pipeline runs identically on logs loaded from disk — the workflow a
//! CDN operator with real logs would use.
//!
//! ```sh
//! cargo run --release --example log_pipeline
//! ```

use oat::analysis::analyzers::composition::CompositionAnalyzer;
use oat::analysis::analyzers::Analyzer;
use oat::analysis::{report, SiteMap};
use oat::cdnsim::{SimConfig, Simulator};
use oat::httplog::io::{read_all, write_all, Format};
use oat::workload::{generate, TraceConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TraceConfig::small().with_scale(0.005);
    let trace = generate(&config)?;
    let sim = Simulator::new(&SimConfig::default_edge());
    let records = sim.replay(trace.requests);
    println!("{} records generated", records.len());

    let dir = std::env::temp_dir().join("oat-log-pipeline");
    std::fs::create_dir_all(&dir)?;

    for (format, name) in [(Format::Text, "access.log"), (Format::Binary, "access.bin")] {
        let path = dir.join(name);
        // Wall-clock timing is presentation-only here: it never feeds the
        // analysis output. oat-lint: allow(determinism)
        let t0 = Instant::now();
        let file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        write_all(file, format, &records)?;
        let wrote = t0.elapsed();
        let size = std::fs::metadata(&path)?.len();

        let t1 = Instant::now(); // oat-lint: allow(determinism)
        let back = read_all(std::fs::File::open(&path)?, format)?;
        let read = t1.elapsed();
        assert_eq!(back, records, "round-trip must be lossless");
        println!(
            "{name:<11} {:>9}  write {:>6.0?}  read {:>6.0?}  ({:.1} MB/s parse)",
            report::human_bytes(size),
            wrote,
            read,
            size as f64 / 1e6 / read.as_secs_f64(),
        );
    }

    // Analyze the re-read text logs exactly as if they were real.
    let reloaded = read_all(std::fs::File::open(dir.join("access.log"))?, Format::Text)?;
    let mut analyzer = CompositionAnalyzer::new(SiteMap::from_profiles(&config.sites));
    for r in &reloaded {
        analyzer.observe(r);
    }
    println!("\n{}", report::render_composition(&analyzer.finish()));
    Ok(())
}
