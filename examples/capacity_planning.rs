//! ISP/network-operator scenario: traffic forecasting with adult-specific
//! temporal profiles.
//!
//! The paper's implication: *"it is important for network operators to
//! separately account for adult traffic in the traffic forecasting models
//! and network resource allocation"* — because adult sites peak late-night,
//! opposite the classic 7–11 pm web peak. This example derives per-site
//! hourly profiles and shows how much capacity a "classic web" forecast
//! would mis-provision during the adult peak.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use oat::analysis::analyzers::temporal::TemporalAnalyzer;
use oat::analysis::analyzers::Analyzer;
use oat::analysis::SiteMap;
use oat::cdnsim::{SimConfig, Simulator};
use oat::workload::{generate, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TraceConfig::small().with_scale(0.01);
    let trace = generate(&config)?;
    let sim = Simulator::new(&SimConfig::default_edge());
    let records = sim.replay(trace.requests);

    let mut analyzer = TemporalAnalyzer::new(SiteMap::from_profiles(&config.sites));
    for r in &records {
        analyzer.observe(r);
    }
    let report = analyzer.finish();

    // The classic web profile peaks 19:00–23:00 (prior literature cited in
    // the paper: peaks during 7–11 pm).
    let classic_peak = 19..=23;

    println!("site  peak  trough  peak/trough  share@classic-peak  share@own-peak");
    for site in &report.sites {
        let own = site.peak_hour();
        let classic_share: f64 = classic_peak.clone().map(|h| site.share_pct[h]).sum::<f64>() / 5.0;
        println!(
            "{:<5} {:>4} {:>7} {:>12} {:>18.2}% {:>14.2}%",
            site.code,
            own,
            site.trough_hour(),
            site.peak_to_trough()
                .map_or("-".into(), |r| format!("{r:.2}")),
            classic_share,
            site.share_pct[own],
        );
    }

    // Mis-provisioning: if capacity is sized on the classic-peak demand,
    // how much does the true peak exceed it?
    println!("\nprovisioning gap when sizing on the classic 7–11 pm window:");
    for site in &report.sites {
        let classic_max = classic_peak
            .clone()
            .map(|h| site.share_pct[h])
            .fold(0.0f64, f64::max);
        let true_max = site.share_pct[site.peak_hour()];
        if classic_max > 0.0 {
            let gap = 100.0 * (true_max / classic_max - 1.0);
            println!(
                "{:<5} true peak is {:>6.1}% {} the classic-window estimate",
                site.code,
                gap.abs(),
                if gap > 0.0 { "ABOVE" } else { "below" }
            );
        }
    }
    Ok(())
}
