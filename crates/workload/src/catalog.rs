//! Per-site object catalogs with planted popularity and trends.

use crate::dist::AliasTable;
use crate::profile::SiteProfile;
use crate::trendspec::TrendSpec;
use oat_httplog::{ContentClass, FileFormat, ObjectId, PublisherId};
use oat_timeseries::TrendClass;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One object in a site's catalog: the generative ground truth behind every
/// log line that references it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogObject {
    /// Hashed-URL identifier carried in log records.
    pub id: ObjectId,
    /// File format.
    pub format: FileFormat,
    /// Size in bytes.
    pub size: u64,
    /// Injection time, seconds after trace start (0 = pre-existing).
    pub injection_secs: u64,
    /// Static popularity weight (Zipf).
    pub weight: f64,
    /// Temporal popularity envelope.
    pub trend: TrendSpec,
}

impl CatalogObject {
    /// The paper's content class of this object.
    pub fn content_class(&self) -> ContentClass {
        self.format.class()
    }
}

/// A complete site catalog plus the sampling table used by the generator.
#[derive(Debug, Clone)]
pub struct Catalog {
    publisher: PublisherId,
    objects: Vec<CatalogObject>,
    sampler: AliasTable,
}

impl Catalog {
    /// Builds a catalog of `n_objects` for `profile`.
    ///
    /// `trace_secs` bounds injection times and flash-crowd spikes. Weights
    /// combine Zipf rank popularity (shuffled across objects), the
    /// per-class request boost, and a mild bonus for diurnal (front-page)
    /// objects.
    ///
    /// # Panics
    ///
    /// Panics if `n_objects == 0`.
    pub fn build<R: Rng + ?Sized>(
        profile: &SiteProfile,
        n_objects: usize,
        trace_secs: u64,
        rng: &mut R,
    ) -> Self {
        assert!(n_objects > 0, "catalog must contain at least one object");
        let trace_hours = trace_secs as f64 / 3600.0;

        // Zipf rank weights, shuffled so popularity is independent of
        // class/injection order.
        let zipf = zipf_ranks(n_objects, profile.zipf_alpha);
        let mut ranks: Vec<usize> = (0..n_objects).collect();
        ranks.shuffle(rng);

        let mut objects = Vec::with_capacity(n_objects);
        let mut weights = Vec::with_capacity(n_objects);
        for i in 0..n_objects {
            let class = sample_class(profile, rng);
            let params = profile.class_params(class);
            let format = sample_format(class, rng);
            let size = params.sizes.sample(rng);
            let injection_secs = if rng.gen::<f64>() < profile.preexisting_fraction {
                0
            } else {
                rng.gen_range(0..trace_secs.max(1))
            };
            let trend_class = profile.trend_mix.sample(rng);
            let trend =
                TrendSpec::sample(trend_class, profile.diurnal.peak_hour(), trace_hours, rng);
            // Front-page (diurnal) objects draw disproportionate attention
            // (the paper links diurnal patterns to front-page browsing).
            let trend_bonus = if trend_class == TrendClass::Diurnal {
                2.0
            } else {
                1.0
            };
            let weight = zipf[ranks[i]] * params.request_boost * trend_bonus;
            objects.push(CatalogObject {
                id: ObjectId::new(rng.gen()),
                format,
                size,
                injection_secs,
                weight,
                trend,
            });
            weights.push(weight);
        }
        let sampler = AliasTable::new(&weights).expect("weights are positive");
        Self {
            publisher: profile.publisher,
            objects,
            sampler,
        }
    }

    /// The publisher this catalog belongs to.
    pub fn publisher(&self) -> PublisherId {
        self.publisher
    }

    /// All objects.
    pub fn objects(&self) -> &[CatalogObject] {
        &self.objects
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the catalog is empty (never true for a built catalog).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Samples an object index from the static popularity distribution
    /// (ignores temporal envelopes — callers apply acceptance-rejection).
    pub fn sample_static<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sampler.sample(rng)
    }

    /// Samples an object index honouring its temporal envelope at absolute
    /// trace offset `t_secs` and audience-local hour `local_hour`.
    ///
    /// Uses acceptance-rejection over the static distribution; falls back
    /// to the best candidate seen when acceptance keeps failing (very early
    /// trace times with mostly-uninjected catalogs).
    pub fn sample_at<R: Rng + ?Sized>(&self, t_secs: f64, local_hour: f64, rng: &mut R) -> usize {
        let mut best = 0usize;
        let mut best_intensity = -1.0f64;
        for _ in 0..48 {
            let idx = self.sampler.sample(rng);
            let obj = &self.objects[idx];
            let age = t_secs - obj.injection_secs as f64;
            let intensity = obj.trend.intensity(age, local_hour);
            let max = obj.trend.max_intensity();
            if rng.gen::<f64>() * max < intensity {
                return idx;
            }
            if intensity > best_intensity {
                best_intensity = intensity;
                best = idx;
            }
        }
        best
    }

    /// Ground-truth per-object hourly request envelope (unnormalized), used
    /// by tests to validate the clustering pipeline.
    pub fn envelope_series(&self, idx: usize, trace_secs: u64, tz_offset_secs: i32) -> Vec<f64> {
        let hours = (trace_secs / 3600) as usize;
        let obj = &self.objects[idx];
        (0..hours)
            .map(|h| {
                let t = h as f64 * 3600.0 + 1800.0;
                let local = (t + tz_offset_secs as f64).rem_euclid(86_400.0) / 3600.0;
                obj.trend.intensity(t - obj.injection_secs as f64, local)
            })
            .collect()
    }
}

fn zipf_ranks(n: usize, alpha: f64) -> Vec<f64> {
    (1..=n).map(|r| (r as f64).powf(-alpha)).collect()
}

fn sample_class<R: Rng + ?Sized>(profile: &SiteProfile, rng: &mut R) -> ContentClass {
    let (v, i, _o) = profile.catalog_mix();
    let x: f64 = rng.gen();
    if x < v {
        ContentClass::Video
    } else if x < v + i {
        ContentClass::Image
    } else {
        ContentClass::Other
    }
}

/// Era-appropriate format mix per class (FLV still common in 2015 video;
/// JPG dominates images with GIF previews present).
fn sample_format<R: Rng + ?Sized>(class: ContentClass, rng: &mut R) -> FileFormat {
    let x: f64 = rng.gen();
    match class {
        ContentClass::Video => {
            if x < 0.45 {
                FileFormat::Mp4
            } else if x < 0.80 {
                FileFormat::Flv
            } else if x < 0.90 {
                FileFormat::Wmv
            } else if x < 0.96 {
                FileFormat::Avi
            } else {
                FileFormat::Mpg
            }
        }
        ContentClass::Image => {
            if x < 0.62 {
                FileFormat::Jpg
            } else if x < 0.85 {
                FileFormat::Gif
            } else if x < 0.97 {
                FileFormat::Png
            } else if x < 0.99 {
                FileFormat::Bmp
            } else {
                FileFormat::Tiff
            }
        }
        ContentClass::Other => {
            if x < 0.35 {
                FileFormat::Html
            } else if x < 0.55 {
                FileFormat::Js
            } else if x < 0.70 {
                FileFormat::Css
            } else if x < 0.80 {
                FileFormat::Xml
            } else if x < 0.90 {
                FileFormat::Txt
            } else {
                FileFormat::Mp3
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const WEEK: u64 = 7 * 86_400;

    fn build(profile: &SiteProfile, n: usize, seed: u64) -> Catalog {
        let mut rng = StdRng::seed_from_u64(seed);
        Catalog::build(profile, n, WEEK, &mut rng)
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_catalog_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Catalog::build(&SiteProfile::v1(), 0, WEEK, &mut rng);
    }

    #[test]
    fn class_mix_approximates_profile() {
        let catalog = build(&SiteProfile::v1(), 5_000, 1);
        let videos = catalog
            .objects()
            .iter()
            .filter(|o| o.content_class() == ContentClass::Video)
            .count();
        let share = videos as f64 / 5_000.0;
        assert!((share - 0.98).abs() < 0.02, "video share {share}");
        assert_eq!(catalog.publisher(), SiteProfile::v1().publisher);
        assert_eq!(catalog.len(), 5_000);
        assert!(!catalog.is_empty());
    }

    #[test]
    fn object_ids_unique() {
        let catalog = build(&SiteProfile::p1(), 10_000, 2);
        let ids: std::collections::HashSet<_> = catalog.objects().iter().map(|o| o.id).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn injection_times_within_trace() {
        let catalog = build(&SiteProfile::s1(), 5_000, 3);
        let preexisting = catalog
            .objects()
            .iter()
            .filter(|o| o.injection_secs == 0)
            .count();
        let share = preexisting as f64 / 5_000.0;
        assert!((share - SiteProfile::s1().preexisting_fraction).abs() < 0.05);
        assert!(catalog.objects().iter().all(|o| o.injection_secs < WEEK));
    }

    #[test]
    fn static_sampling_is_skewed() {
        let catalog = build(&SiteProfile::v2(), 2_000, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u32; 2_000];
        for _ in 0..100_000 {
            counts[catalog.sample_static(&mut rng)] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u32 = counts[..200].iter().sum();
        assert!(
            top_decile as f64 / 100_000.0 > 0.5,
            "top 10 % draw {top_decile} of 100k"
        );
    }

    #[test]
    fn sample_at_respects_injection() {
        let mut profile = SiteProfile::p1();
        profile.preexisting_fraction = 0.3;
        let mut rng = StdRng::seed_from_u64(6);
        let catalog = Catalog::build(&profile, 2_000, WEEK, &mut rng);
        // At t = 1 hour, essentially all sampled objects must already be
        // injected (the fallback path can rarely pick the best uninjected
        // candidate, so allow a small margin).
        let mut uninjected = 0;
        for _ in 0..2_000 {
            let idx = catalog.sample_at(3_600.0, 22.0, &mut rng);
            if catalog.objects()[idx].injection_secs > 3_600 {
                uninjected += 1;
            }
        }
        assert!(uninjected < 40, "{uninjected} uninjected objects sampled");
    }

    #[test]
    fn envelope_series_matches_trend_length() {
        let catalog = build(&SiteProfile::p2(), 100, 7);
        let series = catalog.envelope_series(0, WEEK, -5 * 3600);
        assert_eq!(series.len(), 168);
        assert!(series.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn format_classes_consistent() {
        let catalog = build(&SiteProfile::v2(), 3_000, 8);
        for obj in catalog.objects() {
            assert_eq!(obj.format.class(), obj.content_class());
        }
        // GIF previews exist among images.
        let gifs = catalog
            .objects()
            .iter()
            .filter(|o| o.format == FileFormat::Gif)
            .count();
        assert!(gifs > 100, "expected GIF previews, found {gifs}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build(&SiteProfile::v1(), 500, 42);
        let b = build(&SiteProfile::v1(), 500, 42);
        assert_eq!(a.objects(), b.objects());
    }
}
