//! The trace generator: users × sessions × objects → a time-ordered
//! request stream.
//!
//! Generation is sharded: each site's user population is split into
//! fixed-size shards dispatched to a worker pool, and every user draws
//! from a private RNG stream seeded by `(seed, site, user)` — so the
//! emitted trace is byte-identical at any thread count *and* any shard
//! size, including `threads = 1`. Shards sort locally and a k-way heap
//! merge ([`crate::merge`]) combines them, replacing the former global
//! post-hoc sort. [`generate_streaming`] exposes the merged stream as
//! bounded batches for the streaming replay/analysis pipeline.

use crate::catalog::Catalog;
use crate::dist::LogNormal;
use crate::merge::{merge_shards, KWayMerge, SortedShard};
use crate::profile::SiteProfile;
use crate::temporal::DiurnalCurve;
use crate::users::{build_population, UserProfile};
use oat_httplog::{
    ColumnarDirReader, ColumnarDirWriter, ContentClass, HttplogError, Request, RequestKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

pub use oat_httplog::request::CHUNK_BYTES;

/// Probability a video view downloads the whole file with one `GET`
/// (progressive download) instead of chunked range requests.
pub const FULL_VIDEO_FETCH_RATE: f64 = 0.5;

/// Probability an "other"-class view is an analytics beacon (`204`).
pub const BEACON_RATE: f64 = 0.25;

/// Maximum chunks fetched per video view.
pub const MAX_CHUNKS_PER_VIEW: u64 = 15;

/// Default users per generation shard. Small enough that even the
/// laptop-scale configs produce more shards than cores (load balance),
/// large enough that per-shard sort/merge overhead stays negligible.
pub const DEFAULT_SHARD_SIZE: usize = 512;

/// Default requests per streamed batch from [`generate_streaming`].
pub const DEFAULT_BATCH_SIZE: usize = 32_768;

/// Above this mean, the Poisson sampler switches from Knuth's product
/// method (which needs `exp(-λ)` and `O(λ)` uniforms) to the normal
/// approximation.
const POISSON_NORMAL_CUTOFF: f64 = 30.0;

/// Generation parameters for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master RNG seed; everything is deterministic given the seed.
    pub seed: u64,
    /// Request-volume scale relative to the paper (1.0 ≈ 5.4 M records).
    pub scale: f64,
    /// Catalog-size scale relative to the paper (1.0 ≈ 131 K objects).
    pub catalog_scale: f64,
    /// Trace duration in seconds (the paper's traces span one week).
    pub duration_secs: u64,
    /// Unix time of trace start (defaults to a Saturday, matching the
    /// paper's Sat→Fri figures).
    pub start_unix: u64,
    /// The sites to generate.
    pub sites: Vec<SiteProfile>,
    /// Multi-day diurnal shaping (weekday/weekend volume, per-day
    /// phase/amplitude drift). `None` keeps the original single-curve
    /// model — and byte-identical traces for pre-existing configs.
    #[serde(default)]
    pub multi_day: Option<MultiDayModel>,
}

impl TraceConfig {
    /// A one-week, paper-scale config over the five paper sites.
    pub fn paper_week() -> Self {
        Self {
            seed: 0x0A7_5EED,
            scale: 1.0,
            catalog_scale: 1.0,
            duration_secs: 7 * 86_400,
            start_unix: 1_444_435_200, // Sat 2015-10-10 00:00:00 UTC
            sites: SiteProfile::paper_five(),
            multi_day: None,
        }
    }

    /// A laptop-friendly config: ~1–2 % of the paper's request volume.
    pub fn small() -> Self {
        Self {
            scale: 0.015,
            catalog_scale: 0.04,
            ..Self::paper_week()
        }
    }

    /// Sets the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the request-volume scale (builder-style).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the catalog scale (builder-style).
    pub fn with_catalog_scale(mut self, catalog_scale: f64) -> Self {
        self.catalog_scale = catalog_scale;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for non-positive scales, an empty site list,
    /// or a zero duration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.scale <= 0.0 || !self.scale.is_finite() {
            return Err(ConfigError::BadScale);
        }
        if self.catalog_scale <= 0.0 || !self.catalog_scale.is_finite() {
            return Err(ConfigError::BadScale);
        }
        if self.duration_secs < 3_600 {
            return Err(ConfigError::DurationTooShort);
        }
        if self.sites.is_empty() {
            return Err(ConfigError::NoSites);
        }
        if let Some(model) = &self.multi_day {
            model.validate()?;
        }
        Ok(())
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// Multi-day shaping of session-start times: a weekday/weekend volume
/// factor plus per-day drift of each site's diurnal curve. The measurement
/// papers behind the workload (a week of portal logs, passive multi-day
/// captures) all show day-to-day structure a single repeated curve cannot
/// express; this model adds it without touching the per-user RNG-stream
/// determinism — given the same config, traces remain byte-identical at
/// any thread count or shard size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiDayModel {
    /// Relative session volume on Saturdays/Sundays (local time);
    /// `1.0` = same as weekdays.
    pub weekend_factor: f64,
    /// Hours the diurnal peak shifts per elapsed day (wraps mod 24).
    pub phase_drift_hours_per_day: f64,
    /// Additive amplitude change per elapsed day (the result is clamped
    /// to `[0, 1]`).
    pub amplitude_drift_per_day: f64,
}

impl MultiDayModel {
    /// A corpus-flavored default: weekends ~25 % busier, the evening peak
    /// drifting slightly later through the week, amplitude decaying a
    /// touch as the week wears on.
    pub fn corpus() -> Self {
        Self {
            weekend_factor: 1.25,
            phase_drift_hours_per_day: 0.3,
            amplitude_drift_per_day: -0.01,
        }
    }

    /// The session-volume weight of day `day` (0-based from
    /// `start_unix`), including the partial-day fraction when the trace
    /// does not end on a day boundary.
    pub(crate) fn day_weight(&self, start_unix: u64, day: u64, duration_days: f64) -> f64 {
        let base = if is_weekend(start_unix, day) {
            self.weekend_factor
        } else {
            1.0
        };
        base * (duration_days - day as f64).clamp(0.0, 1.0)
    }

    /// The site's diurnal curve as drifted on day `day`.
    pub(crate) fn day_curve(&self, base: &DiurnalCurve, day: u64) -> DiurnalCurve {
        let d = day as f64;
        // `DiurnalCurve::new` wraps the peak mod 24 and clamps amplitude.
        DiurnalCurve::new(
            base.peak_hour() + self.phase_drift_hours_per_day * d,
            base.amplitude() + self.amplitude_drift_per_day * d,
        )
    }

    fn validate(&self) -> Result<(), ConfigError> {
        let ok = self.weekend_factor.is_finite()
            && self.weekend_factor > 0.0
            && self.phase_drift_hours_per_day.is_finite()
            && self.amplitude_drift_per_day.is_finite();
        if ok {
            Ok(())
        } else {
            Err(ConfigError::BadMultiDay)
        }
    }
}

impl Default for MultiDayModel {
    /// The neutral model: every day identical to the base curve.
    fn default() -> Self {
        Self {
            weekend_factor: 1.0,
            phase_drift_hours_per_day: 0.0,
            amplitude_drift_per_day: 0.0,
        }
    }
}

/// Whether `start_unix + day` days falls on a Saturday or Sunday (UTC
/// calendar; Unix day 0 was a Thursday).
fn is_weekend(start_unix: u64, day: u64) -> bool {
    let dow = ((start_unix / 86_400).wrapping_add(day).wrapping_add(4)) % 7;
    dow == 0 || dow == 6
}

/// Error validating a [`TraceConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A scale was non-positive or non-finite.
    BadScale,
    /// Duration must be at least one hour.
    DurationTooShort,
    /// At least one site profile is required.
    NoSites,
    /// The multi-day model had a non-finite or non-positive parameter.
    BadMultiDay,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            Self::BadScale => "scales must be positive and finite",
            Self::DurationTooShort => "trace duration must be at least one hour",
            Self::NoSites => "at least one site profile is required",
            Self::BadMultiDay => {
                "multi-day model parameters must be finite (weekend factor positive)"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

/// Options controlling *how* a trace is generated — never *what* it
/// contains: any combination yields the same trace for the same config.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenOptions {
    /// Worker threads for shard generation; `0` = all available cores.
    pub threads: usize,
    /// Users per generation shard; `0` = [`DEFAULT_SHARD_SIZE`].
    pub shard_size: usize,
}

impl GenOptions {
    pub(crate) fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    pub(crate) fn resolved_shard_size(&self) -> usize {
        if self.shard_size == 0 {
            DEFAULT_SHARD_SIZE
        } else {
            self.shard_size
        }
    }
}

/// A generated trace: the request stream plus the generative ground truth.
#[derive(Debug)]
pub struct Trace {
    /// All requests across all sites, sorted by timestamp.
    pub requests: Vec<Request>,
    /// Per-site catalogs (ground truth for popularity/trend validation),
    /// index-aligned with `config.sites`.
    pub catalogs: Vec<Catalog>,
    /// Per-site user populations, index-aligned with `config.sites`.
    pub populations: Vec<Vec<UserProfile>>,
    /// The configuration the trace was generated from.
    pub config: TraceConfig,
    /// Per-site offset table built during the k-way merge:
    /// `site_index[s]` lists the positions of site `s`'s requests in
    /// `requests`, in order.
    site_index: Vec<Vec<u32>>,
}

impl Trace {
    /// Convenience: requests of one site.
    ///
    /// Served from the per-site offset table recorded during the merge
    /// (`O(k)` for `k` site requests), not a scan of the whole trace.
    pub fn site_requests(&self, publisher: oat_httplog::PublisherId) -> Vec<&Request> {
        match self
            .config
            .sites
            .iter()
            .position(|s| s.publisher == publisher)
        {
            Some(site) if site < self.site_index.len() => self.site_index[site]
                .iter()
                .map(|&pos| &self.requests[pos as usize])
                .collect(),
            _ => self
                .requests
                .iter()
                .filter(|r| r.publisher == publisher)
                .collect(),
        }
    }
}

/// A trace being generated in the background: the generative ground truth
/// (catalogs, populations) is available immediately; the request stream
/// arrives as globally time-sorted batches on [`TraceStream::batches`].
#[derive(Debug)]
pub struct TraceStream {
    /// Per-site catalogs, index-aligned with `config.sites`.
    pub catalogs: Arc<Vec<Catalog>>,
    /// Per-site user populations, index-aligned with `config.sites`.
    pub populations: Arc<Vec<Vec<UserProfile>>>,
    /// The configuration the trace is generated from.
    pub config: TraceConfig,
    /// Time-sorted request batches; the channel closes when the trace is
    /// complete. Dropping the receiver cancels generation.
    pub batches: crossbeam::channel::Receiver<Vec<Request>>,
}

/// Generates a [`Trace`] from a [`TraceConfig`] with default options
/// (all cores, default shard size).
///
/// # Errors
///
/// Returns [`ConfigError`] if the config fails validation.
pub fn generate(config: &TraceConfig) -> Result<Trace, ConfigError> {
    generate_with(config, &GenOptions::default())
}

/// Generates a [`Trace`] with explicit threading/sharding options.
///
/// Each site's users are split into `shard_size` shards pulled from a
/// shared queue by `threads` workers; every user's requests come from a
/// private splitmix-derived RNG stream, so the output is byte-identical
/// for any `GenOptions`.
///
/// # Errors
///
/// Returns [`ConfigError`] if the config fails validation.
pub fn generate_with(config: &TraceConfig, opts: &GenOptions) -> Result<Trace, ConfigError> {
    config.validate()?;
    let (catalogs, populations) = build_sites(config);
    let shards = generate_shards(
        config,
        &catalogs,
        &populations,
        opts.resolved_threads(),
        opts.resolved_shard_size(),
    );
    let (requests, site_index) = merge_shards(shards, config.sites.len());
    Ok(Trace {
        requests,
        catalogs,
        populations,
        config: config.clone(),
        site_index,
    })
}

/// Starts generating a trace in the background, returning the ground
/// truth plus a bounded channel of time-sorted request batches
/// (`batch_size` requests each; `0` = [`DEFAULT_BATCH_SIZE`]).
///
/// The batches concatenate to exactly the `requests` of
/// [`generate_with`] for the same config — the streaming and batch paths
/// are interchangeable.
///
/// # Errors
///
/// Returns [`ConfigError`] if the config fails validation.
pub fn generate_streaming(
    config: &TraceConfig,
    opts: &GenOptions,
    batch_size: usize,
) -> Result<TraceStream, ConfigError> {
    config.validate()?;
    let batch_size = if batch_size == 0 {
        DEFAULT_BATCH_SIZE
    } else {
        batch_size
    };
    let threads = opts.resolved_threads();
    let shard_size = opts.resolved_shard_size();
    let (catalogs, populations) = build_sites(config);
    let catalogs = Arc::new(catalogs);
    let populations = Arc::new(populations);
    let (tx, rx) = crossbeam::channel::bounded::<Vec<Request>>(2);
    {
        let catalogs = Arc::clone(&catalogs);
        let populations = Arc::clone(&populations);
        let config = config.clone();
        std::thread::spawn(move || {
            let shards = generate_shards(&config, &catalogs, &populations, threads, shard_size);
            let mut batch = Vec::with_capacity(batch_size);
            for (_, request) in KWayMerge::new(shards) {
                batch.push(request);
                if batch.len() >= batch_size
                    && tx
                        .send(std::mem::replace(
                            &mut batch,
                            Vec::with_capacity(batch_size),
                        ))
                        .is_err()
                {
                    return; // receiver dropped: abandon the rest
                }
            }
            if !batch.is_empty() {
                let _ = tx.send(batch);
            }
        });
    }
    Ok(TraceStream {
        catalogs,
        populations,
        config: config.clone(),
        batches: rx,
    })
}

/// A trace spooled to an on-disk [columnar](oat_httplog::codec::columnar)
/// shard directory instead of memory: the generative ground truth plus the
/// spool location. Peak RSS during generation is bounded by one shard's
/// column buffers plus the bounded in-flight batches, never the trace
/// length.
#[derive(Debug)]
pub struct ColumnarTrace {
    /// Per-site catalogs, index-aligned with `config.sites`. Empty from
    /// [`crate::generate_columnar_parallel`], which drops the site tables
    /// after run generation to keep peak RSS bounded.
    pub catalogs: Arc<Vec<Catalog>>,
    /// Per-site user populations, index-aligned with `config.sites`.
    /// Empty from [`crate::generate_columnar_parallel`] (see `catalogs`).
    pub populations: Arc<Vec<Vec<UserProfile>>>,
    /// The configuration the trace was generated from.
    pub config: TraceConfig,
    /// Directory holding the request shards.
    pub dir: std::path::PathBuf,
    /// Shard filename prefix.
    pub prefix: String,
    /// Requests written.
    pub rows: u64,
    /// Shards written.
    pub shards: u64,
}

impl ColumnarTrace {
    /// Opens a bounded-memory reader over the spooled request shards.
    ///
    /// # Errors
    ///
    /// Propagates [`HttplogError::Io`] if the spool directory cannot be
    /// listed.
    pub fn reader(&self) -> Result<ColumnarDirReader<Request>, HttplogError> {
        ColumnarDirReader::open(&self.dir, &self.prefix)
    }

    /// Rebuilds the per-site catalogs and user populations from `config`.
    ///
    /// [`crate::generate_columnar_parallel`] returns these tables empty so
    /// they never stack under the merge-phase buffers. Site-table
    /// derivation is a pure function of the config (it never touches the
    /// request RNG streams), so callers that need the generative ground
    /// truth alongside the spool — per-figure analyzers, validation
    /// harnesses — can recreate the exact tables the run was generated
    /// from. A no-op on traces whose tables are already present (the
    /// serial path's). Runs one thread per site; seconds even at paper
    /// scale.
    pub fn rebuild_site_tables(&mut self) {
        if !self.catalogs.is_empty() {
            return;
        }
        let (catalogs, populations) = build_sites(&self.config);
        self.catalogs = Arc::new(catalogs);
        self.populations = Arc::new(populations);
    }
}

/// Error from [`generate_columnar`]: either the config was invalid or the
/// spool directory could not be written.
#[derive(Debug)]
pub enum ColumnarGenError {
    /// The trace config failed validation.
    Config(ConfigError),
    /// Writing the shard directory failed.
    Spool(HttplogError),
}

impl std::fmt::Display for ColumnarGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid trace config: {e}"),
            Self::Spool(e) => write!(f, "columnar spool failed: {e}"),
        }
    }
}

impl std::error::Error for ColumnarGenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::Spool(e) => Some(e),
        }
    }
}

impl From<ConfigError> for ColumnarGenError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<HttplogError> for ColumnarGenError {
    fn from(e: HttplogError) -> Self {
        Self::Spool(e)
    }
}

/// Generates a trace straight into a columnar shard directory
/// (`<prefix>-NNNNNN.col` under `dir`), streaming batches from
/// [`generate_streaming`] into a [`ColumnarDirWriter`] so the full request
/// set is never resident.
///
/// The spooled rows concatenate to exactly the `requests` of
/// [`generate_with`] for the same config: batch, streaming and columnar
/// paths are interchangeable. `rows_per_shard = 0` uses the shard-size
/// default ([`oat_httplog::shard::DEFAULT_ROWS_PER_SHARD`]).
///
/// # Errors
///
/// [`ColumnarGenError::Config`] if the config fails validation,
/// [`ColumnarGenError::Spool`] if the shard directory cannot be written.
pub fn generate_columnar(
    config: &TraceConfig,
    opts: &GenOptions,
    batch_size: usize,
    dir: &std::path::Path,
    prefix: &str,
    rows_per_shard: usize,
) -> Result<ColumnarTrace, ColumnarGenError> {
    let stream = generate_streaming(config, opts, batch_size)?;
    let mut writer = ColumnarDirWriter::<Request>::new(dir, prefix, rows_per_shard)?;
    for batch in stream.batches.iter() {
        writer.push_batch(&batch)?;
    }
    let (rows, shards) = writer.finish()?;
    Ok(ColumnarTrace {
        catalogs: stream.catalogs,
        populations: stream.populations,
        config: stream.config,
        dir: dir.to_path_buf(),
        prefix: prefix.to_string(),
        rows,
        shards,
    })
}

/// SplitMix64 finalizer (Steele et al.) — the standard 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seed of one user's private RNG stream. Mixing `(seed, site, user)`
/// through splitmix makes every stream independent of how users are
/// grouped into shards and shards onto threads.
fn user_stream_seed(seed: u64, site: u64, user: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed).wrapping_add(site)).wrapping_add(user))
}

/// Builds every site's catalog and user population (one thread per site;
/// this phase is seconds even at paper scale). Uses the same per-site RNG
/// stream derivation as the original serial generator, so ground truth is
/// unchanged across the sharding refactor.
pub(crate) fn build_sites(config: &TraceConfig) -> (Vec<Catalog>, Vec<Vec<UserProfile>>) {
    let built: Vec<(Catalog, Vec<UserProfile>)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = config
            .sites
            .iter()
            .enumerate()
            .map(|(i, site)| {
                let config = &*config;
                scope.spawn(move |_| {
                    let mut rng =
                        StdRng::seed_from_u64(config.seed ^ (0x9E37_79B9 + i as u64 * 0x1000_0001));
                    let catalog_n = ((site.catalog_size as f64 * config.catalog_scale).round()
                        as usize)
                        .max(60);
                    let catalog = Catalog::build(site, catalog_n, config.duration_secs, &mut rng);

                    // Calibrate the user count from the target record volume.
                    let expansion = expected_records_per_view(&catalog);
                    let target_records = (site.request_volume as f64 * config.scale).max(50.0);
                    let target_views = target_records / expansion;
                    let views_per_user = site.sessions_per_user * site.requests_per_session;
                    let n_users = ((target_views / views_per_user).round() as usize).max(10);
                    let users = build_population(site, n_users, &mut rng);
                    (catalog, users)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("site build panicked"))
            .collect()
    })
    .expect("site build threads panicked");
    built.into_iter().unzip()
}

/// One unit of generation work: `site`'s users `[lo, hi)`.
pub(crate) type ShardTask = (usize, usize, usize);

pub(crate) fn shard_tasks(populations: &[Vec<UserProfile>], shard_size: usize) -> Vec<ShardTask> {
    let shard_size = shard_size.max(1);
    let mut tasks = Vec::new();
    for (site, users) in populations.iter().enumerate() {
        let mut lo = 0;
        while lo < users.len() {
            let hi = lo.saturating_add(shard_size).min(users.len());
            tasks.push((site, lo, hi));
            lo = hi;
        }
    }
    tasks
}

/// Generates every shard on a pool of `threads` workers pulling tasks
/// from a shared queue. Shard outputs are placed by task index, so the
/// result — and therefore the merged trace — is independent of which
/// worker ran which shard.
fn generate_shards(
    config: &TraceConfig,
    catalogs: &[Catalog],
    populations: &[Vec<UserProfile>],
    threads: usize,
    shard_size: usize,
) -> Vec<SortedShard> {
    let tasks = shard_tasks(populations, shard_size);
    let iats = site_iats(config);
    let workers = threads.clamp(1, tasks.len().max(1));
    let next = AtomicUsize::new(0);

    let mut slots: Vec<Option<Vec<Request>>> = (0..tasks.len()).map(|_| None).collect();
    let finished: Vec<Vec<(usize, Vec<Request>)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let config = &*config;
                let tasks = &tasks;
                let iats = &iats;
                let next = &next;
                let catalogs = &*catalogs;
                let populations = &*populations;
                scope.spawn(move |_| {
                    let mut mine: Vec<(usize, Vec<Request>)> = Vec::new();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= tasks.len() {
                            break;
                        }
                        let (site, lo, hi) = tasks[t];
                        let requests = generate_shard(
                            config,
                            &config.sites[site],
                            &catalogs[site],
                            &populations[site],
                            &iats[site],
                            site,
                            lo,
                            hi,
                        );
                        mine.push((t, requests));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
    .expect("shard workers panicked");
    for (t, requests) in finished.into_iter().flatten() {
        slots[t] = Some(requests);
    }
    tasks
        .iter()
        .zip(slots)
        .map(|(&(site, _, _), requests)| SortedShard {
            site,
            requests: requests.expect("every shard generated"),
        })
        .collect()
}

/// One per-site inter-arrival distribution, index-aligned with
/// `config.sites`.
pub(crate) fn site_iats(config: &TraceConfig) -> Vec<LogNormal> {
    config
        .sites
        .iter()
        .map(|site| {
            LogNormal::from_median(site.within_iat_median_secs, site.within_iat_sigma)
                .expect("profile IAT parameters are valid")
        })
        .collect()
}

/// Generates one shard — `site`'s users `[lo, hi)` — sorted by
/// `(timestamp, user, object)`. The per-user scratch (`seen` set,
/// favorites list) is allocated once per shard and reused across users.
#[allow(clippy::too_many_arguments)]
pub(crate) fn generate_shard(
    config: &TraceConfig,
    site: &SiteProfile,
    catalog: &Catalog,
    users: &[UserProfile],
    iat: &LogNormal,
    site_idx: usize,
    lo: usize,
    hi: usize,
) -> Vec<Request> {
    let views_per_user = (site.sessions_per_user * site.requests_per_session).ceil() as usize;
    let mut out = Vec::with_capacity((hi - lo) * (views_per_user + 1) * 2);
    // Pre-sized so the hot emit path never rehashes for a typical user.
    let mut seen: HashSet<u64> = HashSet::with_capacity(views_per_user * 2 + 8);
    let mut favorites: Vec<usize> = Vec::with_capacity(8);
    for (user_idx, user) in users.iter().enumerate().take(hi).skip(lo) {
        let mut rng = StdRng::seed_from_u64(user_stream_seed(
            config.seed,
            site_idx as u64,
            user_idx as u64,
        ));
        generate_user(
            site,
            config,
            catalog,
            user,
            iat,
            &mut rng,
            &mut seen,
            &mut favorites,
            &mut out,
        );
    }
    out.sort_by_key(|r| (r.timestamp, r.user.raw(), r.object.raw()));
    out
}

/// Expected emitted records per object view, weighted by popularity
/// (videos expand into chunk requests).
fn expected_records_per_view(catalog: &Catalog) -> f64 {
    let mut total_weight = 0.0;
    let mut weighted_records = 0.0;
    for obj in catalog.objects() {
        let records = if obj.content_class() == ContentClass::Video {
            let chunks = chunk_count(obj.size) as f64;
            // Half the views are progressive full downloads (1 record);
            // the rest fetch a mean watch fraction of 0.6 of the chunks.
            FULL_VIDEO_FETCH_RATE + (1.0 - FULL_VIDEO_FETCH_RATE) * (chunks * 0.6).max(1.0)
        } else {
            1.0
        };
        total_weight += obj.weight;
        weighted_records += obj.weight * records;
    }
    if total_weight == 0.0 {
        1.0
    } else {
        weighted_records / total_weight
    }
}

/// Total chunks an object occupies.
pub fn chunk_count(size: u64) -> u64 {
    size.div_ceil(CHUNK_BYTES).clamp(1, MAX_CHUNKS_PER_VIEW)
}

#[allow(clippy::too_many_arguments)]
fn generate_user(
    site: &SiteProfile,
    config: &TraceConfig,
    catalog: &Catalog,
    user: &UserProfile,
    iat: &LogNormal,
    rng: &mut StdRng,
    seen: &mut HashSet<u64>,
    favorites: &mut Vec<usize>,
    out: &mut Vec<Request>,
) {
    seen.clear();
    favorites.clear();
    // Mean activity is ~1.25 (Rayleigh(1) × U(0.5, 1.5)); normalize so the
    // configured per-user session mean holds.
    let lambda = site.sessions_per_user * user.activity / 1.25;
    let n_sessions = sample_poisson(lambda, rng).max(1);

    for _ in 0..n_sessions {
        let start = sample_session_start(site, config, user, rng);
        let n_views = sample_poisson(site.requests_per_session, rng).max(1);
        let mut t = start;
        for view in 0..n_views {
            if view > 0 {
                t += iat.sample(rng);
            }
            if t >= config.duration_secs as f64 {
                break;
            }
            let idx = pick_object(site, catalog, user, favorites, t, rng);
            emit_view(site, config, catalog, user, idx, &mut t, seen, rng, out);
            update_favorites(site, catalog, idx, favorites, rng);
        }
    }
}

fn sample_session_start(
    site: &SiteProfile,
    config: &TraceConfig,
    user: &UserProfile,
    rng: &mut StdRng,
) -> f64 {
    if let Some(model) = &config.multi_day {
        return sample_session_start_multi_day(site, config, user, model, rng);
    }
    let days = (config.duration_secs as f64 / 86_400.0).max(1.0);
    // Local-time-of-day from the site's diurnal curve (rejection sampling).
    let max = 1.0 + site.diurnal.amplitude();
    let hour = loop {
        let h = rng.gen_range(0.0..24.0);
        if rng.gen::<f64>() * max <= site.diurnal.intensity(h) {
            break h;
        }
    };
    let day = rng.gen_range(0.0..days).floor();
    let local = day * 86_400.0 + hour * 3_600.0;
    let utc = local - user.tz_offset_secs as f64;
    utc.rem_euclid(config.duration_secs as f64)
}

/// Multi-day variant: the day is drawn first (weekend-weighted, partial
/// final day weighted by its fraction), then the hour is rejection-sampled
/// from that day's drifted curve. Draws stay on the user's private RNG
/// stream, so the thread/shard-count determinism invariant is untouched.
fn sample_session_start_multi_day(
    site: &SiteProfile,
    config: &TraceConfig,
    user: &UserProfile,
    model: &MultiDayModel,
    rng: &mut StdRng,
) -> f64 {
    let duration = config.duration_secs as f64;
    let days = (duration / 86_400.0).max(1.0);
    let n_days = days.ceil() as u64;
    let mut total_weight = 0.0;
    // Traces span days, not years: two passes beat allocating per draw.
    for day in 0..n_days {
        total_weight += model.day_weight(config.start_unix, day, days);
    }
    let mut pick = rng.gen::<f64>() * total_weight;
    let mut day = n_days.saturating_sub(1);
    for d in 0..n_days {
        let w = model.day_weight(config.start_unix, d, days);
        if pick < w {
            day = d;
            break;
        }
        pick -= w;
    }
    let curve = model.day_curve(&site.diurnal, day);
    let max = 1.0 + curve.amplitude();
    let hour = loop {
        let h = rng.gen_range(0.0..24.0);
        if rng.gen::<f64>() * max <= curve.intensity(h) {
            break h;
        }
    };
    let local = day as f64 * 86_400.0 + hour * 3_600.0;
    let utc = local - user.tz_offset_secs as f64;
    utc.rem_euclid(duration)
}

fn pick_object(
    site: &SiteProfile,
    catalog: &Catalog,
    user: &UserProfile,
    favorites: &[usize],
    t: f64,
    rng: &mut StdRng,
) -> usize {
    if !favorites.is_empty() && rng.gen::<f64>() < site.repeat_affinity {
        return favorites[rng.gen_range(0..favorites.len())];
    }
    let local_hour = (t + user.tz_offset_secs as f64).rem_euclid(86_400.0) / 3_600.0;
    catalog.sample_at(t, local_hour, rng)
}

#[allow(clippy::too_many_arguments)]
fn emit_view(
    site: &SiteProfile,
    config: &TraceConfig,
    catalog: &Catalog,
    user: &UserProfile,
    idx: usize,
    t: &mut f64,
    seen: &mut HashSet<u64>,
    rng: &mut StdRng,
    out: &mut Vec<Request>,
) {
    let obj = &catalog.objects()[idx];
    let duration = config.duration_secs as f64;
    let base = |timestamp: f64, kind: RequestKind| Request {
        timestamp: config.start_unix + timestamp as u64,
        publisher: site.publisher,
        object: obj.id,
        format: obj.format,
        object_size: obj.size,
        user: user.id,
        user_agent: user.user_agent.clone(),
        region: user.region,
        tz_offset_secs: user.tz_offset_secs,
        incognito: user.incognito,
        kind,
    };

    // Failure modes first.
    if rng.gen::<f64>() < site.hotlink_rate {
        out.push(base(*t, RequestKind::Hotlink));
        return;
    }
    let is_video = obj.content_class() == ContentClass::Video;
    if is_video && rng.gen::<f64>() < site.bad_range_rate {
        out.push(base(*t, RequestKind::InvalidRange));
        return;
    }

    let previously_seen = seen.contains(&obj.id.raw());
    seen.insert(obj.id.raw());

    if is_video {
        let total_chunks = chunk_count(obj.size);
        if total_chunks == 1 || rng.gen::<f64>() < FULL_VIDEO_FETCH_RATE {
            // Progressive download of the whole file.
            out.push(base(*t, RequestKind::Full));
            return;
        }
        let watched =
            ((total_chunks as f64 * rng.gen_range(0.2..1.0)).round() as u64).clamp(1, total_chunks);
        for chunk in 0..watched {
            if *t >= duration {
                break;
            }
            let offset = chunk * CHUNK_BYTES;
            let length = CHUNK_BYTES.min(obj.size - offset);
            out.push(base(*t, RequestKind::Range { offset, length }));
            *t += rng.gen_range(2.0..8.0);
        }
        return;
    }

    // A slice of "other"-class traffic is analytics beacons.
    if obj.content_class() == ContentClass::Other && rng.gen::<f64>() < BEACON_RATE {
        out.push(base(*t, RequestKind::Beacon));
        return;
    }

    // Images / other: possibly a browser-cache revalidation.
    let kind = if previously_seen && !user.incognito && rng.gen::<f64>() < site.revalidate_rate {
        RequestKind::Conditional
    } else {
        RequestKind::Full
    };
    out.push(base(*t, kind));
}

fn update_favorites(
    site: &SiteProfile,
    catalog: &Catalog,
    idx: usize,
    favorites: &mut Vec<usize>,
    rng: &mut StdRng,
) {
    if favorites.contains(&idx) {
        return;
    }
    let is_video = catalog.objects()[idx].content_class() == ContentClass::Video;
    let (p, cap) = if is_video { (0.4, 6) } else { (0.05, 4) };
    // Favorite formation is itself part of the addiction model (Fig 13/14):
    // video content is far stickier than images.
    let _ = site;
    if rng.gen::<f64>() < p {
        if favorites.len() >= cap {
            let evict = rng.gen_range(0..favorites.len());
            favorites[evict] = idx;
        } else {
            favorites.push(idx);
        }
    }
}

/// Poisson sampler: Knuth's product method for small means, the normal
/// approximation `N(λ, λ)` above [`POISSON_NORMAL_CUTOFF`]. The product
/// method needs `exp(-λ)` — which underflows to zero around λ ≈ 745,
/// turning the loop nonterminating — and `O(λ)` uniforms per sample; the
/// normal branch is `O(1)` and accurate to a fraction of a percent at the
/// cutoff.
fn sample_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    if lambda.is_nan() || lambda <= 0.0 {
        return 0;
    }
    if lambda >= POISSON_NORMAL_CUTOFF {
        // Box–Muller standard normal from two uniforms.
        let u1 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        return (lambda + lambda.sqrt() * z).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_httplog::PublisherId;

    fn tiny_config() -> TraceConfig {
        TraceConfig {
            scale: 0.003,
            catalog_scale: 0.01,
            ..TraceConfig::paper_week()
        }
    }

    #[test]
    fn config_validation() {
        assert!(TraceConfig::paper_week().validate().is_ok());
        assert!(TraceConfig::small().validate().is_ok());
        let bad_scale = TraceConfig {
            scale: 0.0,
            ..TraceConfig::small()
        };
        assert_eq!(bad_scale.validate().unwrap_err(), ConfigError::BadScale);
        let bad_duration = TraceConfig {
            duration_secs: 60,
            ..TraceConfig::small()
        };
        assert_eq!(
            bad_duration.validate().unwrap_err(),
            ConfigError::DurationTooShort
        );
        let no_sites = TraceConfig {
            sites: vec![],
            ..TraceConfig::small()
        };
        assert_eq!(no_sites.validate().unwrap_err(), ConfigError::NoSites);
        assert!(ConfigError::NoSites.to_string().contains("site"));
    }

    #[test]
    fn builder_methods() {
        let c = TraceConfig::small()
            .with_seed(7)
            .with_scale(0.5)
            .with_catalog_scale(0.25);
        assert_eq!(c.seed, 7);
        assert_eq!(c.scale, 0.5);
        assert_eq!(c.catalog_scale, 0.25);
    }

    #[test]
    fn generates_sorted_nonempty_trace() {
        let trace = generate(&tiny_config()).unwrap();
        assert!(trace.requests.len() > 1_000, "got {}", trace.requests.len());
        for w in trace.requests.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        assert_eq!(trace.catalogs.len(), 5);
        assert_eq!(trace.populations.len(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&tiny_config()).unwrap();
        let b = generate(&tiny_config()).unwrap();
        assert_eq!(a.requests.len(), b.requests.len());
        assert_eq!(a.requests[..50], b.requests[..50]);
        let c = generate(&tiny_config().with_seed(99)).unwrap();
        assert_ne!(a.requests[..50], c.requests[..50]);
    }

    #[test]
    fn identical_across_thread_counts_and_shard_sizes() {
        let config = tiny_config();
        let reference = generate_with(
            &config,
            &GenOptions {
                threads: 1,
                shard_size: 64,
            },
        )
        .unwrap();
        for (threads, shard_size) in [(2, 64), (8, 64), (1, 7), (4, 1024), (3, usize::MAX)] {
            let variant = generate_with(
                &config,
                &GenOptions {
                    threads,
                    shard_size,
                },
            )
            .unwrap();
            assert_eq!(
                reference.requests, variant.requests,
                "threads={threads} shard_size={shard_size}"
            );
        }
    }

    #[test]
    fn streaming_batches_concatenate_to_batch_trace() {
        let config = tiny_config();
        let batch_trace = generate(&config).unwrap();
        let stream = generate_streaming(
            &config,
            &GenOptions {
                threads: 2,
                shard_size: 32,
            },
            500,
        )
        .unwrap();
        assert_eq!(stream.catalogs.len(), 5);
        assert_eq!(stream.populations.len(), 5);
        let mut collected = Vec::new();
        for batch in stream.batches.iter() {
            assert!(batch.len() <= 500, "batch size bounded");
            collected.extend(batch);
        }
        assert_eq!(batch_trace.requests, collected);
    }

    #[test]
    fn columnar_spool_concatenates_to_batch_trace() {
        let config = tiny_config();
        let batch_trace = generate(&config).unwrap();
        let dir = std::env::temp_dir()
            .join("oat-generator-tests")
            .join("columnar-spool");
        let _ = std::fs::remove_dir_all(&dir);
        let spooled = generate_columnar(
            &config,
            &GenOptions {
                threads: 2,
                shard_size: 32,
            },
            500,
            &dir,
            "req",
            1_000,
        )
        .unwrap();
        assert_eq!(spooled.rows as usize, batch_trace.requests.len());
        assert!(spooled.shards >= 1);
        let reader = spooled.reader().unwrap();
        let back = reader.read_all(&oat_httplog::ShardFilter::all()).unwrap();
        assert_eq!(back, batch_trace.requests);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn columnar_spool_rejects_invalid_config() {
        let mut config = tiny_config();
        config.scale = -1.0;
        let dir = std::env::temp_dir()
            .join("oat-generator-tests")
            .join("columnar-invalid");
        let err =
            generate_columnar(&config, &GenOptions::default(), 0, &dir, "req", 0).unwrap_err();
        assert!(matches!(err, ColumnarGenError::Config(_)), "{err:?}");
    }

    #[test]
    fn site_request_table_matches_filter() {
        let trace = generate(&tiny_config()).unwrap();
        for site in &trace.config.sites {
            let via_table = trace.site_requests(site.publisher);
            let via_filter: Vec<&Request> = trace
                .requests
                .iter()
                .filter(|r| r.publisher == site.publisher)
                .collect();
            assert_eq!(via_table, via_filter, "{}", site.code);
        }
        // An unknown publisher falls back to the (empty) filter path.
        assert!(trace.site_requests(PublisherId::new(999)).is_empty());
    }

    #[test]
    fn timestamps_within_trace_window() {
        let config = tiny_config();
        let trace = generate(&config).unwrap();
        let end = config.start_unix + config.duration_secs;
        for r in &trace.requests {
            assert!(r.timestamp >= config.start_unix);
            assert!(r.timestamp < end + 1);
        }
    }

    #[test]
    fn volumes_roughly_match_targets() {
        let config = tiny_config();
        let trace = generate(&config).unwrap();
        for site in &config.sites {
            let target = site.request_volume as f64 * config.scale;
            let actual = trace.site_requests(site.publisher).len() as f64;
            let ratio = actual / target;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{}: target {target}, actual {actual}",
                site.code
            );
        }
    }

    #[test]
    fn v1_requests_are_video_dominated() {
        let trace = generate(&tiny_config()).unwrap();
        let v1: Vec<_> = trace.site_requests(PublisherId::new(1));
        let video = v1
            .iter()
            .filter(|r| r.content_class() == ContentClass::Video)
            .count();
        let share = video as f64 / v1.len() as f64;
        assert!(share > 0.9, "V-1 video request share {share}");
    }

    #[test]
    fn video_views_expand_into_range_chunks() {
        let trace = generate(&tiny_config()).unwrap();
        let ranges = trace
            .requests
            .iter()
            .filter(|r| matches!(r.kind, RequestKind::Range { .. }))
            .count();
        assert!(
            ranges > 100,
            "expected chunked video requests, got {ranges}"
        );
        // Ranges stay within the object.
        for r in &trace.requests {
            if let RequestKind::Range { offset, length } = r.kind {
                assert!(offset + length <= r.object_size);
                assert!(length > 0);
            }
        }
    }

    #[test]
    fn conditional_requests_only_from_non_incognito() {
        let trace = generate(&tiny_config()).unwrap();
        let mut conditionals = 0;
        for r in &trace.requests {
            if matches!(r.kind, RequestKind::Conditional) {
                assert!(!r.incognito, "incognito users cannot revalidate");
                conditionals += 1;
            }
        }
        assert!(conditionals > 0, "some revalidations expected");
        // But they are a small minority (incognito browsing, §V).
        let share = conditionals as f64 / trace.requests.len() as f64;
        assert!(share < 0.1, "conditional share {share}");
    }

    #[test]
    fn chunk_count_boundaries() {
        assert_eq!(chunk_count(1), 1);
        assert_eq!(chunk_count(CHUNK_BYTES), 1);
        assert_eq!(chunk_count(CHUNK_BYTES + 1), 2);
        assert_eq!(chunk_count(u64::MAX), MAX_CHUNKS_PER_VIEW);
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_poisson(3.0, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "poisson mean {mean}");
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
        assert_eq!(sample_poisson(-1.0, &mut rng), 0);
        assert_eq!(sample_poisson(f64::NAN, &mut rng), 0);
    }

    #[test]
    fn poisson_large_lambda_mean_and_variance() {
        // Knuth's product method underflows/loops for λ ≳ 700; the normal
        // branch must pin both moments.
        let mut rng = StdRng::seed_from_u64(7);
        let lambda = 1_000.0;
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_poisson(lambda, &mut rng) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let variance =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - lambda).abs() < 0.02 * lambda, "mean {mean}");
        assert!(
            (variance - lambda).abs() < 0.1 * lambda,
            "variance {variance}"
        );
        // Terminates in O(1) even for means that break the product method.
        let huge = sample_poisson(1.0e6, &mut rng);
        assert!((0.9e6..1.1e6).contains(&(huge as f64)), "huge {huge}");
    }

    #[test]
    fn hotlink_and_bad_range_present() {
        let trace = generate(&tiny_config()).unwrap();
        let hotlinks = trace
            .requests
            .iter()
            .filter(|r| matches!(r.kind, RequestKind::Hotlink))
            .count();
        assert!(hotlinks > 0, "hotlink requests expected");
    }
}
