//! The trace generator: users × sessions × objects → a time-ordered
//! request stream.

use crate::catalog::Catalog;
use crate::dist::LogNormal;
use crate::profile::SiteProfile;
use crate::users::{build_population, UserProfile};
use oat_httplog::{ContentClass, Request, RequestKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

pub use oat_httplog::request::CHUNK_BYTES;

/// Probability a video view downloads the whole file with one `GET`
/// (progressive download) instead of chunked range requests.
pub const FULL_VIDEO_FETCH_RATE: f64 = 0.5;

/// Probability an "other"-class view is an analytics beacon (`204`).
pub const BEACON_RATE: f64 = 0.25;

/// Maximum chunks fetched per video view.
pub const MAX_CHUNKS_PER_VIEW: u64 = 15;

/// Generation parameters for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master RNG seed; everything is deterministic given the seed.
    pub seed: u64,
    /// Request-volume scale relative to the paper (1.0 ≈ 5.4 M records).
    pub scale: f64,
    /// Catalog-size scale relative to the paper (1.0 ≈ 131 K objects).
    pub catalog_scale: f64,
    /// Trace duration in seconds (the paper's traces span one week).
    pub duration_secs: u64,
    /// Unix time of trace start (defaults to a Saturday, matching the
    /// paper's Sat→Fri figures).
    pub start_unix: u64,
    /// The sites to generate.
    pub sites: Vec<SiteProfile>,
}

impl TraceConfig {
    /// A one-week, paper-scale config over the five paper sites.
    pub fn paper_week() -> Self {
        Self {
            seed: 0x0A7_5EED,
            scale: 1.0,
            catalog_scale: 1.0,
            duration_secs: 7 * 86_400,
            start_unix: 1_444_435_200, // Sat 2015-10-10 00:00:00 UTC
            sites: SiteProfile::paper_five(),
        }
    }

    /// A laptop-friendly config: ~1–2 % of the paper's request volume.
    pub fn small() -> Self {
        Self {
            scale: 0.015,
            catalog_scale: 0.04,
            ..Self::paper_week()
        }
    }

    /// Sets the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the request-volume scale (builder-style).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the catalog scale (builder-style).
    pub fn with_catalog_scale(mut self, catalog_scale: f64) -> Self {
        self.catalog_scale = catalog_scale;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for non-positive scales, an empty site list,
    /// or a zero duration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.scale <= 0.0 || !self.scale.is_finite() {
            return Err(ConfigError::BadScale);
        }
        if self.catalog_scale <= 0.0 || !self.catalog_scale.is_finite() {
            return Err(ConfigError::BadScale);
        }
        if self.duration_secs < 3_600 {
            return Err(ConfigError::DurationTooShort);
        }
        if self.sites.is_empty() {
            return Err(ConfigError::NoSites);
        }
        Ok(())
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// Error validating a [`TraceConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A scale was non-positive or non-finite.
    BadScale,
    /// Duration must be at least one hour.
    DurationTooShort,
    /// At least one site profile is required.
    NoSites,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            Self::BadScale => "scales must be positive and finite",
            Self::DurationTooShort => "trace duration must be at least one hour",
            Self::NoSites => "at least one site profile is required",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

/// A generated trace: the request stream plus the generative ground truth.
#[derive(Debug)]
pub struct Trace {
    /// All requests across all sites, sorted by timestamp.
    pub requests: Vec<Request>,
    /// Per-site catalogs (ground truth for popularity/trend validation),
    /// index-aligned with `config.sites`.
    pub catalogs: Vec<Catalog>,
    /// Per-site user populations, index-aligned with `config.sites`.
    pub populations: Vec<Vec<UserProfile>>,
    /// The configuration the trace was generated from.
    pub config: TraceConfig,
}

impl Trace {
    /// Convenience: requests of one site.
    pub fn site_requests(&self, publisher: oat_httplog::PublisherId) -> Vec<&Request> {
        self.requests
            .iter()
            .filter(|r| r.publisher == publisher)
            .collect()
    }
}

/// Generates a [`Trace`] from a [`TraceConfig`].
///
/// Sites are generated on parallel threads (one per site) with independent
/// deterministic RNG streams, then merged and time-sorted.
///
/// # Errors
///
/// Returns [`ConfigError`] if the config fails validation.
pub fn generate(config: &TraceConfig) -> Result<Trace, ConfigError> {
    config.validate()?;
    let mut catalogs: Vec<Option<Catalog>> = (0..config.sites.len()).map(|_| None).collect();
    let mut populations: Vec<Vec<UserProfile>> = vec![Vec::new(); config.sites.len()];
    let mut per_site_requests: Vec<Vec<Request>> = vec![Vec::new(); config.sites.len()];

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = config
            .sites
            .iter()
            .enumerate()
            .map(|(i, site)| {
                let config = &*config;
                scope.spawn(move |_| {
                    let mut rng =
                        StdRng::seed_from_u64(config.seed ^ (0x9E37_79B9 + i as u64 * 0x1000_0001));
                    generate_site(site, config, &mut rng)
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let (catalog, users, requests) = h.join().expect("site generation panicked");
            catalogs[i] = Some(catalog);
            populations[i] = users;
            per_site_requests[i] = requests;
        }
    })
    .expect("generation threads panicked");

    let mut requests: Vec<Request> = per_site_requests.into_iter().flatten().collect();
    requests.sort_by_key(|r| (r.timestamp, r.user.raw(), r.object.raw()));
    Ok(Trace {
        requests,
        catalogs: catalogs
            .into_iter()
            .map(|c| c.expect("catalog built"))
            .collect(),
        populations,
        config: config.clone(),
    })
}

fn generate_site(
    site: &SiteProfile,
    config: &TraceConfig,
    rng: &mut StdRng,
) -> (Catalog, Vec<UserProfile>, Vec<Request>) {
    let duration = config.duration_secs;
    let catalog_n = ((site.catalog_size as f64 * config.catalog_scale).round() as usize).max(60);
    let catalog = Catalog::build(site, catalog_n, duration, rng);

    // Calibrate the user count from the target record volume.
    let expansion = expected_records_per_view(&catalog);
    let target_records = (site.request_volume as f64 * config.scale).max(50.0);
    let target_views = target_records / expansion;
    let views_per_user = site.sessions_per_user * site.requests_per_session;
    let n_users = ((target_views / views_per_user).round() as usize).max(10);
    let users = build_population(site, n_users, rng);

    let iat = LogNormal::from_median(site.within_iat_median_secs, site.within_iat_sigma)
        .expect("profile IAT parameters are valid");

    let mut requests = Vec::with_capacity(target_records as usize + 16);
    for user in &users {
        generate_user(site, config, &catalog, user, &iat, rng, &mut requests);
    }
    (catalog, users, requests)
}

/// Expected emitted records per object view, weighted by popularity
/// (videos expand into chunk requests).
fn expected_records_per_view(catalog: &Catalog) -> f64 {
    let mut total_weight = 0.0;
    let mut weighted_records = 0.0;
    for obj in catalog.objects() {
        let records = if obj.content_class() == ContentClass::Video {
            let chunks = chunk_count(obj.size) as f64;
            // Half the views are progressive full downloads (1 record);
            // the rest fetch a mean watch fraction of 0.6 of the chunks.
            FULL_VIDEO_FETCH_RATE + (1.0 - FULL_VIDEO_FETCH_RATE) * (chunks * 0.6).max(1.0)
        } else {
            1.0
        };
        total_weight += obj.weight;
        weighted_records += obj.weight * records;
    }
    if total_weight == 0.0 {
        1.0
    } else {
        weighted_records / total_weight
    }
}

/// Total chunks an object occupies.
pub fn chunk_count(size: u64) -> u64 {
    size.div_ceil(CHUNK_BYTES).clamp(1, MAX_CHUNKS_PER_VIEW)
}

#[allow(clippy::too_many_arguments)]
fn generate_user(
    site: &SiteProfile,
    config: &TraceConfig,
    catalog: &Catalog,
    user: &UserProfile,
    iat: &LogNormal,
    rng: &mut StdRng,
    out: &mut Vec<Request>,
) {
    // Mean activity is ~1.25 (Rayleigh(1) × U(0.5, 1.5)); normalize so the
    // configured per-user session mean holds.
    let lambda = site.sessions_per_user * user.activity / 1.25;
    let n_sessions = sample_poisson(lambda, rng).max(1);
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut favorites: Vec<usize> = Vec::new();

    for _ in 0..n_sessions {
        let start = sample_session_start(site, config, user, rng);
        let n_views = sample_poisson(site.requests_per_session, rng).max(1);
        let mut t = start;
        for view in 0..n_views {
            if view > 0 {
                t += iat.sample(rng);
            }
            if t >= config.duration_secs as f64 {
                break;
            }
            let idx = pick_object(site, catalog, user, &favorites, t, rng);
            emit_view(
                site, config, catalog, user, idx, &mut t, &mut seen, rng, out,
            );
            update_favorites(site, catalog, idx, &mut favorites, rng);
        }
    }
}

fn sample_session_start(
    site: &SiteProfile,
    config: &TraceConfig,
    user: &UserProfile,
    rng: &mut StdRng,
) -> f64 {
    let days = (config.duration_secs as f64 / 86_400.0).max(1.0);
    // Local-time-of-day from the site's diurnal curve (rejection sampling).
    let max = 1.0 + site.diurnal.amplitude();
    let hour = loop {
        let h = rng.gen_range(0.0..24.0);
        if rng.gen::<f64>() * max <= site.diurnal.intensity(h) {
            break h;
        }
    };
    let day = rng.gen_range(0.0..days).floor();
    let local = day * 86_400.0 + hour * 3_600.0;
    let utc = local - user.tz_offset_secs as f64;
    utc.rem_euclid(config.duration_secs as f64)
}

fn pick_object(
    site: &SiteProfile,
    catalog: &Catalog,
    user: &UserProfile,
    favorites: &[usize],
    t: f64,
    rng: &mut StdRng,
) -> usize {
    if !favorites.is_empty() && rng.gen::<f64>() < site.repeat_affinity {
        return favorites[rng.gen_range(0..favorites.len())];
    }
    let local_hour = (t + user.tz_offset_secs as f64).rem_euclid(86_400.0) / 3_600.0;
    catalog.sample_at(t, local_hour, rng)
}

#[allow(clippy::too_many_arguments)]
fn emit_view(
    site: &SiteProfile,
    config: &TraceConfig,
    catalog: &Catalog,
    user: &UserProfile,
    idx: usize,
    t: &mut f64,
    seen: &mut std::collections::HashSet<u64>,
    rng: &mut StdRng,
    out: &mut Vec<Request>,
) {
    let obj = &catalog.objects()[idx];
    let duration = config.duration_secs as f64;
    let base = |timestamp: f64, kind: RequestKind| Request {
        timestamp: config.start_unix + timestamp as u64,
        publisher: site.publisher,
        object: obj.id,
        format: obj.format,
        object_size: obj.size,
        user: user.id,
        user_agent: user.user_agent.clone(),
        region: user.region,
        tz_offset_secs: user.tz_offset_secs,
        incognito: user.incognito,
        kind,
    };

    // Failure modes first.
    if rng.gen::<f64>() < site.hotlink_rate {
        out.push(base(*t, RequestKind::Hotlink));
        return;
    }
    let is_video = obj.content_class() == ContentClass::Video;
    if is_video && rng.gen::<f64>() < site.bad_range_rate {
        out.push(base(*t, RequestKind::InvalidRange));
        return;
    }

    let previously_seen = seen.contains(&obj.id.raw());
    seen.insert(obj.id.raw());

    if is_video {
        let total_chunks = chunk_count(obj.size);
        if total_chunks == 1 || rng.gen::<f64>() < FULL_VIDEO_FETCH_RATE {
            // Progressive download of the whole file.
            out.push(base(*t, RequestKind::Full));
            return;
        }
        let watched =
            ((total_chunks as f64 * rng.gen_range(0.2..1.0)).round() as u64).clamp(1, total_chunks);
        for chunk in 0..watched {
            if *t >= duration {
                break;
            }
            let offset = chunk * CHUNK_BYTES;
            let length = CHUNK_BYTES.min(obj.size - offset);
            out.push(base(*t, RequestKind::Range { offset, length }));
            *t += rng.gen_range(2.0..8.0);
        }
        return;
    }

    // A slice of "other"-class traffic is analytics beacons.
    if obj.content_class() == ContentClass::Other && rng.gen::<f64>() < BEACON_RATE {
        out.push(base(*t, RequestKind::Beacon));
        return;
    }

    // Images / other: possibly a browser-cache revalidation.
    let kind = if previously_seen && !user.incognito && rng.gen::<f64>() < site.revalidate_rate {
        RequestKind::Conditional
    } else {
        RequestKind::Full
    };
    out.push(base(*t, kind));
}

fn update_favorites(
    site: &SiteProfile,
    catalog: &Catalog,
    idx: usize,
    favorites: &mut Vec<usize>,
    rng: &mut StdRng,
) {
    if favorites.contains(&idx) {
        return;
    }
    let is_video = catalog.objects()[idx].content_class() == ContentClass::Video;
    let (p, cap) = if is_video { (0.4, 6) } else { (0.05, 4) };
    // Favorite formation is itself part of the addiction model (Fig 13/14):
    // video content is far stickier than images.
    let _ = site;
    if rng.gen::<f64>() < p {
        if favorites.len() >= cap {
            let evict = rng.gen_range(0..favorites.len());
            favorites[evict] = idx;
        } else {
            favorites.push(idx);
        }
    }
}

/// Knuth's Poisson sampler (fine for the small means used here).
fn sample_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    if lambda.is_nan() || lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda.min(50.0)).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_httplog::PublisherId;

    fn tiny_config() -> TraceConfig {
        TraceConfig {
            scale: 0.003,
            catalog_scale: 0.01,
            ..TraceConfig::paper_week()
        }
    }

    #[test]
    fn config_validation() {
        assert!(TraceConfig::paper_week().validate().is_ok());
        assert!(TraceConfig::small().validate().is_ok());
        let bad_scale = TraceConfig {
            scale: 0.0,
            ..TraceConfig::small()
        };
        assert_eq!(bad_scale.validate().unwrap_err(), ConfigError::BadScale);
        let bad_duration = TraceConfig {
            duration_secs: 60,
            ..TraceConfig::small()
        };
        assert_eq!(
            bad_duration.validate().unwrap_err(),
            ConfigError::DurationTooShort
        );
        let no_sites = TraceConfig {
            sites: vec![],
            ..TraceConfig::small()
        };
        assert_eq!(no_sites.validate().unwrap_err(), ConfigError::NoSites);
        assert!(ConfigError::NoSites.to_string().contains("site"));
    }

    #[test]
    fn builder_methods() {
        let c = TraceConfig::small()
            .with_seed(7)
            .with_scale(0.5)
            .with_catalog_scale(0.25);
        assert_eq!(c.seed, 7);
        assert_eq!(c.scale, 0.5);
        assert_eq!(c.catalog_scale, 0.25);
    }

    #[test]
    fn generates_sorted_nonempty_trace() {
        let trace = generate(&tiny_config()).unwrap();
        assert!(trace.requests.len() > 1_000, "got {}", trace.requests.len());
        for w in trace.requests.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        assert_eq!(trace.catalogs.len(), 5);
        assert_eq!(trace.populations.len(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&tiny_config()).unwrap();
        let b = generate(&tiny_config()).unwrap();
        assert_eq!(a.requests.len(), b.requests.len());
        assert_eq!(a.requests[..50], b.requests[..50]);
        let c = generate(&tiny_config().with_seed(99)).unwrap();
        assert_ne!(a.requests[..50], c.requests[..50]);
    }

    #[test]
    fn timestamps_within_trace_window() {
        let config = tiny_config();
        let trace = generate(&config).unwrap();
        let end = config.start_unix + config.duration_secs;
        for r in &trace.requests {
            assert!(r.timestamp >= config.start_unix);
            assert!(r.timestamp < end + 1);
        }
    }

    #[test]
    fn volumes_roughly_match_targets() {
        let config = tiny_config();
        let trace = generate(&config).unwrap();
        for site in &config.sites {
            let target = site.request_volume as f64 * config.scale;
            let actual = trace.site_requests(site.publisher).len() as f64;
            let ratio = actual / target;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{}: target {target}, actual {actual}",
                site.code
            );
        }
    }

    #[test]
    fn v1_requests_are_video_dominated() {
        let trace = generate(&tiny_config()).unwrap();
        let v1: Vec<_> = trace.site_requests(PublisherId::new(1));
        let video = v1
            .iter()
            .filter(|r| r.content_class() == ContentClass::Video)
            .count();
        let share = video as f64 / v1.len() as f64;
        assert!(share > 0.9, "V-1 video request share {share}");
    }

    #[test]
    fn video_views_expand_into_range_chunks() {
        let trace = generate(&tiny_config()).unwrap();
        let ranges = trace
            .requests
            .iter()
            .filter(|r| matches!(r.kind, RequestKind::Range { .. }))
            .count();
        assert!(
            ranges > 100,
            "expected chunked video requests, got {ranges}"
        );
        // Ranges stay within the object.
        for r in &trace.requests {
            if let RequestKind::Range { offset, length } = r.kind {
                assert!(offset + length <= r.object_size);
                assert!(length > 0);
            }
        }
    }

    #[test]
    fn conditional_requests_only_from_non_incognito() {
        let trace = generate(&tiny_config()).unwrap();
        let mut conditionals = 0;
        for r in &trace.requests {
            if matches!(r.kind, RequestKind::Conditional) {
                assert!(!r.incognito, "incognito users cannot revalidate");
                conditionals += 1;
            }
        }
        assert!(conditionals > 0, "some revalidations expected");
        // But they are a small minority (incognito browsing, §V).
        let share = conditionals as f64 / trace.requests.len() as f64;
        assert!(share < 0.1, "conditional share {share}");
    }

    #[test]
    fn chunk_count_boundaries() {
        assert_eq!(chunk_count(1), 1);
        assert_eq!(chunk_count(CHUNK_BYTES), 1);
        assert_eq!(chunk_count(CHUNK_BYTES + 1), 2);
        assert_eq!(chunk_count(u64::MAX), MAX_CHUNKS_PER_VIEW);
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_poisson(3.0, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "poisson mean {mean}");
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
        assert_eq!(sample_poisson(-1.0, &mut rng), 0);
    }

    #[test]
    fn hotlink_and_bad_range_present() {
        let trace = generate(&tiny_config()).unwrap();
        let hotlinks = trace
            .requests
            .iter()
            .filter(|r| matches!(r.kind, RequestKind::Hotlink))
            .count();
        assert!(hotlinks > 0, "hotlink requests expected");
    }
}
