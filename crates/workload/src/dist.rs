//! Random-variate samplers implemented directly over [`rand::Rng`].
//!
//! Only the `rand` core crate is a dependency; log-normal, Pareto, Zipf and
//! mixture sampling are implemented here (Box–Muller, inversion, and the
//! Vose alias method respectively).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Log-normal distribution parameterized by the *median* and the shape
/// `sigma` (std-dev of the underlying normal).
///
/// Medians are far more natural than `mu` when calibrating content sizes
/// ("median video ≈ 12 MB").
///
/// # Example
///
/// ```
/// use oat_workload::dist::LogNormal;
/// use rand::SeedableRng;
///
/// let d = LogNormal::from_median(12_000_000.0, 1.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = d.sample(&mut rng);
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from its median and shape.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] unless `median > 0` and `sigma >= 0` (finite).
    pub fn from_median(median: f64, sigma: f64) -> Result<Self, DistError> {
        if median <= 0.0 || !median.is_finite() {
            return Err(DistError::InvalidParameter { name: "median" });
        }
        if sigma < 0.0 || !sigma.is_finite() {
            return Err(DistError::InvalidParameter { name: "sigma" });
        }
        Ok(Self {
            mu: median.ln(),
            sigma,
        })
    }

    /// The distribution median.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One draw from the standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Exponential distribution with the given mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential with mean `mean`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] unless `mean > 0` and finite.
    pub fn new(mean: f64) -> Result<Self, DistError> {
        if mean <= 0.0 || !mean.is_finite() {
            return Err(DistError::InvalidParameter { name: "mean" });
        }
        Ok(Self { mean })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -self.mean * u.ln()
    }
}

/// Bounded Pareto (power-law) distribution over `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundedPareto {
    min: f64,
    max: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto with shape `alpha` on `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] unless `0 < min < max` and `alpha > 0`.
    pub fn new(min: f64, max: f64, alpha: f64) -> Result<Self, DistError> {
        if min <= 0.0 || !min.is_finite() {
            return Err(DistError::InvalidParameter { name: "min" });
        }
        if max <= min || !max.is_finite() {
            return Err(DistError::InvalidParameter { name: "max" });
        }
        if alpha <= 0.0 || !alpha.is_finite() {
            return Err(DistError::InvalidParameter { name: "alpha" });
        }
        Ok(Self { min, max, alpha })
    }

    /// Draws one sample via inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let (l, h, a) = (self.min, self.max, self.alpha);
        let la = l.powf(a);
        let ha = h.powf(a);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / a)
    }
}

/// Weighted discrete sampling in O(1) via the Vose alias method.
///
/// # Example
///
/// ```
/// use oat_workload::dist::AliasTable;
/// use rand::SeedableRng;
///
/// let table = AliasTable::new(&[0.7, 0.2, 0.1]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let idx = table.sample(&mut rng);
/// assert!(idx < 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] when `weights` is empty, contains a negative or
    /// non-finite weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, DistError> {
        if weights.is_empty() {
            return Err(DistError::Empty);
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(DistError::InvalidParameter { name: "weights" });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(DistError::InvalidParameter { name: "weights" });
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining entries are 1.0 up to rounding.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table has no categories (never true for a constructed
    /// table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Zipf(α) rank weights `1/rank^α` for `n` ranks, as an [`AliasTable`].
///
/// # Errors
///
/// Returns [`DistError`] when `n == 0` or `alpha` is negative/non-finite.
pub fn zipf_table(n: usize, alpha: f64) -> Result<AliasTable, DistError> {
    if n == 0 {
        return Err(DistError::Empty);
    }
    if alpha < 0.0 || !alpha.is_finite() {
        return Err(DistError::InvalidParameter { name: "alpha" });
    }
    let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-alpha)).collect();
    AliasTable::new(&weights)
}

/// Errors constructing samplers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistError {
    /// A parameter was out of range.
    InvalidParameter {
        /// The offending parameter name.
        name: &'static str,
    },
    /// An empty category/weight set was supplied.
    Empty,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidParameter { name } => write!(f, "invalid distribution parameter `{name}`"),
            Self::Empty => f.write_str("distribution requires at least one category"),
        }
    }
}

impl std::error::Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_median_recovered() {
        let d = LogNormal::from_median(1000.0, 0.8).unwrap();
        assert!((d.median() - 1000.0).abs() < 1e-6);
        let mut rng = StdRng::seed_from_u64(1);
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(
            (median / 1000.0 - 1.0).abs() < 0.05,
            "sampled median {median}"
        );
    }

    #[test]
    fn lognormal_rejects_bad_params() {
        assert!(LogNormal::from_median(0.0, 1.0).is_err());
        assert!(LogNormal::from_median(-5.0, 1.0).is_err());
        assert!(LogNormal::from_median(1.0, -0.1).is_err());
        assert!(LogNormal::from_median(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let d = LogNormal::from_median(42.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!((d.sample(&mut rng) - 42.0).abs() < 1e-9);
        }
    }

    #[test]
    fn exponential_mean_recovered() {
        let d = Exponential::new(5.0).unwrap();
        assert_eq!(d.mean(), 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..50_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 50_000.0;
        assert!((mean - 5.0).abs() < 0.15, "sampled mean {mean}");
        assert!(Exponential::new(0.0).is_err());
    }

    #[test]
    fn bounded_pareto_within_bounds() {
        let d = BoundedPareto::new(1.0, 100.0, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x), "sample {x}");
        }
        assert!(BoundedPareto::new(0.0, 1.0, 1.0).is_err());
        assert!(BoundedPareto::new(2.0, 1.0, 1.0).is_err());
        assert!(BoundedPareto::new(1.0, 2.0, 0.0).is_err());
    }

    #[test]
    fn bounded_pareto_skews_low() {
        let d = BoundedPareto::new(1.0, 1000.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let below_10 = (0..10_000).filter(|_| d.sample(&mut rng) < 10.0).count();
        assert!(
            below_10 > 8_000,
            "power law should concentrate near min: {below_10}"
        );
    }

    #[test]
    fn alias_table_frequencies() {
        let table = AliasTable::new(&[8.0, 1.0, 1.0]).unwrap();
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0u32; 3];
        for _ in 0..50_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        let share0 = counts[0] as f64 / 50_000.0;
        assert!((share0 - 0.8).abs() < 0.02, "share {share0}");
    }

    #[test]
    fn alias_table_rejects_bad_weights() {
        assert_eq!(AliasTable::new(&[]).unwrap_err(), DistError::Empty);
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -1.0]).is_err());
        assert!(AliasTable::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn alias_table_single_category() {
        let table = AliasTable::new(&[3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_table_zero_weight_category_never_sampled() {
        let table = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20_000 {
            assert_ne!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn zipf_rank_ordering() {
        let table = zipf_table(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0u32; 100];
        for _ in 0..200_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[99]);
        // Rank-1 share for Zipf(1, 100) is 1/H_100 ≈ 0.193.
        let share = counts[0] as f64 / 200_000.0;
        assert!((share - 0.193).abs() < 0.02, "rank-1 share {share}");
        assert!(zipf_table(0, 1.0).is_err());
        assert!(zipf_table(5, -1.0).is_err());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn dist_error_display() {
        assert!(DistError::Empty.to_string().contains("at least one"));
        assert!(DistError::InvalidParameter { name: "alpha" }
            .to_string()
            .contains("alpha"));
    }
}
