//! K-way timestamp merge of per-shard sorted request streams.
//!
//! The sharded generator ([`crate::generator::generate_with`]) emits one
//! sorted request vector per user shard. This module combines them into a
//! single globally ordered stream with a binary-heap k-way merge instead
//! of the former full re-sort: `O(n log k)` with `k` = shard count, and —
//! crucially for the streaming pipeline — the merged head is available
//! immediately, so requests can be batched onward while the tail is still
//! queued.
//!
//! Ordering is by `(timestamp, user, object)` with ties broken by shard
//! index. Shards never split a user, and each shard is itself stably
//! sorted, so the merged stream is identical to a stable global sort of
//! the concatenated shards — independent of shard size and thread count.

use oat_httplog::Request;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::iter::Peekable;

/// One generation shard's output.
#[derive(Debug)]
pub struct SortedShard {
    /// Position of the owning site in `TraceConfig::sites`.
    pub site: usize,
    /// The shard's requests, sorted by `(timestamp, user, object)`.
    pub requests: Vec<Request>,
}

/// Merge-heap key: `(timestamp, user, object, shard)`. The shard index
/// both disambiguates equal request keys (stability) and locates the
/// shard to advance.
type MergeKey = (u64, u64, u64, usize);

fn key_of(request: &Request, shard: usize) -> MergeKey {
    (
        request.timestamp,
        request.user.raw(),
        request.object.raw(),
        shard,
    )
}

/// Streaming k-way merge over sorted shards.
///
/// Yields `(site, request)` pairs in global `(timestamp, user, object)`
/// order. Consumes the shard vectors; memory is released as shards drain.
#[derive(Debug)]
pub struct KWayMerge {
    shards: Vec<(usize, Peekable<std::vec::IntoIter<Request>>)>,
    heap: BinaryHeap<Reverse<MergeKey>>,
    remaining: usize,
}

impl KWayMerge {
    /// Builds a merge over `shards` (each already sorted).
    pub fn new(shards: Vec<SortedShard>) -> Self {
        let remaining = shards.iter().map(|s| s.requests.len()).sum();
        let mut iters = Vec::with_capacity(shards.len());
        let mut heap = BinaryHeap::with_capacity(shards.len());
        for (i, shard) in shards.into_iter().enumerate() {
            let SortedShard { site, requests } = shard;
            let mut it = requests.into_iter().peekable();
            if let Some(head) = it.peek() {
                heap.push(Reverse(key_of(head, i)));
            }
            iters.push((site, it));
        }
        Self {
            shards: iters,
            heap,
            remaining,
        }
    }

    /// Requests left to yield.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl Iterator for KWayMerge {
    type Item = (usize, Request);

    fn next(&mut self) -> Option<Self::Item> {
        let Reverse((_, _, _, idx)) = self.heap.pop()?;
        let (site, it) = &mut self.shards[idx];
        let request = it.next().expect("heap entry implies a pending request");
        if let Some(head) = it.peek() {
            self.heap.push(Reverse(key_of(head, idx)));
        }
        self.remaining -= 1;
        Some((*site, request))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Merges shards into one globally sorted vector plus the per-site offset
/// table consumed by `Trace::site_requests`: `site_index[s]` lists, in
/// order, the positions of site `s`'s requests in the merged vector.
///
/// # Panics
///
/// Panics if the merged trace exceeds `u32::MAX` requests (an in-memory
/// trace two orders of magnitude beyond paper scale).
pub fn merge_shards(shards: Vec<SortedShard>, n_sites: usize) -> (Vec<Request>, Vec<Vec<u32>>) {
    let merge = KWayMerge::new(shards);
    let mut requests = Vec::with_capacity(merge.remaining());
    let mut site_index: Vec<Vec<u32>> = vec![Vec::new(); n_sites];
    for (site, request) in merge {
        let pos = u32::try_from(requests.len()).expect("in-memory traces stay below 2^32 requests");
        if let Some(index) = site_index.get_mut(site) {
            index.push(pos);
        }
        requests.push(request);
    }
    (requests, site_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_httplog::{ObjectId, UserId};

    fn request(timestamp: u64, user: u64, object: u64) -> Request {
        Request {
            timestamp,
            user: UserId::new(user),
            object: ObjectId::new(object),
            ..Request::example()
        }
    }

    fn sorted(mut requests: Vec<Request>) -> Vec<Request> {
        requests.sort_by_key(|r| (r.timestamp, r.user.raw(), r.object.raw()));
        requests
    }

    #[test]
    fn merge_matches_stable_global_sort() {
        let a = sorted(vec![request(5, 1, 1), request(1, 2, 2), request(9, 3, 3)]);
        let b = sorted(vec![request(2, 4, 4), request(2, 5, 5), request(7, 6, 6)]);
        let c = sorted(vec![request(5, 1, 1), request(3, 7, 7)]);
        let mut all: Vec<Request> = a.iter().chain(&b).chain(&c).cloned().collect();
        all.sort_by_key(|r| (r.timestamp, r.user.raw(), r.object.raw()));

        let shards = vec![
            SortedShard {
                site: 0,
                requests: a,
            },
            SortedShard {
                site: 1,
                requests: b,
            },
            SortedShard {
                site: 0,
                requests: c,
            },
        ];
        let merge = KWayMerge::new(shards);
        assert_eq!(merge.remaining(), 8);
        let merged: Vec<Request> = merge.map(|(_, r)| r).collect();
        assert_eq!(merged, all);
    }

    #[test]
    fn equal_keys_keep_shard_order() {
        // Two shards holding byte-identical requests: shard 0's copy must
        // come out first (stability).
        let shards = vec![
            SortedShard {
                site: 1,
                requests: vec![request(4, 9, 9)],
            },
            SortedShard {
                site: 0,
                requests: vec![request(4, 9, 9)],
            },
        ];
        let order: Vec<usize> = KWayMerge::new(shards).map(|(site, _)| site).collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn site_index_points_at_own_requests() {
        let shards = vec![
            SortedShard {
                site: 0,
                requests: sorted(vec![request(3, 1, 1), request(8, 1, 2)]),
            },
            SortedShard {
                site: 1,
                requests: sorted(vec![request(1, 2, 3), request(5, 2, 4)]),
            },
        ];
        let (requests, site_index) = merge_shards(shards, 2);
        assert_eq!(requests.len(), 4);
        assert_eq!(site_index.len(), 2);
        assert_eq!(site_index[0], vec![1, 3]);
        assert_eq!(site_index[1], vec![0, 2]);
        for (site, index) in site_index.iter().enumerate() {
            for &pos in index {
                let expected = if site == 0 { 1 } else { 2 };
                assert_eq!(requests[pos as usize].user.raw(), expected);
            }
        }
    }

    #[test]
    fn empty_shards_are_fine() {
        let shards = vec![
            SortedShard {
                site: 0,
                requests: Vec::new(),
            },
            SortedShard {
                site: 1,
                requests: vec![request(1, 1, 1)],
            },
        ];
        let (requests, site_index) = merge_shards(shards, 2);
        assert_eq!(requests.len(), 1);
        assert!(site_index[0].is_empty());
        assert_eq!(site_index[1], vec![0]);
    }
}
