//! Parallel direct-to-columnar trace generation.
//!
//! [`generate_columnar_parallel`] produces the same shard directory as the
//! serial [`crate::generate_columnar`] — byte for byte, at any thread
//! count, run size, or merge fan-in — but generates and spools on a worker
//! pool with bounded memory at every stage:
//!
//! 1. **Run generation.** Workers pull `(site, user-range)` tasks from a
//!    shared queue, synthesize each task's requests from the per-user RNG
//!    streams, and encode them straight into sorted columnar *run files*
//!    (at most [`ParGenOptions::run_rows`] rows each) under a hidden
//!    `.runs-<prefix>/` directory. Nothing larger than one task's request
//!    vector plus one column buffer is ever resident per worker.
//! 2. **Hierarchical merge.** While more runs exist than the merge fan-in,
//!    consecutive groups of runs are k-way merged in parallel into
//!    longer runs. Each merge cursor streams bounded windows through
//!    [`ShardFileReader`] (positioned reads, no `mmap`), so a merge's
//!    memory is `O(fan-in × window)` regardless of run length. Ties on the
//!    `(timestamp, user, object)` key break by run order — merging
//!    consecutive groups and then the groups is the same stable merge as
//!    one global pass, which is what makes the output independent of the
//!    grouping.
//! 3. **Partitioned final merge.** The output shard sequence is cut into
//!    contiguous blocks of shards. For each block, the run zone maps and a
//!    binary search over the timestamp column locate the exact per-run
//!    start offsets of the block's first global row; each block then merges
//!    forward independently, sealing a shard every `rows_per_shard` rows
//!    with the same `<prefix>-NNNNNN.col` naming and rotation as
//!    [`oat_httplog::ColumnarDirWriter`]. Writer RSS stays bounded by one
//!    shard's column buffers per worker no matter how long the trace is.
//!
//! The per-site user populations are the one input that grows with
//! `scale`; they are needed only by phase 1 and are dropped before the
//! merge phases allocate anything, so they never stack under the merge
//! and write buffers (the returned trace's site tables are empty — see
//! [`generate_columnar_parallel`]).

use crate::catalog::Catalog;
use crate::generator::{
    build_sites, generate_shard, shard_tasks, site_iats, ColumnarGenError, ColumnarTrace,
    GenOptions, TraceConfig,
};
use crate::users::UserProfile;
use oat_httplog::codec::columnar::VERSION as COLUMNAR_VERSION;
use oat_httplog::shard::DEFAULT_ROWS_PER_SHARD;
use oat_httplog::{
    is_enospc, read_shard_footer, write_atomic, ColumnBuilder, ColumnarError, Fnv1a, HttplogError,
    IoLayer, ManifestShard, RealIo, Request, ShardFileReader, SpoolManifest,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default rows per sorted run file.
pub const DEFAULT_RUN_ROWS: usize = 1 << 20;

/// Default maximum runs merged at once by the hierarchical merge.
pub const DEFAULT_MERGE_FANIN: usize = 64;

/// Rows a merge cursor materializes per positioned read.
const CURSOR_WINDOW_ROWS: usize = 4096;

/// Options controlling *how* the parallel engine runs — never *what* it
/// produces: any combination yields the identical shard directory for the
/// same config.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ParGenOptions {
    /// Worker threads for every phase; `0` = all available cores.
    pub threads: usize,
    /// Users per generation task; `0` = [`crate::DEFAULT_SHARD_SIZE`].
    pub shard_size: usize,
    /// Rows per sorted run file; `0` = [`DEFAULT_RUN_ROWS`].
    pub run_rows: usize,
    /// Maximum runs per hierarchical merge; `0` = [`DEFAULT_MERGE_FANIN`],
    /// minimum 2.
    pub merge_fanin: usize,
}

impl ParGenOptions {
    fn gen_opts(&self) -> GenOptions {
        GenOptions {
            threads: self.threads,
            shard_size: self.shard_size,
        }
    }

    fn resolved_run_rows(&self) -> usize {
        if self.run_rows == 0 {
            DEFAULT_RUN_ROWS
        } else {
            self.run_rows
        }
    }

    fn resolved_merge_fanin(&self) -> usize {
        if self.merge_fanin == 0 {
            DEFAULT_MERGE_FANIN
        } else {
            self.merge_fanin.max(2)
        }
    }
}

/// Crash-recovery options for [`generate_columnar_parallel_with`].
#[derive(Debug, Clone)]
pub struct ResumeOptions {
    /// Reuse a surviving `.runs-<prefix>/` scratch directory (and any
    /// completed output shards) from an interrupted run instead of
    /// starting over. The scratch fingerprint must match the current
    /// config and engine options; a mismatch falls back to a fresh
    /// start (wiping the stale scratch).
    pub resume: bool,
    /// Storage fault seam every spool write goes through;
    /// [`RealIo`] in production, a failing injector in recovery tests.
    pub io: Arc<dyn IoLayer>,
}

impl Default for ResumeOptions {
    fn default() -> Self {
        Self {
            resume: false,
            io: Arc::new(RealIo),
        }
    }
}

/// Fingerprint of everything that determines spool *content*: the trace
/// config (whose `Debug` form embeds every generation parameter) and the
/// columnar codec version. Engine knobs (threads, run/merge sizes) are
/// deliberately excluded — they never change the output bytes.
pub fn config_fingerprint(config: &TraceConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.update(format!("{config:?}").as_bytes());
    h.update(&[COLUMNAR_VERSION]);
    h.digest()
}

/// Metadata of one sorted run file on disk.
#[derive(Debug, Clone)]
struct RunFile {
    path: PathBuf,
    rows: u64,
    min_ts: u64,
    max_ts: u64,
}

/// One sorted run: an ordered list of files whose rows concatenate to a
/// `(timestamp, user, object)`-sorted sequence.
#[derive(Debug)]
struct Run {
    files: Vec<RunFile>,
    rows: u64,
}

fn spool_err(e: ColumnarError) -> ColumnarGenError {
    ColumnarGenError::Spool(HttplogError::from(e))
}

fn internal_err(what: &str) -> ColumnarError {
    ColumnarError::Io(std::io::Error::other(format!(
        "parallel generation internal invariant violated: {what}"
    )))
}

/// Runs `f(i)` for every `i < count` on a pool of `workers` threads and
/// returns the results in index order. The first error wins and the
/// remaining workers stop pulling new work.
fn parallel_indexed<T, F>(count: usize, workers: usize, f: F) -> Result<Vec<T>, ColumnarError>
where
    T: Send,
    F: Fn(usize) -> Result<T, ColumnarError> + Sync,
{
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let workers = workers.clamp(1, count.max(1));
    let collected: Vec<Vec<(usize, Result<T, ColumnarError>)>> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let failed = &failed;
                    let f = &f;
                    scope.spawn(move |_| {
                        let mut mine = Vec::new();
                        loop {
                            if failed.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= count {
                                break;
                            }
                            let out = f(i);
                            if out.is_err() {
                                failed.store(true, Ordering::Relaxed);
                            }
                            mine.push((i, out));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // oat-lint: allow(panic-freedom) — a worker panic is a bug;
                    h.join().expect("parallel generation worker panicked")
                })
                .collect()
        })
        // oat-lint: allow(panic-freedom) — scope only errs on worker panic.
        .expect("parallel generation workers panicked");
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for (i, res) in collected.into_iter().flatten() {
        match res {
            Ok(v) => {
                if let Some(slot) = slots.get_mut(i) {
                    *slot = Some(v);
                }
            }
            Err(e) => return Err(e),
        }
    }
    let mut out = Vec::with_capacity(count);
    for slot in slots {
        // No error returned above ⇒ every index was pulled and completed.
        out.push(slot.ok_or_else(|| internal_err("task result missing"))?);
    }
    Ok(out)
}

/// Writes a task/group completion marker: one `part=… rows=… min=… max=…`
/// line per output run file. The marker lands atomically *after* its run
/// files, so its presence certifies that every listed file is complete —
/// the journal entry `--resume` trusts to skip finished work.
fn write_marker(io: &dyn IoLayer, path: &Path, files: &[RunFile]) -> Result<(), ColumnarError> {
    let mut text = String::new();
    for f in files {
        let name = f
            .path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| internal_err("run file name not unicode"))?;
        text.push_str(&format!(
            "part={name} rows={} min={} max={}\n",
            f.rows, f.min_ts, f.max_ts
        ));
    }
    write_atomic(io, path, |w| w.write_all(text.as_bytes())).map_err(ColumnarError::Io)
}

/// Reads a completion marker back into its run-file list; `Ok(None)` when
/// the marker does not exist (the work was never completed).
fn read_marker(path: &Path, runs_dir: &Path) -> Result<Option<Vec<RunFile>>, ColumnarError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ColumnarError::Io(e)),
    };
    let malformed = || {
        ColumnarError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("malformed completion marker {}", path.display()),
        ))
    };
    let mut files = Vec::new();
    for line in text.lines() {
        let mut name: Option<String> = None;
        let (mut rows, mut min_ts, mut max_ts) = (None, None, None);
        for field in line.split_whitespace() {
            let (key, value) = field.split_once('=').ok_or_else(malformed)?;
            match key {
                "part" => name = Some(value.to_string()),
                "rows" => rows = value.parse::<u64>().ok(),
                "min" => min_ts = value.parse::<u64>().ok(),
                "max" => max_ts = value.parse::<u64>().ok(),
                _ => return Err(malformed()),
            }
        }
        match (name, rows, min_ts, max_ts) {
            (Some(name), Some(rows), Some(min_ts), Some(max_ts)) => files.push(RunFile {
                path: runs_dir.join(name),
                rows,
                min_ts,
                max_ts,
            }),
            _ => return Err(malformed()),
        }
    }
    Ok(Some(files))
}

/// Encodes `rows` into run files of at most `run_rows` rows each, reusing
/// `builder`'s buffers across chunks.
fn write_run_files<F>(
    builder: &mut ColumnBuilder<Request>,
    rows: &[Request],
    run_rows: usize,
    runs_dir: &Path,
    io: &dyn IoLayer,
    name_of: F,
) -> Result<Vec<RunFile>, ColumnarError>
where
    F: Fn(usize) -> String,
{
    let mut files = Vec::new();
    for (part, chunk) in rows.chunks(run_rows.max(1)).enumerate() {
        builder.clear();
        builder.push_batch(chunk)?;
        let path = runs_dir.join(name_of(part));
        builder.write_file_with(&path, io)?;
        let zone = builder.zone();
        files.push(RunFile {
            path,
            rows: chunk.len() as u64,
            min_ts: zone.min_timestamp,
            max_ts: zone.max_timestamp,
        });
    }
    builder.clear();
    Ok(files)
}

/// Phase 1: generate every `(site, user-range)` task into its own sorted
/// run. Runs are ordered by task index — the same order the serial path
/// feeds its k-way merge — so later stable merges reproduce its output.
///
/// Each completed task writes an `r0-<t>.done` marker after its run
/// files; under `resume`, marked tasks are reconstructed from their
/// markers and never regenerated (generation is deterministic, so a
/// half-written unmarked task is simply redone, atomically overwriting
/// any leftover part files with identical bytes).
fn generate_runs(
    config: &TraceConfig,
    catalogs: &[Catalog],
    populations: &[Vec<UserProfile>],
    workers: usize,
    shard_size: usize,
    run_rows: usize,
    runs_dir: &Path,
    io: &dyn IoLayer,
    resume: bool,
) -> Result<Vec<Run>, ColumnarGenError> {
    let tasks = shard_tasks(populations, shard_size);
    let iats = site_iats(config);
    let per_task = parallel_indexed(tasks.len(), workers, |t| {
        let marker = runs_dir.join(format!("r0-{t:06}.done"));
        if resume {
            if let Some(files) = read_marker(&marker, runs_dir)? {
                return Ok(files);
            }
        }
        let &(site, lo, hi) = tasks
            .get(t)
            .ok_or_else(|| internal_err("task out of range"))?;
        let (site_profile, catalog, users, iat) = match (
            config.sites.get(site),
            catalogs.get(site),
            populations.get(site),
            iats.get(site),
        ) {
            (Some(s), Some(c), Some(u), Some(i)) => (s, c, u, i),
            _ => return Err(internal_err("site index out of range")),
        };
        let requests = generate_shard(config, site_profile, catalog, users, iat, site, lo, hi);
        let mut builder = ColumnBuilder::<Request>::new();
        let files = write_run_files(&mut builder, &requests, run_rows, runs_dir, io, |part| {
            format!("r0-{t:06}-{part:03}.col")
        })?;
        write_marker(io, &marker, &files)?;
        Ok(files)
    })
    .map_err(spool_err)?;
    Ok(per_task
        .into_iter()
        .filter(|files| files.iter().any(|f| f.rows > 0))
        .map(|files| {
            let rows = files.iter().map(|f| f.rows).sum();
            Run { files, rows }
        })
        .collect())
}

/// A sequential cursor over one run, materializing bounded windows through
/// positioned reads. The buffer is kept reversed so the next row is a
/// clone-free `pop`.
struct RunCursor {
    files: Vec<RunFile>,
    file_idx: usize,
    row_in_file: usize,
    reader: Option<ShardFileReader<Request>>,
    buf: Vec<Request>,
}

impl RunCursor {
    /// A cursor positioned at global row `start` of `run`.
    fn new(run: &Run, start: u64) -> RunCursor {
        let mut file_idx = 0usize;
        let mut row = start;
        for f in &run.files {
            if row < f.rows {
                break;
            }
            row -= f.rows;
            file_idx += 1;
        }
        RunCursor {
            files: run.files.clone(),
            file_idx,
            row_in_file: row as usize,
            reader: None,
            buf: Vec::new(),
        }
    }

    fn fill(&mut self) -> Result<(), ColumnarError> {
        while self.buf.is_empty() {
            let Some(file) = self.files.get(self.file_idx) else {
                return Ok(()); // exhausted
            };
            if self.row_in_file >= file.rows as usize {
                self.file_idx += 1;
                self.row_in_file = 0;
                self.reader = None;
                continue;
            }
            if self.reader.is_none() {
                self.reader = Some(ShardFileReader::open(&file.path)?);
            }
            let reader = self
                .reader
                .as_mut()
                .ok_or_else(|| internal_err("cursor reader missing"))?;
            let lo = self.row_in_file;
            let hi = lo
                .saturating_add(CURSOR_WINDOW_ROWS)
                .min(file.rows as usize);
            reader.read_window(lo..hi, &mut self.buf)?;
            self.buf.reverse();
            self.row_in_file = hi;
        }
        Ok(())
    }

    fn peek_key(&mut self) -> Result<Option<(u64, u64, u64)>, ColumnarError> {
        self.fill()?;
        Ok(self
            .buf
            .last()
            .map(|r| (r.timestamp, r.user.raw(), r.object.raw())))
    }

    fn take(&mut self) -> Result<Option<Request>, ColumnarError> {
        self.fill()?;
        Ok(self.buf.pop())
    }
}

/// K-way merges `group`'s runs (stable: ties break by in-group position =
/// run order) and calls `emit` once per row in merged order.
fn merge_cursors<F>(mut cursors: Vec<RunCursor>, mut emit: F) -> Result<u64, ColumnarError>
where
    F: FnMut(Request) -> Result<bool, ColumnarError>,
{
    let mut heap: BinaryHeap<Reverse<(u64, u64, u64, usize)>> = BinaryHeap::new();
    for (i, cursor) in cursors.iter_mut().enumerate() {
        if let Some((ts, user, obj)) = cursor.peek_key()? {
            heap.push(Reverse((ts, user, obj, i)));
        }
    }
    let mut emitted = 0u64;
    while let Some(Reverse((_, _, _, idx))) = heap.pop() {
        let cursor = cursors
            .get_mut(idx)
            .ok_or_else(|| internal_err("cursor index out of range"))?;
        let row = cursor
            .take()?
            .ok_or_else(|| internal_err("cursor empty after peek"))?;
        emitted += 1;
        if !emit(row)? {
            break;
        }
        if let Some((ts, user, obj)) = cursor.peek_key()? {
            heap.push(Reverse((ts, user, obj, idx)));
        }
    }
    Ok(emitted)
}

/// Merges one group of consecutive runs into a single longer run, rotating
/// output files every `run_rows` rows.
///
/// Crash-safety ordering: outputs land first (atomically), then the
/// group's `.done` marker, and only *then* are the inputs deleted. So a
/// missing marker implies the inputs are still on disk (the merge can be
/// redone), while a present marker lets `resume` reconstruct the output
/// run without touching the — possibly already deleted — inputs.
#[allow(clippy::too_many_arguments)]
fn merge_group<F>(
    group: &[Run],
    run_rows: usize,
    runs_dir: &Path,
    io: &dyn IoLayer,
    resume: bool,
    marker_name: &str,
    name_of: F,
) -> Result<Run, ColumnarError>
where
    F: Fn(usize) -> String,
{
    let marker = runs_dir.join(marker_name);
    if resume {
        if let Some(files) = read_marker(&marker, runs_dir)? {
            // Finished before the crash; inputs may be half-deleted.
            // Finish the cleanup idempotently and reuse the outputs.
            for run in group {
                for file in &run.files {
                    match std::fs::remove_file(&file.path) {
                        Ok(()) => {}
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                        Err(e) => return Err(ColumnarError::Io(e)),
                    }
                }
            }
            let rows = files.iter().map(|f| f.rows).sum();
            return Ok(Run { files, rows });
        }
    }
    let cursors: Vec<RunCursor> = group.iter().map(|run| RunCursor::new(run, 0)).collect();
    let mut builder = ColumnBuilder::<Request>::new();
    let mut files: Vec<RunFile> = Vec::new();
    let mut part = 0usize;
    let seal = |builder: &mut ColumnBuilder<Request>,
                files: &mut Vec<RunFile>,
                part: &mut usize|
     -> Result<(), ColumnarError> {
        let path = runs_dir.join(name_of(*part));
        builder.write_file_with(&path, io)?;
        let zone = builder.zone();
        files.push(RunFile {
            path,
            rows: builder.rows() as u64,
            min_ts: zone.min_timestamp,
            max_ts: zone.max_timestamp,
        });
        *part += 1;
        builder.clear();
        Ok(())
    };
    let rows = merge_cursors(cursors, |row| {
        builder.push(&row)?;
        if builder.rows() >= run_rows.max(1) {
            seal(&mut builder, &mut files, &mut part)?;
        }
        Ok(true)
    })?;
    if builder.rows() > 0 {
        seal(&mut builder, &mut files, &mut part)?;
    }
    write_marker(io, &marker, &files)?;
    for run in group {
        for file in &run.files {
            std::fs::remove_file(&file.path)?;
        }
    }
    Ok(Run { files, rows })
}

/// Phase 2: one hierarchical merge level — consecutive groups of at most
/// `fanin` runs collapse into single runs, in parallel.
fn merge_level(
    runs: Vec<Run>,
    fanin: usize,
    level: usize,
    run_rows: usize,
    workers: usize,
    runs_dir: &Path,
    io: &dyn IoLayer,
    resume: bool,
) -> Result<Vec<Run>, ColumnarGenError> {
    let groups: Vec<&[Run]> = runs.chunks(fanin).collect();
    parallel_indexed(groups.len(), workers, |g| {
        let group = groups
            .get(g)
            .ok_or_else(|| internal_err("group out of range"))?;
        merge_group(
            group,
            run_rows,
            runs_dir,
            io,
            resume,
            &format!("r{level}-{g:06}.done"),
            |part| format!("r{level}-{g:06}-{part:03}.col"),
        )
    })
    .map_err(spool_err)
}

/// Lazily opened per-file readers for global-offset selection.
struct KeyIndex {
    readers: Vec<Vec<Option<ShardFileReader<Request>>>>,
}

impl KeyIndex {
    fn new(runs: &[Run]) -> KeyIndex {
        KeyIndex {
            readers: runs
                .iter()
                .map(|run| run.files.iter().map(|_| None).collect())
                .collect(),
        }
    }

    fn reader(
        &mut self,
        runs: &[Run],
        run_idx: usize,
        file_idx: usize,
    ) -> Result<&mut ShardFileReader<Request>, ColumnarError> {
        let slot = self
            .readers
            .get_mut(run_idx)
            .and_then(|files| files.get_mut(file_idx))
            .ok_or_else(|| internal_err("selection reader slot out of range"))?;
        if slot.is_none() {
            let path = runs
                .get(run_idx)
                .and_then(|run| run.files.get(file_idx))
                .map(|f| f.path.clone())
                .ok_or_else(|| internal_err("selection file out of range"))?;
            *slot = Some(ShardFileReader::open(&path)?);
        }
        slot.as_mut()
            .ok_or_else(|| internal_err("selection reader missing"))
    }

    /// Rows of run `run_idx` with timestamp `< t`. Zone maps prune to at
    /// most one binary search: run files ascend in time, so only the file
    /// straddling `t` needs point reads.
    fn count_lt(&mut self, runs: &[Run], run_idx: usize, t: u64) -> Result<u64, ColumnarError> {
        let Some(run) = runs.get(run_idx) else {
            return Ok(0);
        };
        let mut count = 0u64;
        for (file_idx, file) in run.files.iter().enumerate() {
            if file.rows == 0 {
                continue;
            }
            if file.max_ts < t {
                count += file.rows;
                continue;
            }
            if file.min_ts >= t {
                break;
            }
            let reader = self.reader(runs, run_idx, file_idx)?;
            count += reader.partition_point_lt(t)? as u64;
            // Later files start at or after this file's max ≥ t: all pruned.
            break;
        }
        Ok(count)
    }

    /// Rows of run `run_idx` with timestamp `<= t`.
    fn count_le(&mut self, runs: &[Run], run_idx: usize, t: u64) -> Result<u64, ColumnarError> {
        if t == u64::MAX {
            return Ok(runs.get(run_idx).map_or(0, |run| run.rows));
        }
        self.count_lt(runs, run_idx, t + 1)
    }

    /// The `(timestamp, user, object)` key at global position `pos` of run
    /// `run_idx`.
    fn key_at(
        &mut self,
        runs: &[Run],
        run_idx: usize,
        pos: u64,
    ) -> Result<(u64, u64, u64), ColumnarError> {
        let Some(run) = runs.get(run_idx) else {
            return Err(internal_err("key run out of range"));
        };
        let mut rem = pos;
        for (file_idx, file) in run.files.iter().enumerate() {
            if rem < file.rows {
                return self.reader(runs, run_idx, file_idx)?.key_at(rem as usize);
            }
            rem -= file.rows;
        }
        Err(internal_err("key position out of range"))
    }
}

/// The per-run start offsets of global merged row `n`: `offsets[r]` rows of
/// run `r` precede position `n` of the merged sequence. Found by binary
/// searching the boundary timestamp over the zone-map range, then ordering
/// boundary ties by the same `(user, object, run)` key the merge uses.
fn select_offsets(runs: &[Run], index: &mut KeyIndex, n: u64) -> Result<Vec<u64>, ColumnarError> {
    let total: u64 = runs.iter().map(|run| run.rows).sum();
    if n == 0 {
        return Ok(vec![0; runs.len()]);
    }
    if n >= total {
        return Ok(runs.iter().map(|run| run.rows).collect());
    }
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for run in runs {
        for file in &run.files {
            if file.rows > 0 {
                lo = lo.min(file.min_ts);
                hi = hi.max(file.max_ts);
            }
        }
    }
    // Smallest timestamp t* with count_le(t*) >= n; by minimality t* is an
    // actual row timestamp and count_lt(t*) < n.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let mut le = 0u64;
        for r in 0..runs.len() {
            le += index.count_le(runs, r, mid)?;
        }
        if le >= n {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let t_star = lo;
    let mut offsets = Vec::with_capacity(runs.len());
    let mut before = 0u64;
    for r in 0..runs.len() {
        let c = index.count_lt(runs, r, t_star)?;
        offsets.push(c);
        before += c;
    }
    let mut need = n.saturating_sub(before);
    if need > 0 {
        // Order the boundary-timestamp ties exactly as the merge would:
        // by (user, object, run). Within one run, tie rows are already in
        // that order, so the taken rows form a per-run prefix.
        let mut ties: Vec<(u64, u64, usize, u64)> = Vec::new();
        for r in 0..runs.len() {
            let from = index.count_lt(runs, r, t_star)?;
            let to = index.count_le(runs, r, t_star)?;
            for pos in from..to {
                let (_, user, object) = index.key_at(runs, r, pos)?;
                ties.push((user, object, r, pos));
            }
        }
        ties.sort_unstable();
        for &(_, _, r, _) in &ties {
            if need == 0 {
                break;
            }
            if let Some(slot) = offsets.get_mut(r) {
                *slot += 1;
            }
            need -= 1;
        }
    }
    Ok(offsets)
}

/// Phase 3 worker: merges and writes output shards `[shard_lo, shard_hi)`.
/// Shard `j` holds exactly global rows `[j·R, (j+1)·R)` — the same cut the
/// serial `ColumnarDirWriter` rotation makes — so shard bytes depend only
/// on the merged sequence, never on the block partitioning.
#[allow(clippy::too_many_arguments)]
fn write_output_block(
    runs: &[Run],
    dir: &Path,
    prefix: &str,
    rows_per_shard: usize,
    shard_lo: usize,
    shard_hi: usize,
    total: u64,
    io: &dyn IoLayer,
) -> Result<u64, ColumnarError> {
    let start_row = (shard_lo as u64).saturating_mul(rows_per_shard as u64);
    let end_row = (shard_hi as u64)
        .saturating_mul(rows_per_shard as u64)
        .min(total);
    if start_row >= end_row {
        return Ok(0);
    }
    let offsets = {
        let mut index = KeyIndex::new(runs);
        select_offsets(runs, &mut index, start_row)?
    };
    let mut cursors = Vec::with_capacity(runs.len());
    for (r, run) in runs.iter().enumerate() {
        cursors.push(RunCursor::new(run, offsets.get(r).copied().unwrap_or(0)));
    }
    let goal = end_row - start_row;
    let mut builder = ColumnBuilder::<Request>::new();
    let mut shard = shard_lo;
    let seal =
        |builder: &mut ColumnBuilder<Request>, shard: &mut usize| -> Result<(), ColumnarError> {
            let path = dir.join(format!("{prefix}-{:06}.col", *shard));
            builder.write_file_with(&path, io)?;
            *shard += 1;
            builder.clear();
            Ok(())
        };
    let mut written = 0u64;
    merge_cursors(cursors, |row| {
        builder.push(&row)?;
        written += 1;
        if builder.rows() >= rows_per_shard {
            seal(&mut builder, &mut shard)?;
        }
        Ok(written < goal)
    })?;
    if written != goal {
        return Err(internal_err("merged fewer rows than selected"));
    }
    if builder.rows() > 0 {
        seal(&mut builder, &mut shard)?;
    }
    Ok(written)
}

/// Generates a trace into a columnar shard directory on a worker pool.
///
/// The resulting directory is byte-identical, file for file, to
/// [`crate::generate_columnar`] with the same `config`, `prefix`, and
/// `rows_per_shard` — for every thread count, run size, and merge fan-in.
/// `rows_per_shard = 0` uses [`DEFAULT_ROWS_PER_SHARD`]. Peak memory per
/// worker is one generation task plus one shard's column buffers; total
/// scratch disk is about twice the final trace size while merging.
///
/// Unlike the in-memory serial path, the returned
/// [`ColumnarTrace::catalogs`] and [`ColumnarTrace::populations`] are
/// **empty**: the site tables grow with `scale` (the user populations
/// dominate generation RSS at large scale) and are dropped as soon as run
/// generation finishes, before any merge buffer is allocated. Call
/// [`ColumnarTrace::rebuild_site_tables`] if ground-truth tables are needed
/// alongside the spool.
///
/// # Errors
///
/// [`ColumnarGenError::Config`] if the config fails validation,
/// [`ColumnarGenError::Spool`] if run or shard files cannot be written.
pub fn generate_columnar_parallel(
    config: &TraceConfig,
    opts: &ParGenOptions,
    dir: &Path,
    prefix: &str,
    rows_per_shard: usize,
) -> Result<ColumnarTrace, ColumnarGenError> {
    generate_columnar_parallel_with(
        config,
        opts,
        dir,
        prefix,
        rows_per_shard,
        &ResumeOptions::default(),
    )
}

/// The scratch-directory fingerprint file contents: the config/content
/// fingerprint plus every engine knob that shapes the *scratch layout*
/// (task partition, run split, merge grouping). Threads are excluded —
/// they change scheduling, never file names or contents — so a run may
/// resume at a different thread count.
fn scratch_fingerprint(
    fingerprint: u64,
    shard_size: usize,
    run_rows: usize,
    fanin: usize,
    rows_per_shard: usize,
) -> String {
    format!(
        "fingerprint = {fingerprint}\nshard_size = {shard_size}\nrun_rows = {run_rows}\nmerge_fanin = {fanin}\nrows_per_shard = {rows_per_shard}\n"
    )
}

fn output_shard_name(prefix: &str, index: usize) -> String {
    format!("{prefix}-{index:06}.col")
}

/// Best-effort partial manifest after an out-of-space failure: whatever
/// complete shards survive are listed with `complete = false`, so a later
/// `--resume` (or an operator) can see exactly how far the run got.
fn flush_partial_manifest(dir: &Path, prefix: &str, fingerprint: u64, rows_per_shard: usize) {
    let mut shards: Vec<ManifestShard> = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok().and_then(|e| e.file_name().into_string().ok()))
        .filter(|n| n.starts_with(prefix) && n.ends_with(".col"))
        .collect();
    names.sort();
    for name in names {
        if let Ok(footer) = read_shard_footer(&dir.join(&name)) {
            shards.push(ManifestShard {
                name,
                rows: footer.rows,
            });
        }
    }
    let manifest = SpoolManifest {
        prefix: prefix.to_string(),
        codec_version: COLUMNAR_VERSION,
        fingerprint,
        rows_per_shard: rows_per_shard as u64,
        total_rows: shards.iter().map(|s| s.rows).sum(),
        complete: false,
        shards,
    };
    let _ = manifest.store(&RealIo, dir);
}

/// [`generate_columnar_parallel`] with crash-recovery control.
///
/// Every spool write (run files, completion markers, output shards, the
/// manifest) goes through `resume_opts.io` behind an atomic
/// write-fsync-rename, so the pipeline can be killed — or fault-injected
/// — at any storage operation and restarted. With
/// `resume_opts.resume == true` a restart:
///
/// - returns immediately if a complete manifest with a matching
///   fingerprint already certifies the spool;
/// - otherwise reuses a surviving `.runs-<prefix>/` scratch directory
///   whose fingerprint matches, skipping every journaled phase-1 task and
///   merge group and rewriting only the missing output shards;
/// - wipes mismatched or unfingerprinted scratch and starts fresh.
///
/// The resumed spool is byte-identical to an uninterrupted run. On an
/// out-of-space failure a partial manifest (`complete = false`) is
/// flushed best-effort so the damage is inspectable.
///
/// # Errors
///
/// As [`generate_columnar_parallel`].
pub fn generate_columnar_parallel_with(
    config: &TraceConfig,
    opts: &ParGenOptions,
    dir: &Path,
    prefix: &str,
    rows_per_shard: usize,
    resume_opts: &ResumeOptions,
) -> Result<ColumnarTrace, ColumnarGenError> {
    config.validate()?;
    let rows_per_shard = if rows_per_shard == 0 {
        DEFAULT_ROWS_PER_SHARD
    } else {
        rows_per_shard
    };
    let fingerprint = config_fingerprint(config);
    let result = run_pipeline(
        config,
        opts,
        dir,
        prefix,
        rows_per_shard,
        resume_opts,
        fingerprint,
    );
    if let Err(ColumnarGenError::Spool(HttplogError::Io(e))) = &result {
        if is_enospc(e) {
            flush_partial_manifest(dir, prefix, fingerprint, rows_per_shard);
        }
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn run_pipeline(
    config: &TraceConfig,
    opts: &ParGenOptions,
    dir: &Path,
    prefix: &str,
    rows_per_shard: usize,
    resume_opts: &ResumeOptions,
    fingerprint: u64,
) -> Result<ColumnarTrace, ColumnarGenError> {
    let io: &dyn IoLayer = &*resume_opts.io;
    let gen_opts = opts.gen_opts();
    let threads = gen_opts.resolved_threads();
    let shard_size = gen_opts.resolved_shard_size();
    let run_rows = opts.resolved_run_rows();
    let fanin = opts.resolved_merge_fanin();
    let spool_io_err = |e: std::io::Error| spool_err(ColumnarError::Io(e));

    std::fs::create_dir_all(dir).map_err(spool_io_err)?;
    let trace = |total: u64, shards: u64| ColumnarTrace {
        catalogs: Arc::new(Vec::new()),
        populations: Arc::new(Vec::new()),
        config: config.clone(),
        dir: dir.to_path_buf(),
        prefix: prefix.to_string(),
        rows: total,
        shards,
    };

    // A complete, fingerprint-matching manifest certifies the whole
    // spool: the previous run finished (possibly dying between manifest
    // write and scratch cleanup). Nothing to regenerate.
    if resume_opts.resume {
        if let Ok(Some(manifest)) = SpoolManifest::load(dir, prefix) {
            if manifest.complete
                && manifest.fingerprint == fingerprint
                && manifest.rows_per_shard == rows_per_shard as u64
                && manifest.shards.iter().all(|s| dir.join(&s.name).exists())
            {
                let _ = std::fs::remove_dir_all(dir.join(format!(".runs-{prefix}")));
                return Ok(trace(manifest.total_rows, manifest.shards.len() as u64));
            }
        }
    }

    let runs_dir = dir.join(format!(".runs-{prefix}"));
    let fp_path = runs_dir.join("FINGERPRINT");
    let fp_text = scratch_fingerprint(fingerprint, shard_size, run_rows, fanin, rows_per_shard);
    // Resume only a scratch directory stamped with the same fingerprint;
    // anything else (stale scratch from an older run, interrupted
    // different-config run) is wiped — which is also what cleans up
    // abandoned `.runs-*` dirs on a fresh start.
    let resume = resume_opts.resume
        && matches!(std::fs::read_to_string(&fp_path), Ok(text) if text == fp_text);
    if !resume {
        let _ = std::fs::remove_dir_all(&runs_dir);
        std::fs::create_dir_all(&runs_dir).map_err(spool_io_err)?;
        write_atomic(io, &fp_path, |w| w.write_all(fp_text.as_bytes())).map_err(spool_io_err)?;
    }

    // Phase 1: per-task sorted runs (journaled via `.done` markers).
    let (catalogs, populations) = build_sites(config);
    let mut runs = generate_runs(
        config,
        &catalogs,
        &populations,
        threads,
        shard_size,
        run_rows,
        &runs_dir,
        io,
        resume,
    )?;
    // The merge phases operate purely on run files; free the site tables
    // (user populations grow with `scale` and would otherwise sit under
    // the merge's peak) before any output shard buffer is allocated.
    drop(populations);
    drop(catalogs);

    // Phase 2: hierarchical merge down to at most `fanin` runs.
    let mut level = 0usize;
    while runs.len() > fanin {
        level += 1;
        runs = merge_level(runs, fanin, level, run_rows, threads, &runs_dir, io, resume)?;
    }

    // Phase 3: time-partitioned final merge into the shard directory.
    // Output shards land by atomic rename, so a shard file whose footer
    // carries the expected row count is complete; under resume only the
    // missing/mismatched indices are rewritten (each contiguous range is
    // a valid merge block — shard content never depends on the blocking).
    let total: u64 = runs.iter().map(|run| run.rows).sum();
    let shards = total.div_ceil(rows_per_shard as u64) as usize;
    let expected_rows = |j: usize| -> u64 {
        if j + 1 == shards {
            total - (shards as u64 - 1) * rows_per_shard as u64
        } else {
            rows_per_shard as u64
        }
    };
    let mut missing: Vec<usize> = Vec::new();
    for j in 0..shards {
        let done = resume
            && matches!(
                read_shard_footer(&dir.join(output_shard_name(prefix, j))),
                Ok(footer) if footer.rows == expected_rows(j)
            );
        if !done {
            missing.push(j);
        }
    }
    if !missing.is_empty() {
        let block_shards = shards.div_ceil(threads.saturating_mul(2).max(1)).max(1);
        // Chunk each contiguous missing range into parallel blocks.
        let mut blocks: Vec<(usize, usize)> = Vec::new();
        let mut i = 0usize;
        while i < missing.len() {
            let mut j = i;
            while j + 1 < missing.len() && missing[j + 1] == missing[j] + 1 {
                j += 1;
            }
            let (range_lo, range_hi) = (missing[i], missing[j] + 1);
            let mut lo = range_lo;
            while lo < range_hi {
                blocks.push((lo, (lo + block_shards).min(range_hi)));
                lo += block_shards;
            }
            i = j + 1;
        }
        let goal: u64 = missing.iter().map(|&j| expected_rows(j)).sum();
        let written = parallel_indexed(blocks.len(), threads, |b| {
            let &(lo, hi) = blocks
                .get(b)
                .ok_or_else(|| internal_err("block out of range"))?;
            write_output_block(&runs, dir, prefix, rows_per_shard, lo, hi, total, io)
        })
        .map_err(spool_err)?;
        let written: u64 = written.iter().sum();
        if written != goal {
            return Err(spool_err(internal_err("output row count mismatch")));
        }
    }

    // Remove output shards beyond the expected count (stale leftovers of
    // an interrupted larger run would otherwise corrupt the directory).
    if let Ok(entries) = std::fs::read_dir(dir) {
        for name in entries.filter_map(|e| e.ok().and_then(|e| e.file_name().into_string().ok())) {
            let is_ours = name.starts_with(prefix) && name.ends_with(".col");
            let index = name
                .get(prefix.len() + 1..name.len() - 4)
                .and_then(|s| s.parse::<usize>().ok());
            if is_ours && matches!(index, Some(i) if i >= shards) {
                std::fs::remove_file(dir.join(&name)).map_err(spool_io_err)?;
            }
        }
    }

    // The manifest is the completion record: written (atomically) before
    // the scratch directory goes away, so a crash between the two leaves
    // a resumable state, never a half-certified spool.
    let manifest = SpoolManifest {
        prefix: prefix.to_string(),
        codec_version: COLUMNAR_VERSION,
        fingerprint,
        rows_per_shard: rows_per_shard as u64,
        total_rows: total,
        complete: true,
        shards: (0..shards)
            .map(|j| ManifestShard {
                name: output_shard_name(prefix, j),
                rows: expected_rows(j),
            })
            .collect(),
    };
    manifest.store(io, dir).map_err(spool_io_err)?;
    let _ = std::fs::remove_dir_all(&runs_dir);

    Ok(trace(total, shards as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_columnar, MultiDayModel};

    fn tiny_config() -> TraceConfig {
        TraceConfig {
            scale: 0.003,
            catalog_scale: 0.01,
            ..TraceConfig::paper_week()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oat-pargen-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Byte-compares every `.col` file of two spool directories.
    fn assert_dirs_identical(a: &Path, b: &Path) {
        let list = |dir: &Path| -> Vec<String> {
            let mut names: Vec<String> = std::fs::read_dir(dir)
                .expect("list spool dir")
                .map(|e| {
                    e.expect("dir entry")
                        .file_name()
                        .to_string_lossy()
                        .into_owned()
                })
                .filter(|n| n.ends_with(".col"))
                .collect();
            names.sort();
            names
        };
        let names_a = list(a);
        assert_eq!(names_a, list(b), "shard file lists differ");
        assert!(!names_a.is_empty(), "no shards produced");
        for name in &names_a {
            let bytes_a = std::fs::read(a.join(name)).expect("read shard A");
            let bytes_b = std::fs::read(b.join(name)).expect("read shard B");
            assert_eq!(bytes_a, bytes_b, "shard {name} differs");
        }
    }

    fn check_identical(config: &TraceConfig, opts: &ParGenOptions, rows_per_shard: usize) {
        let serial_dir = temp_dir("serial");
        let parallel_dir = temp_dir("parallel");
        let serial = generate_columnar(
            config,
            &GenOptions {
                threads: 1,
                shard_size: opts.shard_size,
            },
            0,
            &serial_dir,
            "req",
            rows_per_shard,
        )
        .expect("serial generation");
        let parallel =
            generate_columnar_parallel(config, opts, &parallel_dir, "req", rows_per_shard)
                .expect("parallel generation");
        assert_eq!(parallel.rows, serial.rows);
        assert_eq!(parallel.shards, serial.shards);
        assert_dirs_identical(&serial_dir, &parallel_dir);
        assert!(
            !parallel_dir.join(".runs-req").exists(),
            "run scratch directory not cleaned up"
        );
        let _ = std::fs::remove_dir_all(&serial_dir);
        let _ = std::fs::remove_dir_all(&parallel_dir);
    }

    #[test]
    fn parallel_matches_serial_small_runs_and_fanin() {
        // run_rows small enough to split tasks into multiple files, fan-in 2
        // to force several hierarchical merge levels, tiny shards to force
        // many output files and block boundaries.
        check_identical(
            &tiny_config(),
            &ParGenOptions {
                threads: 3,
                shard_size: 32,
                run_rows: 512,
                merge_fanin: 2,
            },
            1000,
        );
    }

    #[test]
    fn parallel_matches_serial_defaults() {
        check_identical(
            &tiny_config(),
            &ParGenOptions {
                threads: 2,
                shard_size: 0,
                run_rows: 0,
                merge_fanin: 0,
            },
            4096,
        );
    }

    #[test]
    fn parallel_matches_serial_multi_day() {
        let config = TraceConfig {
            multi_day: Some(MultiDayModel::corpus()),
            ..tiny_config()
        };
        check_identical(
            &config,
            &ParGenOptions {
                threads: 4,
                shard_size: 64,
                run_rows: 2048,
                merge_fanin: 3,
            },
            2000,
        );
    }

    #[test]
    fn returned_trace_has_empty_site_tables() {
        // Documented contract: unlike the serial path, the parallel path
        // drops catalogs/populations before merging and returns them empty.
        // A regression here (returning rebuilt tables) would silently undo
        // the peak-RSS guarantee at large `scale`.
        let dir = temp_dir("empty-tables");
        let config = tiny_config();
        let mut trace = generate_columnar_parallel(
            &config,
            &ParGenOptions {
                threads: 2,
                shard_size: 64,
                run_rows: 1024,
                merge_fanin: 0,
            },
            &dir,
            "req",
            2000,
        )
        .expect("parallel generation");
        assert!(trace.rows > 0, "tiny config still generates records");
        assert!(trace.shards > 0);
        assert!(
            trace.catalogs.is_empty(),
            "parallel path must not return catalogs"
        );
        assert!(
            trace.populations.is_empty(),
            "parallel path must not return populations"
        );

        // The documented escape hatch: rebuilding recreates exactly the
        // tables the serial path returns for the same config.
        trace.rebuild_site_tables();
        let serial_dir = temp_dir("empty-tables-serial");
        let serial = generate_columnar(
            &config,
            &GenOptions {
                threads: 1,
                shard_size: 64,
            },
            0,
            &serial_dir,
            "req",
            2000,
        )
        .expect("serial generation");
        assert_eq!(trace.catalogs.len(), serial.catalogs.len());
        for (rebuilt, original) in trace.catalogs.iter().zip(serial.catalogs.iter()) {
            assert_eq!(rebuilt.publisher(), original.publisher());
            assert_eq!(rebuilt.objects(), original.objects());
        }
        assert_eq!(*trace.populations, *serial.populations);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&serial_dir);
    }

    #[test]
    fn single_shard_output() {
        // Everything fits in one output shard: phase 3 runs as one block.
        check_identical(
            &tiny_config(),
            &ParGenOptions {
                threads: 2,
                shard_size: 128,
                run_rows: 4096,
                merge_fanin: 0,
            },
            0,
        );
    }

    use oat_httplog::FailAt;

    /// Smaller than `tiny_config` — the crash sweep runs many generations.
    fn crash_config() -> TraceConfig {
        TraceConfig {
            scale: 0.0015,
            catalog_scale: 0.01,
            ..TraceConfig::paper_week()
        }
    }

    fn crash_opts(threads: usize) -> ParGenOptions {
        ParGenOptions {
            threads,
            shard_size: 32,
            run_rows: 256,
            merge_fanin: 2,
        }
    }

    const CRASH_ROWS_PER_SHARD: usize = 700;

    fn serial_baseline(config: &TraceConfig) -> PathBuf {
        let dir = temp_dir("crash-baseline");
        generate_columnar(
            config,
            &GenOptions {
                threads: 1,
                shard_size: 32,
            },
            0,
            &dir,
            "req",
            CRASH_ROWS_PER_SHARD,
        )
        .expect("serial baseline");
        dir
    }

    /// The acceptance property: kill the pipeline at ANY storage
    /// operation, resume, and get a spool byte-identical to an
    /// uninterrupted serial run — at one and at several threads.
    #[test]
    fn kill_anywhere_then_resume_is_byte_identical() {
        let config = crash_config();
        let baseline = serial_baseline(&config);

        for threads in [1usize, 3] {
            let opts = crash_opts(threads);
            // Count the storage ops of an uninterrupted run to size the sweep.
            let probe_dir = temp_dir(&format!("crash-probe-{threads}"));
            let probe = Arc::new(FailAt::new(0)); // k = 0 never fails
            generate_columnar_parallel_with(
                &config,
                &opts,
                &probe_dir,
                "req",
                CRASH_ROWS_PER_SHARD,
                &ResumeOptions {
                    resume: false,
                    io: probe.clone(),
                },
            )
            .expect("probe run");
            let total_ops = probe.ops_seen();
            assert!(total_ops > 20, "expected a nontrivial op count");
            assert_dirs_identical(&baseline, &probe_dir);
            let _ = std::fs::remove_dir_all(&probe_dir);

            // Sweep failure points across the whole pipeline (step keeps
            // the test fast; endpoints and phase interiors are covered).
            let step = (total_ops / 9).max(1);
            let mut kill_points: Vec<u64> = (1..=total_ops).step_by(step as usize).collect();
            kill_points.push(total_ops); // the very last op (manifest write)
            for k in kill_points {
                let dir = temp_dir(&format!("crash-{threads}-{k}"));
                let err = generate_columnar_parallel_with(
                    &config,
                    &opts,
                    &dir,
                    "req",
                    CRASH_ROWS_PER_SHARD,
                    &ResumeOptions {
                        resume: false,
                        io: Arc::new(FailAt::new(k)),
                    },
                )
                .expect_err("injected failure must abort the run");
                drop(err);
                let resumed = generate_columnar_parallel_with(
                    &config,
                    &opts,
                    &dir,
                    "req",
                    CRASH_ROWS_PER_SHARD,
                    &ResumeOptions {
                        resume: true,
                        io: Arc::new(RealIo),
                    },
                )
                .unwrap_or_else(|e| panic!("resume after op {k} failed: {e}"));
                assert!(resumed.rows > 0);
                assert_dirs_identical(&baseline, &dir);
                assert!(
                    !dir.join(".runs-req").exists(),
                    "scratch survives resume at op {k}"
                );
                let manifest = SpoolManifest::load(&dir, "req")
                    .expect("load manifest")
                    .expect("manifest written");
                assert!(manifest.complete);
                assert_eq!(manifest.total_rows, resumed.rows);
                assert_eq!(manifest.fingerprint, config_fingerprint(&config));
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
        let _ = std::fs::remove_dir_all(&baseline);
    }

    #[test]
    fn enospc_flushes_partial_manifest_and_resume_completes() {
        let config = crash_config();
        let opts = crash_opts(1);
        let dir = temp_dir("enospc");

        // Count ops, then blow up near the end (inside phase 3 or later)
        // so some complete output shards exist when the disk "fills".
        let probe = Arc::new(FailAt::new(0));
        generate_columnar_parallel_with(
            &config,
            &opts,
            &dir,
            "req",
            CRASH_ROWS_PER_SHARD,
            &ResumeOptions {
                resume: false,
                io: probe.clone(),
            },
        )
        .expect("probe run");
        let total_ops = probe.ops_seen();
        let _ = std::fs::remove_dir_all(&dir);

        let err = generate_columnar_parallel_with(
            &config,
            &opts,
            &dir,
            "req",
            CRASH_ROWS_PER_SHARD,
            &ResumeOptions {
                resume: false,
                io: Arc::new(FailAt::enospc(total_ops - 6)),
            },
        )
        .expect_err("injected ENOSPC must abort");
        match &err {
            ColumnarGenError::Spool(HttplogError::Io(e)) => {
                assert!(oat_httplog::is_enospc(e), "ENOSPC must stay recognizable")
            }
            other => panic!("expected a spool io error, got {other:?}"),
        }
        // The partial manifest records the surviving shards, incomplete.
        let partial = SpoolManifest::load(&dir, "req")
            .expect("load partial manifest")
            .expect("partial manifest flushed on ENOSPC");
        assert!(!partial.complete);
        assert!(!partial.shards.is_empty(), "late failure leaves shards");

        let baseline = serial_baseline(&config);
        generate_columnar_parallel_with(
            &config,
            &opts,
            &dir,
            "req",
            CRASH_ROWS_PER_SHARD,
            &ResumeOptions {
                resume: true,
                io: Arc::new(RealIo),
            },
        )
        .expect("resume after ENOSPC");
        assert_dirs_identical(&baseline, &dir);
        assert!(
            SpoolManifest::load(&dir, "req")
                .expect("load")
                .expect("manifest")
                .complete
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&baseline);
    }

    #[test]
    fn mismatched_scratch_is_wiped_and_regenerated() {
        let config = crash_config();
        let opts = crash_opts(2);
        let dir = temp_dir("fp-mismatch");

        // Interrupt a run of a DIFFERENT config, leaving live scratch.
        let other = TraceConfig {
            scale: 0.003,
            ..crash_config()
        };
        generate_columnar_parallel_with(
            &other,
            &opts,
            &dir,
            "req",
            CRASH_ROWS_PER_SHARD,
            &ResumeOptions {
                resume: false,
                io: Arc::new(FailAt::new(40)),
            },
        )
        .expect_err("interrupted");
        assert!(dir.join(".runs-req").exists(), "scratch kept on error");

        // Resuming under the real config must not trust that scratch.
        let baseline = serial_baseline(&config);
        generate_columnar_parallel_with(
            &config,
            &opts,
            &dir,
            "req",
            CRASH_ROWS_PER_SHARD,
            &ResumeOptions {
                resume: true,
                io: Arc::new(RealIo),
            },
        )
        .expect("resume with different config regenerates");
        assert_dirs_identical(&baseline, &dir);

        // A stale scratch dir is also cleaned by a plain fresh start.
        let junk = dir.join(".runs-req");
        std::fs::create_dir_all(&junk).unwrap();
        std::fs::write(junk.join("leftover.col"), b"junk").unwrap();
        generate_columnar_parallel(&config, &opts, &dir, "req", CRASH_ROWS_PER_SHARD)
            .expect("fresh start over stale scratch");
        assert!(!junk.exists(), "stale scratch cleaned on fresh start");
        assert_dirs_identical(&baseline, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&baseline);
    }

    #[test]
    fn resume_heals_a_deleted_shard() {
        let config = crash_config();
        let opts = crash_opts(2);
        let dir = temp_dir("heal");
        let done = generate_columnar_parallel(&config, &opts, &dir, "req", CRASH_ROWS_PER_SHARD)
            .expect("generate");
        assert!(done.shards >= 2, "need several shards");

        // Complete manifest + all shards present: resume returns as-is.
        let again = generate_columnar_parallel_with(
            &config,
            &opts,
            &dir,
            "req",
            CRASH_ROWS_PER_SHARD,
            &ResumeOptions {
                resume: true,
                io: Arc::new(RealIo),
            },
        )
        .expect("no-op resume");
        assert_eq!((again.rows, again.shards), (done.rows, done.shards));

        // Losing a shard invalidates the certification; resume rebuilds.
        let victim = dir.join("req-000001.col");
        let saved = std::fs::read(&victim).expect("read shard");
        std::fs::remove_file(&victim).expect("delete shard");
        generate_columnar_parallel_with(
            &config,
            &opts,
            &dir,
            "req",
            CRASH_ROWS_PER_SHARD,
            &ResumeOptions {
                resume: true,
                io: Arc::new(RealIo),
            },
        )
        .expect("healing resume");
        assert_eq!(std::fs::read(&victim).expect("rebuilt"), saved);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
