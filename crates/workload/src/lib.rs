//! Synthetic adult-CDN workload generation.
//!
//! The paper's dataset — one week of HTTP logs from a commercial CDN — is
//! proprietary. This crate is the substitution (see `DESIGN.md` §1): a
//! generative model whose knobs are calibrated to every quantitative claim
//! in the paper, producing request streams with the same *shape* so the
//! analysis pipeline in `oat-core` exercises exactly the code paths it
//! would on real logs.
//!
//! The model layers:
//!
//! * [`profile`] — per-site parameters for the paper's five websites
//!   (V-1, V-2, P-1, P-2, S-1), each number anchored to a paper statement.
//! * [`catalog`] — object catalogs with Zipf popularity, bi-modal image /
//!   heavy video sizes, staggered injection, and planted temporal trends.
//! * [`trendspec`] / [`temporal`] — diurnal site curves (V-1 peaks
//!   late-night) and per-object envelopes (diurnal / long-lived /
//!   short-lived / flash-crowd / outlier).
//! * [`users`] — populations with regions/timezones (4 continents), device
//!   mixes, real user-agent strings, incognito browsing, heavy-tailed
//!   activity.
//! * [`generator`] — sessions, inter-arrival gaps, video chunking,
//!   addiction (repeat views), browser-cache revalidation, hot-link and
//!   bad-range failures — generated on sharded per-user RNG streams so the
//!   trace is byte-identical at any thread count.
//! * [`merge`] — the k-way heap merge combining per-shard sorted output
//!   into one time-sorted [`Request`] stream (batch or streaming).
//!
//! [`Request`]: oat_httplog::Request
//!
//! # Example
//!
//! ```
//! use oat_workload::{generate, TraceConfig};
//!
//! let config = TraceConfig::small().with_scale(0.002).with_catalog_scale(0.005);
//! let trace = generate(&config)?;
//! assert!(!trace.requests.is_empty());
//! # Ok::<(), oat_workload::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod dist;
pub mod generator;
pub mod merge;
pub mod pargen;
pub mod profile;
pub mod temporal;
pub mod trendspec;
pub mod users;

pub use catalog::{Catalog, CatalogObject};
pub use generator::{
    generate, generate_columnar, generate_streaming, generate_with, ColumnarGenError,
    ColumnarTrace, ConfigError, GenOptions, MultiDayModel, Trace, TraceConfig, TraceStream,
    CHUNK_BYTES, DEFAULT_BATCH_SIZE, DEFAULT_SHARD_SIZE,
};
pub use pargen::{
    config_fingerprint, generate_columnar_parallel, generate_columnar_parallel_with, ParGenOptions,
    ResumeOptions, DEFAULT_MERGE_FANIN, DEFAULT_RUN_ROWS,
};
pub use profile::{ClassParams, SiteProfile, SizeModel, TrendMix};
pub use temporal::DiurnalCurve;
pub use trendspec::TrendSpec;
pub use users::UserProfile;
