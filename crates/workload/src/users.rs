//! Synthetic user populations.

use crate::profile::SiteProfile;
use oat_httplog::{Region, UserId};
use oat_useragent::{DeviceCategory, UaCorpus};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One synthetic visitor of one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Anonymized user id carried in log records.
    pub id: UserId,
    /// Home region (drives PoP routing and local time).
    pub region: Region,
    /// UTC offset of the user's local timezone, seconds.
    pub tz_offset_secs: i32,
    /// Device category (fixed per user, as per the paper's per-user device
    /// attribution).
    pub device: DeviceCategory,
    /// The user-agent string this user's browser sends.
    pub user_agent: String,
    /// Whether the user browses in incognito/private mode.
    pub incognito: bool,
    /// Relative activity multiplier (heavy-tailed).
    pub activity: f64,
}

/// Builds a population of `n` users for `profile`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn build_population<R: Rng + ?Sized>(
    profile: &SiteProfile,
    n: usize,
    rng: &mut R,
) -> Vec<UserProfile> {
    assert!(n > 0, "population must contain at least one user");
    let corpus = UaCorpus::new();
    (0..n)
        .map(|_| {
            let region = sample_region(profile, rng);
            let offsets = region.utc_offsets_secs();
            let tz_offset_secs = offsets[rng.gen_range(0..offsets.len())];
            let (device, user_agent) = corpus.generate_mixed(&profile.devices, rng);
            // Log-normal-ish activity: most users light, a few heavy.
            let activity = (-2.0f64 * rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln()).sqrt()
                * rng.gen_range(0.5..1.5);
            UserProfile {
                id: UserId::new(rng.gen()),
                region,
                tz_offset_secs,
                device,
                user_agent,
                incognito: rng.gen::<f64>() < profile.incognito_rate,
                activity: activity.max(0.1),
            }
        })
        .collect()
}

fn sample_region<R: Rng + ?Sized>(profile: &SiteProfile, rng: &mut R) -> Region {
    let total: f64 = profile.region_weights.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen::<f64>() * total;
    for &(region, w) in &profile.region_weights {
        if x < w {
            return region;
        }
        x -= w;
    }
    profile.region_weights[0].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_population_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = build_population(&SiteProfile::v1(), 0, &mut rng);
    }

    #[test]
    fn population_matches_device_mix() {
        let mut rng = StdRng::seed_from_u64(1);
        let users = build_population(&SiteProfile::v2(), 20_000, &mut rng);
        let desktop = users
            .iter()
            .filter(|u| u.device == DeviceCategory::Desktop)
            .count() as f64
            / 20_000.0;
        assert!(desktop > 0.94, "V-2 desktop share {desktop}");
    }

    #[test]
    fn ua_strings_parse_back_to_device() {
        let mut rng = StdRng::seed_from_u64(2);
        let users = build_population(&SiteProfile::s1(), 2_000, &mut rng);
        for u in &users {
            assert_eq!(oat_useragent::parse(&u.user_agent).device, u.device);
        }
    }

    #[test]
    fn tz_offsets_belong_to_region() {
        let mut rng = StdRng::seed_from_u64(3);
        let users = build_population(&SiteProfile::p1(), 5_000, &mut rng);
        for u in &users {
            assert!(u.region.utc_offsets_secs().contains(&u.tz_offset_secs));
        }
    }

    #[test]
    fn incognito_rate_approximated() {
        let mut rng = StdRng::seed_from_u64(4);
        let users = build_population(&SiteProfile::v1(), 20_000, &mut rng);
        let incog = users.iter().filter(|u| u.incognito).count() as f64 / 20_000.0;
        assert!((incog - SiteProfile::v1().incognito_rate).abs() < 0.02);
    }

    #[test]
    fn user_ids_unique_and_activity_positive() {
        let mut rng = StdRng::seed_from_u64(5);
        let users = build_population(&SiteProfile::p2(), 10_000, &mut rng);
        let ids: std::collections::HashSet<_> = users.iter().map(|u| u.id).collect();
        assert_eq!(ids.len(), 10_000);
        assert!(users.iter().all(|u| u.activity > 0.0));
        // Heavy tail: some users are several times the median.
        let mut acts: Vec<f64> = users.iter().map(|u| u.activity).collect();
        acts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(acts[9_999] > 2.0 * acts[5_000]);
    }

    #[test]
    fn all_regions_represented() {
        let mut rng = StdRng::seed_from_u64(6);
        let users = build_population(&SiteProfile::v1(), 5_000, &mut rng);
        let regions: std::collections::HashSet<_> = users.iter().map(|u| u.region).collect();
        assert_eq!(regions.len(), 4);
    }
}
