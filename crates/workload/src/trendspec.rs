//! Per-object popularity-trend envelopes (the generative side of the
//! paper's Figures 8–10 clusters).

use crate::temporal::DiurnalCurve;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Seconds per hour.
const HOUR: f64 = 3600.0;

/// The generative envelope an object's request intensity follows.
///
/// `intensity(t, local_hour)` returns a relative rate in `[0, ~2]`; `t` is
/// seconds since the object's injection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrendSpec {
    /// Persistent front-page style access modulated by the site's day/night
    /// cycle for the whole trace.
    Diurnal {
        /// Day/night modulation depth, `0..=1`.
        amplitude: f64,
        /// Peak local hour of this object's audience.
        peak_hour: f64,
    },
    /// Peaks on injection and decays with time constant `decay_hours`,
    /// modulated diurnally (dies after a few days).
    LongLived {
        /// Exponential decay time constant, in hours.
        decay_hours: f64,
        /// Day/night modulation depth.
        amplitude: f64,
        /// Peak local hour.
        peak_hour: f64,
    },
    /// Peaks on injection and dies within hours.
    ShortLived {
        /// Exponential decay time constant, in hours (small).
        decay_hours: f64,
    },
    /// Dormant until a sudden spike `spike_after_hours` past injection.
    FlashCrowd {
        /// Hours after injection at which the spike occurs.
        spike_after_hours: f64,
        /// Gaussian spike width, in hours.
        width_hours: f64,
    },
    /// Irregular: a few random bumps (the paper's "outliers").
    Outlier {
        /// Bump centres, hours after injection (up to 3 used).
        bumps: [f64; 3],
        /// Shared bump width, hours.
        width_hours: f64,
    },
}

impl TrendSpec {
    /// Relative request intensity at `t_secs` after injection, when the
    /// requesting audience's local hour is `local_hour`.
    pub fn intensity(&self, t_secs: f64, local_hour: f64) -> f64 {
        if t_secs < 0.0 {
            return 0.0;
        }
        match *self {
            TrendSpec::Diurnal {
                amplitude,
                peak_hour,
            } => DiurnalCurve::new(peak_hour, amplitude).intensity(local_hour),
            TrendSpec::LongLived {
                decay_hours,
                amplitude,
                peak_hour,
            } => {
                let decay = (-t_secs / (decay_hours * HOUR)).exp();
                decay * DiurnalCurve::new(peak_hour, amplitude).intensity(local_hour)
            }
            TrendSpec::ShortLived { decay_hours } => (-t_secs / (decay_hours * HOUR)).exp(),
            TrendSpec::FlashCrowd {
                spike_after_hours,
                width_hours,
            } => {
                let d = (t_secs / HOUR - spike_after_hours) / width_hours;
                (-0.5 * d * d).exp()
            }
            TrendSpec::Outlier { bumps, width_hours } => bumps
                .iter()
                .map(|&b| {
                    let d = (t_secs / HOUR - b) / width_hours;
                    (-0.5 * d * d).exp()
                })
                .fold(0.0f64, f64::max),
        }
    }

    /// A loose upper bound on [`TrendSpec::intensity`], used for
    /// acceptance-rejection sampling.
    pub fn max_intensity(&self) -> f64 {
        match *self {
            TrendSpec::Diurnal { amplitude, .. } | TrendSpec::LongLived { amplitude, .. } => {
                1.0 + amplitude.clamp(0.0, 1.0)
            }
            _ => 1.0,
        }
    }

    /// The trend-class label this spec realizes (ground truth for
    /// clustering validation).
    pub fn class(&self) -> oat_timeseries::TrendClass {
        use oat_timeseries::TrendClass;
        match self {
            TrendSpec::Diurnal { .. } => TrendClass::Diurnal,
            TrendSpec::LongLived { .. } => TrendClass::LongLived,
            TrendSpec::ShortLived { .. } => TrendClass::ShortLived,
            TrendSpec::FlashCrowd { .. } => TrendClass::FlashCrowd,
            TrendSpec::Outlier { .. } => TrendClass::Outlier,
        }
    }

    /// Samples a randomized spec of the given class.
    ///
    /// `site_peak_hour` anchors diurnal phases near the site's own peak;
    /// `trace_hours` bounds flash-crowd/outlier bump positions.
    pub fn sample<R: Rng + ?Sized>(
        class: oat_timeseries::TrendClass,
        site_peak_hour: f64,
        trace_hours: f64,
        rng: &mut R,
    ) -> Self {
        use oat_timeseries::TrendClass;
        match class {
            TrendClass::Diurnal => TrendSpec::Diurnal {
                amplitude: rng.gen_range(0.5..0.95),
                peak_hour: site_peak_hour + rng.gen_range(-2.0..2.0),
            },
            TrendClass::LongLived => TrendSpec::LongLived {
                decay_hours: rng.gen_range(20.0..40.0),
                amplitude: rng.gen_range(0.3..0.7),
                peak_hour: site_peak_hour + rng.gen_range(-3.0..3.0),
            },
            TrendClass::ShortLived => TrendSpec::ShortLived {
                decay_hours: rng.gen_range(2.0..6.0),
            },
            TrendClass::FlashCrowd => TrendSpec::FlashCrowd {
                spike_after_hours: rng.gen_range(30.0..(trace_hours - 24.0).max(31.0)),
                width_hours: rng.gen_range(1.5..4.0),
            },
            TrendClass::Outlier => {
                let hi = trace_hours.max(10.0);
                TrendSpec::Outlier {
                    bumps: [
                        rng.gen_range(0.0..hi),
                        rng.gen_range(0.0..hi),
                        rng.gen_range(0.0..hi),
                    ],
                    width_hours: rng.gen_range(3.0..10.0),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_timeseries::TrendClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn negative_time_is_zero() {
        let spec = TrendSpec::ShortLived { decay_hours: 3.0 };
        assert_eq!(spec.intensity(-1.0, 12.0), 0.0);
    }

    #[test]
    fn short_lived_decays() {
        let spec = TrendSpec::ShortLived { decay_hours: 3.0 };
        let early = spec.intensity(0.0, 12.0);
        let later = spec.intensity(12.0 * 3600.0, 12.0);
        assert!(early > 0.9);
        assert!(later < 0.05);
    }

    #[test]
    fn long_lived_outlasts_short() {
        let long = TrendSpec::LongLived {
            decay_hours: 30.0,
            amplitude: 0.0,
            peak_hour: 0.0,
        };
        let short = TrendSpec::ShortLived { decay_hours: 4.0 };
        let t = 24.0 * 3600.0;
        assert!(long.intensity(t, 0.0) > short.intensity(t, 0.0) * 10.0);
    }

    #[test]
    fn diurnal_persists_and_oscillates() {
        let spec = TrendSpec::Diurnal {
            amplitude: 0.8,
            peak_hour: 2.0,
        };
        let after_six_days = 6.0 * 86_400.0;
        assert!(spec.intensity(after_six_days, 2.0) > 1.5);
        assert!(spec.intensity(after_six_days, 14.0) < 0.5);
    }

    #[test]
    fn flash_crowd_spikes_at_configured_time() {
        let spec = TrendSpec::FlashCrowd {
            spike_after_hours: 50.0,
            width_hours: 2.0,
        };
        assert!(spec.intensity(50.0 * 3600.0, 0.0) > 0.99);
        assert!(spec.intensity(10.0 * 3600.0, 0.0) < 1e-10);
        assert!(spec.intensity(90.0 * 3600.0, 0.0) < 1e-10);
    }

    #[test]
    fn outlier_bumps_nonzero() {
        let spec = TrendSpec::Outlier {
            bumps: [5.0, 50.0, 100.0],
            width_hours: 4.0,
        };
        for b in [5.0, 50.0, 100.0] {
            assert!(spec.intensity(b * 3600.0, 0.0) > 0.99);
        }
    }

    #[test]
    fn intensity_bounded_by_max() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in [
            TrendClass::Diurnal,
            TrendClass::LongLived,
            TrendClass::ShortLived,
            TrendClass::FlashCrowd,
            TrendClass::Outlier,
        ] {
            let spec = TrendSpec::sample(class, 3.0, 168.0, &mut rng);
            assert_eq!(spec.class(), class);
            let max = spec.max_intensity();
            for t in 0..200 {
                for h in 0..24 {
                    let i = spec.intensity(t as f64 * 3600.0, h as f64);
                    assert!(i <= max + 1e-9, "{class:?}: intensity {i} > max {max}");
                    assert!(i >= 0.0);
                }
            }
        }
    }
}
