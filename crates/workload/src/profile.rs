//! Site profiles: the generative parameters for the paper's five websites.
//!
//! Every number here is anchored to a statement in the paper (§III–IV):
//! catalog sizes from Figure 1's caption, content mixes from Figures 1–2,
//! device mixes from Figure 4, size models from Figure 5, temporal phases
//! from Figure 3, trend mixtures from Figure 8, and engagement parameters
//! from Figures 11–14.

use crate::dist::LogNormal;
use crate::temporal::DiurnalCurve;
use oat_httplog::{ContentClass, PublisherId, Region};
use oat_timeseries::TrendClass;
use oat_useragent::DeviceMix;
use serde::{Deserialize, Serialize};

/// A mixture of object sizes: one or two log-normal modes.
///
/// Image sizes in the paper are bi-modal (thumbnails vs full-resolution,
/// Fig 5b); video sizes are uni-modal and large.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeModel {
    /// Primary mode.
    pub primary: LogNormal,
    /// Optional secondary mode with its mixture weight (`0..=1`).
    pub secondary: Option<(LogNormal, f64)>,
    /// Hard lower bound applied after sampling, bytes.
    pub min_bytes: u64,
    /// Hard upper bound applied after sampling, bytes.
    pub max_bytes: u64,
}

impl SizeModel {
    /// Single log-normal mode.
    pub fn unimodal(median_bytes: f64, sigma: f64, min: u64, max: u64) -> Self {
        Self {
            primary: LogNormal::from_median(median_bytes, sigma).expect("valid size model"),
            secondary: None,
            min_bytes: min,
            max_bytes: max,
        }
    }

    /// Two modes; `secondary_weight` is the probability of the second mode.
    pub fn bimodal(
        median_a: f64,
        sigma_a: f64,
        median_b: f64,
        sigma_b: f64,
        secondary_weight: f64,
        min: u64,
        max: u64,
    ) -> Self {
        Self {
            primary: LogNormal::from_median(median_a, sigma_a).expect("valid size model"),
            secondary: Some((
                LogNormal::from_median(median_b, sigma_b).expect("valid size model"),
                secondary_weight.clamp(0.0, 1.0),
            )),
            min_bytes: min,
            max_bytes: max,
        }
    }

    /// Draws one object size in bytes.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let raw = match self.secondary {
            Some((ref second, w)) if rng.gen::<f64>() < w => second.sample(rng),
            _ => self.primary.sample(rng),
        };
        (raw as u64).clamp(self.min_bytes, self.max_bytes)
    }
}

/// Mixture of [`TrendClass`]es for a site's objects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrendMix {
    /// Weight of persistent diurnal objects.
    pub diurnal: f64,
    /// Weight of long-lived objects.
    pub long_lived: f64,
    /// Weight of short-lived objects.
    pub short_lived: f64,
    /// Weight of flash-crowd objects.
    pub flash_crowd: f64,
    /// Weight of irregular outliers.
    pub outlier: f64,
}

impl TrendMix {
    /// Samples a class according to the (normalized) weights.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> TrendClass {
        let weights = [
            (TrendClass::Diurnal, self.diurnal),
            (TrendClass::LongLived, self.long_lived),
            (TrendClass::ShortLived, self.short_lived),
            (TrendClass::FlashCrowd, self.flash_crowd),
            (TrendClass::Outlier, self.outlier),
        ];
        let total: f64 = weights.iter().map(|(_, w)| w.max(0.0)).sum();
        let mut x = rng.gen::<f64>() * total.max(f64::MIN_POSITIVE);
        for (class, w) in weights {
            let w = w.max(0.0);
            if x < w {
                return class;
            }
            x -= w;
        }
        TrendClass::Diurnal
    }
}

/// Per-content-class generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassParams {
    /// Fraction of the catalog that is this class.
    pub catalog_fraction: f64,
    /// Relative per-object request attractiveness multiplier (lets V-2's
    /// GIF previews draw many requests despite video's larger catalog
    /// weight, Fig 2a).
    pub request_boost: f64,
    /// Size model for objects of this class.
    pub sizes: SizeModel,
}

/// Complete generative profile of one adult website.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteProfile {
    /// Site code, e.g. `"V-1"`.
    pub code: String,
    /// Publisher id used in emitted records.
    pub publisher: PublisherId,
    /// Number of distinct objects on CDN servers (Fig 1 caption), before
    /// scaling.
    pub catalog_size: usize,
    /// Target total requests over the trace (Fig 2a), before scaling.
    pub request_volume: u64,
    /// Per-class catalog/request/size parameters.
    pub video: ClassParams,
    /// Image parameters.
    pub image: ClassParams,
    /// Other-content parameters.
    pub other: ClassParams,
    /// Zipf popularity skew over the catalog (Fig 6).
    pub zipf_alpha: f64,
    /// Trend-class mixture (Fig 8).
    pub trend_mix: TrendMix,
    /// Site-level diurnal curve in visitor-local time (Fig 3).
    pub diurnal: DiurnalCurve,
    /// Device mix (Fig 4).
    pub devices: DeviceMix,
    /// Relative visitor weight per region (4 continents, §III).
    pub region_weights: [(Region, f64); 4],
    /// Mean sessions per user over the week.
    pub sessions_per_user: f64,
    /// Mean requests per session (before video chunk expansion).
    pub requests_per_session: f64,
    /// Median within-session inter-request gap, seconds (Fig 11/12).
    pub within_iat_median_secs: f64,
    /// Log-normal sigma of within-session gaps.
    pub within_iat_sigma: f64,
    /// Probability a session request re-targets one of the user's favorite
    /// objects (addiction, Fig 13/14).
    pub repeat_affinity: f64,
    /// Fraction of visitors browsing in incognito/private mode (§V).
    pub incognito_rate: f64,
    /// Fraction of the catalog already live at trace start; the remainder
    /// is injected uniformly over the trace (Fig 7).
    pub preexisting_fraction: f64,
    /// Probability that a non-incognito repeat view sends a conditional
    /// request (browser-cache revalidation → 304).
    pub revalidate_rate: f64,
    /// Probability of a hot-link/expired-token request (→ 403).
    pub hotlink_rate: f64,
    /// Probability of an invalid range request (→ 416).
    pub bad_range_rate: f64,
}

impl SiteProfile {
    /// Fractions `(video, image, other)` of the catalog.
    pub fn catalog_mix(&self) -> (f64, f64, f64) {
        (
            self.video.catalog_fraction,
            self.image.catalog_fraction,
            self.other.catalog_fraction,
        )
    }

    /// The [`ClassParams`] for a content class.
    pub fn class_params(&self, class: ContentClass) -> &ClassParams {
        match class {
            ContentClass::Video => &self.video,
            ContentClass::Image => &self.image,
            ContentClass::Other => &self.other,
        }
    }

    /// **V-1** — YouTube-style adult video site. 6.6 K objects, 98 % video;
    /// video dominates requests (3.1 M) and bytes (258 GB); traffic peaks
    /// late-night/early-morning — opposite the classic web peak (Fig 3).
    pub fn v1() -> Self {
        Self {
            code: "V-1".to_string(),
            publisher: PublisherId::new(1),
            catalog_size: 6_600,
            request_volume: 3_200_000,
            video: ClassParams {
                catalog_fraction: 0.98,
                request_boost: 1.0,
                sizes: SizeModel::unimodal(12e6, 1.0, 500_000, 800_000_000),
            },
            image: ClassParams {
                catalog_fraction: 0.015,
                request_boost: 0.5,
                sizes: SizeModel::bimodal(30e3, 0.7, 500e3, 0.6, 0.35, 2_000, 2_000_000),
            },
            other: ClassParams {
                catalog_fraction: 0.005,
                request_boost: 0.3,
                sizes: SizeModel::unimodal(20e3, 1.0, 200, 1_000_000),
            },
            zipf_alpha: 0.9,
            trend_mix: TrendMix {
                diurnal: 0.35,
                long_lived: 0.25,
                short_lived: 0.20,
                flash_crowd: 0.0,
                outlier: 0.20,
            },
            diurnal: DiurnalCurve::new(2.0, 0.65),
            devices: DeviceMix::new(0.78, 0.10, 0.07, 0.05).expect("valid mix"),
            region_weights: [
                (Region::NorthAmerica, 0.45),
                (Region::Europe, 0.35),
                (Region::Asia, 0.12),
                (Region::SouthAmerica, 0.08),
            ],
            sessions_per_user: 2.5,
            requests_per_session: 3.0, // object views; chunks expand these
            within_iat_median_secs: 45.0,
            within_iat_sigma: 1.1,
            repeat_affinity: 0.35,
            incognito_rate: 0.75,
            preexisting_fraction: 0.55,
            revalidate_rate: 0.6,
            hotlink_rate: 0.015,
            bad_range_rate: 0.004,
        }
    }

    /// **V-2** — video site with GIF hover-previews. 55.6 K objects, 84 %
    /// image / 15 % video; image requests (657 K) outnumber video requests
    /// (359 K) but video still dominates bytes (Fig 2).
    pub fn v2() -> Self {
        Self {
            code: "V-2".to_string(),
            publisher: PublisherId::new(2),
            catalog_size: 55_600,
            request_volume: 1_060_000,
            video: ClassParams {
                catalog_fraction: 0.15,
                // Calibrated so that after chunk expansion (~1.8 records per
                // view with progressive downloads), record shares land at
                // Fig 2a's 34 % video / 62 % image.
                request_boost: 0.85,
                sizes: SizeModel::unimodal(7e6, 1.0, 300_000, 400_000_000),
            },
            image: ClassParams {
                catalog_fraction: 0.84,
                request_boost: 0.78,
                // GIF previews are hefty; thumbnails small.
                sizes: SizeModel::bimodal(40e3, 0.7, 700e3, 0.7, 0.45, 2_000, 8_000_000),
            },
            other: ClassParams {
                catalog_fraction: 0.01,
                request_boost: 2.8,
                sizes: SizeModel::unimodal(25e3, 1.0, 200, 1_000_000),
            },
            zipf_alpha: 0.8,
            // Figure 8(a): outliers 33 %, long-lived 22 %, short-lived 20 %,
            // diurnal-A 11 %, diurnal-B 14 %.
            trend_mix: TrendMix {
                diurnal: 0.25,
                long_lived: 0.22,
                short_lived: 0.20,
                flash_crowd: 0.0,
                outlier: 0.33,
            },
            diurnal: DiurnalCurve::new(23.0, 0.3),
            devices: DeviceMix::new(0.96, 0.02, 0.01, 0.01).expect("valid mix"),
            region_weights: [
                (Region::Europe, 0.45),
                (Region::NorthAmerica, 0.35),
                (Region::Asia, 0.12),
                (Region::SouthAmerica, 0.08),
            ],
            sessions_per_user: 2.2,
            requests_per_session: 6.0,
            within_iat_median_secs: 25.0,
            within_iat_sigma: 1.2,
            repeat_affinity: 0.25,
            incognito_rate: 0.7,
            preexisting_fraction: 0.5,
            revalidate_rate: 0.55,
            hotlink_rate: 0.02,
            bad_range_rate: 0.002,
        }
    }

    /// **P-1** — image-heavy site. 16.3 K objects, 99 % image, 719 K image
    /// requests; visitors' request inter-arrival times are long (Fig 11).
    pub fn p1() -> Self {
        Self {
            code: "P-1".to_string(),
            publisher: PublisherId::new(3),
            catalog_size: 16_300,
            request_volume: 740_000,
            video: ClassParams {
                catalog_fraction: 0.004,
                request_boost: 0.8,
                sizes: SizeModel::unimodal(5e6, 0.9, 200_000, 100_000_000),
            },
            image: ClassParams {
                catalog_fraction: 0.99,
                request_boost: 1.0,
                sizes: SizeModel::bimodal(25e3, 0.6, 600e3, 0.6, 0.4, 1_500, 4_000_000),
            },
            other: ClassParams {
                catalog_fraction: 0.006,
                request_boost: 0.6,
                sizes: SizeModel::unimodal(15e3, 1.0, 200, 500_000),
            },
            zipf_alpha: 0.85,
            trend_mix: TrendMix {
                diurnal: 0.5,
                long_lived: 0.3,
                short_lived: 0.14,
                flash_crowd: 0.0,
                outlier: 0.06,
            },
            diurnal: DiurnalCurve::new(22.0, 0.3),
            devices: DeviceMix::new(0.72, 0.14, 0.07, 0.07).expect("valid mix"),
            region_weights: [
                (Region::NorthAmerica, 0.4),
                (Region::Europe, 0.33),
                (Region::Asia, 0.17),
                (Region::SouthAmerica, 0.1),
            ],
            sessions_per_user: 3.5,
            requests_per_session: 1.3,
            within_iat_median_secs: 30.0,
            within_iat_sigma: 1.0,
            repeat_affinity: 0.08,
            incognito_rate: 0.72,
            preexisting_fraction: 0.55,
            revalidate_rate: 0.6,
            hotlink_rate: 0.02,
            bad_range_rate: 0.0005,
        }
    }

    /// **P-2** — image-heavy site with the *largest* video objects (Fig 5a)
    /// and a flash-crowd cluster (Fig 8b: diurnal 61 %, long-lived 25 %,
    /// flash-crowd 14 %).
    pub fn p2() -> Self {
        Self {
            code: "P-2".to_string(),
            publisher: PublisherId::new(4),
            catalog_size: 29_600,
            request_volume: 185_000,
            video: ClassParams {
                catalog_fraction: 0.006,
                request_boost: 1.2,
                sizes: SizeModel::unimodal(60e6, 0.9, 4_000_000, 2_000_000_000),
            },
            image: ClassParams {
                catalog_fraction: 0.99,
                request_boost: 1.0,
                sizes: SizeModel::bimodal(20e3, 0.6, 500e3, 0.7, 0.35, 1_500, 4_000_000),
            },
            other: ClassParams {
                catalog_fraction: 0.004,
                request_boost: 0.6,
                sizes: SizeModel::unimodal(15e3, 1.0, 200, 500_000),
            },
            zipf_alpha: 0.8,
            trend_mix: TrendMix {
                diurnal: 0.61,
                long_lived: 0.25,
                short_lived: 0.0,
                flash_crowd: 0.14,
                outlier: 0.0,
            },
            diurnal: DiurnalCurve::new(22.5, 0.28),
            devices: DeviceMix::new(0.73, 0.13, 0.07, 0.07).expect("valid mix"),
            region_weights: [
                (Region::Europe, 0.4),
                (Region::NorthAmerica, 0.32),
                (Region::Asia, 0.18),
                (Region::SouthAmerica, 0.1),
            ],
            sessions_per_user: 3.0,
            requests_per_session: 1.3,
            within_iat_median_secs: 35.0,
            within_iat_sigma: 1.0,
            repeat_affinity: 0.07,
            incognito_rate: 0.7,
            preexisting_fraction: 0.6,
            revalidate_rate: 0.6,
            hotlink_rate: 0.025,
            bad_range_rate: 0.0008,
        }
    }

    /// **S-1** — adult social network. 22.9 K objects, 99 % image; more
    /// than a third of visitors arrive from smartphones/misc devices
    /// (Fig 4).
    pub fn s1() -> Self {
        Self {
            code: "S-1".to_string(),
            publisher: PublisherId::new(5),
            catalog_size: 22_900,
            request_volume: 240_000,
            video: ClassParams {
                catalog_fraction: 0.003,
                request_boost: 0.8,
                sizes: SizeModel::unimodal(4e6, 0.9, 200_000, 80_000_000),
            },
            image: ClassParams {
                catalog_fraction: 0.99,
                request_boost: 1.0,
                sizes: SizeModel::bimodal(18e3, 0.6, 350e3, 0.7, 0.4, 1_000, 3_000_000),
            },
            other: ClassParams {
                catalog_fraction: 0.007,
                request_boost: 0.9,
                sizes: SizeModel::unimodal(12e3, 1.0, 200, 400_000),
            },
            zipf_alpha: 0.75,
            trend_mix: TrendMix {
                diurnal: 0.45,
                long_lived: 0.27,
                short_lived: 0.18,
                flash_crowd: 0.0,
                outlier: 0.10,
            },
            diurnal: DiurnalCurve::new(21.0, 0.25),
            devices: DeviceMix::new(0.63, 0.19, 0.08, 0.10).expect("valid mix"),
            region_weights: [
                (Region::NorthAmerica, 0.38),
                (Region::Europe, 0.32),
                (Region::Asia, 0.2),
                (Region::SouthAmerica, 0.1),
            ],
            sessions_per_user: 4.0,
            requests_per_session: 1.35,
            within_iat_median_secs: 25.0,
            within_iat_sigma: 1.0,
            repeat_affinity: 0.12,
            incognito_rate: 0.6,
            preexisting_fraction: 0.55,
            revalidate_rate: 0.65,
            hotlink_rate: 0.015,
            bad_range_rate: 0.0005,
        }
    }

    /// All five paper sites, in reporting order.
    pub fn paper_five() -> Vec<SiteProfile> {
        vec![Self::v1(), Self::v2(), Self::p1(), Self::p2(), Self::s1()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_five_distinct_publishers() {
        let sites = SiteProfile::paper_five();
        assert_eq!(sites.len(), 5);
        let ids: std::collections::HashSet<_> = sites.iter().map(|s| s.publisher).collect();
        assert_eq!(ids.len(), 5);
        let codes: Vec<_> = sites.iter().map(|s| s.code.as_str()).collect();
        assert_eq!(codes, vec!["V-1", "V-2", "P-1", "P-2", "S-1"]);
    }

    #[test]
    fn catalog_mixes_sum_to_one() {
        for site in SiteProfile::paper_five() {
            let (v, i, o) = site.catalog_mix();
            assert!(
                ((v + i + o) - 1.0).abs() < 1e-9,
                "{}: mix sums to {}",
                site.code,
                v + i + o
            );
        }
    }

    #[test]
    fn paper_anchor_v1_video_dominates() {
        let v1 = SiteProfile::v1();
        assert!(v1.video.catalog_fraction >= 0.95);
    }

    #[test]
    fn paper_anchor_v2_image_heavy_catalog() {
        let v2 = SiteProfile::v2();
        assert!((v2.image.catalog_fraction - 0.84).abs() < 0.01);
        assert!((v2.video.catalog_fraction - 0.15).abs() < 0.01);
    }

    #[test]
    fn paper_anchor_devices() {
        assert!(SiteProfile::v2().devices.desktop() > 0.95);
        let s1 = SiteProfile::s1();
        let mobile_misc = s1.devices.android() + s1.devices.ios() + s1.devices.misc();
        assert!(mobile_misc > 1.0 / 3.0);
        for site in SiteProfile::paper_five() {
            assert!(
                site.devices.desktop() > 0.5,
                "{} is desktop-majority",
                site.code
            );
        }
    }

    #[test]
    fn paper_anchor_v1_peaks_late_night() {
        let v1 = SiteProfile::v1();
        assert!(v1.diurnal.peak_hour() < 6.0);
        // V-1 has the most pronounced variation.
        for other in [
            SiteProfile::v2(),
            SiteProfile::p1(),
            SiteProfile::p2(),
            SiteProfile::s1(),
        ] {
            assert!(v1.diurnal.amplitude() > other.diurnal.amplitude());
        }
    }

    #[test]
    fn paper_anchor_p2_largest_videos() {
        let p2_median = SiteProfile::p2().video.sizes.primary.median();
        for site in [
            SiteProfile::v1(),
            SiteProfile::v2(),
            SiteProfile::p1(),
            SiteProfile::s1(),
        ] {
            assert!(p2_median > site.video.sizes.primary.median());
        }
    }

    #[test]
    fn size_models_sample_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for site in SiteProfile::paper_five() {
            for params in [&site.video, &site.image, &site.other] {
                for _ in 0..500 {
                    let s = params.sizes.sample(&mut rng);
                    assert!(s >= params.sizes.min_bytes);
                    assert!(s <= params.sizes.max_bytes);
                }
            }
        }
    }

    #[test]
    fn image_sizes_bimodal_on_average() {
        // Images must show both a thumbnail and a full-size mode.
        let model = SiteProfile::p1().image.sizes;
        let mut rng = StdRng::seed_from_u64(2);
        let (mut small, mut large) = (0u32, 0u32);
        for _ in 0..10_000 {
            let s = model.sample(&mut rng);
            if s < 100_000 {
                small += 1;
            } else if s > 200_000 {
                large += 1;
            }
        }
        assert!(small > 2_000, "thumbnail mode missing: {small}");
        assert!(large > 2_000, "full-size mode missing: {large}");
    }

    #[test]
    fn trend_mix_sampling_respects_zero_weights() {
        let mix = SiteProfile::p2().trend_mix;
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(mix.sample(&mut rng)).or_insert(0u32) += 1;
        }
        assert!(!counts.contains_key(&TrendClass::ShortLived));
        assert!(!counts.contains_key(&TrendClass::Outlier));
        let diurnal_share = counts[&TrendClass::Diurnal] as f64 / 10_000.0;
        assert!(
            (diurnal_share - 0.61).abs() < 0.03,
            "diurnal share {diurnal_share}"
        );
        assert!(counts[&TrendClass::FlashCrowd] > 1_000);
    }

    #[test]
    fn video_sites_have_shorter_within_iat_profile() {
        // Engagement anchor for Fig 11: video browsing is burstier.
        let v1 = SiteProfile::v1();
        let p1 = SiteProfile::p1();
        assert!(v1.requests_per_session > p1.requests_per_session);
        assert!(v1.repeat_affinity > p1.repeat_affinity);
    }

    #[test]
    fn region_weights_cover_four_continents() {
        for site in SiteProfile::paper_five() {
            let regions: std::collections::HashSet<_> =
                site.region_weights.iter().map(|(r, _)| *r).collect();
            assert_eq!(regions.len(), 4, "{}", site.code);
            let total: f64 = site.region_weights.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }
}
