//! Temporal intensity models: site-level diurnal curves and per-object
//! popularity-trend envelopes.
//!
//! The paper's key temporal findings (Figures 3, 8–10) are *generated* here
//! and *recovered* by `oat-core`'s analyzers:
//!
//! * Site-level access is diurnal in the visitor's local time, with V-1
//!   peaking in late-night/early-morning hours — opposite the classic
//!   7–11 pm web peak.
//! * Individual objects follow diurnal, long-lived, short-lived or
//!   flash-crowd envelopes (plus irregular outliers).

use serde::{Deserialize, Serialize};

/// A 24-hour sinusoidal intensity curve in *local* time.
///
/// `intensity(h)` is `1 + amplitude · cos(2π (h − peak_hour) / 24)`,
/// always ≥ 0 (amplitude is clamped to `[0, 1]`), maximal at `peak_hour`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCurve {
    peak_hour: f64,
    amplitude: f64,
}

impl DiurnalCurve {
    /// Creates a curve peaking at `peak_hour` (0–24, wrapped) with relative
    /// `amplitude` (clamped to `[0, 1]`; 0 = flat).
    pub fn new(peak_hour: f64, amplitude: f64) -> Self {
        Self {
            peak_hour: peak_hour.rem_euclid(24.0),
            amplitude: amplitude.clamp(0.0, 1.0),
        }
    }

    /// Flat (no daily variation).
    pub fn flat() -> Self {
        Self::new(0.0, 0.0)
    }

    /// The peak local hour.
    pub fn peak_hour(&self) -> f64 {
        self.peak_hour
    }

    /// The relative amplitude.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Intensity at local hour `h` (fractional hours allowed). Mean value
    /// over a day is 1.
    pub fn intensity(&self, h: f64) -> f64 {
        let phase = (h - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        1.0 + self.amplitude * phase.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_where_configured() {
        let c = DiurnalCurve::new(3.0, 0.8);
        assert!(c.intensity(3.0) > c.intensity(15.0));
        assert!((c.intensity(3.0) - 1.8).abs() < 1e-12);
        assert!((c.intensity(15.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn flat_curve_constant() {
        let c = DiurnalCurve::flat();
        for h in 0..24 {
            assert_eq!(c.intensity(h as f64), 1.0);
        }
    }

    #[test]
    fn wraps_and_clamps() {
        let c = DiurnalCurve::new(27.0, 2.0);
        assert!((c.peak_hour() - 3.0).abs() < 1e-12);
        assert_eq!(c.amplitude(), 1.0);
        assert!(c.intensity(3.0) >= c.intensity(9.0));
    }

    #[test]
    fn daily_mean_is_one() {
        let c = DiurnalCurve::new(5.0, 0.6);
        let mean: f64 = (0..2400)
            .map(|i| c.intensity(i as f64 / 100.0))
            .sum::<f64>()
            / 2400.0;
        assert!((mean - 1.0).abs() < 1e-3);
    }
}
