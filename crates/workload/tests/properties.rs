//! Property-based tests for the workload generator's invariants.

use oat_httplog::{Request, RequestKind};
use oat_workload::{
    generate, generate_columnar, generate_columnar_parallel, generate_with, Catalog, GenOptions,
    MultiDayModel, ParGenOptions, SiteProfile, TraceConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "oat-wprop-{tag}-{}-{seed}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sorted `.col` file names under `dir`.
fn shard_names(dir: &std::path::Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("list spool dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .filter(|n| n.ends_with(".col"))
        .collect();
    names.sort();
    names
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn trace_invariants_hold_for_any_seed(seed in 0u64..1_000_000) {
        let config = TraceConfig {
            scale: 0.0015,
            catalog_scale: 0.008,
            ..TraceConfig::paper_week()
        }
        .with_seed(seed);
        let trace = generate(&config).unwrap();
        prop_assert!(!trace.requests.is_empty());
        let end = config.start_unix + config.duration_secs;
        let publishers: std::collections::HashSet<u16> =
            config.sites.iter().map(|s| s.publisher.raw()).collect();
        for w in trace.requests.windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp, "sorted by time");
        }
        for r in &trace.requests {
            prop_assert!(r.timestamp >= config.start_unix && r.timestamp <= end);
            prop_assert!(publishers.contains(&r.publisher.raw()));
            prop_assert!(r.object_size > 0);
            match r.kind {
                RequestKind::Range { offset, length } => {
                    prop_assert!(length > 0);
                    prop_assert!(offset + length <= r.object_size);
                }
                RequestKind::Conditional => prop_assert!(!r.incognito),
                _ => {}
            }
            // UA strings parse to a valid category.
            let _ = oat_useragent::parse(&r.user_agent);
        }
    }

    #[test]
    fn catalog_weights_positive_and_sizes_bounded(seed in 0u64..1_000_000,
                                                  n in 60usize..600) {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = SiteProfile::v2();
        let catalog = Catalog::build(&profile, n, 7 * 86_400, &mut rng);
        prop_assert_eq!(catalog.len(), n);
        for obj in catalog.objects() {
            prop_assert!(obj.weight > 0.0);
            let params = profile.class_params(obj.content_class());
            prop_assert!(obj.size >= params.sizes.min_bytes);
            prop_assert!(obj.size <= params.sizes.max_bytes);
            prop_assert!(obj.injection_secs < 7 * 86_400);
        }
    }

    #[test]
    fn sharded_generation_invariant_to_threads_and_shards(
        seed in 0u64..100_000,
        threads in prop::sample::select(vec![1usize, 2, 8]),
        shard_size in prop::sample::select(vec![7usize, 64, 1024]),
    ) {
        let config = TraceConfig {
            scale: 0.0015,
            catalog_scale: 0.008,
            ..TraceConfig::paper_week()
        }
        .with_seed(seed);
        let reference = generate_with(
            &config,
            &GenOptions { threads: 1, shard_size: 64 },
        )
        .unwrap();
        let variant = generate_with(&config, &GenOptions { threads, shard_size }).unwrap();
        prop_assert_eq!(
            reference.requests,
            variant.requests,
            "trace must be byte-identical at threads={} shard_size={}",
            threads,
            shard_size
        );
    }

    #[test]
    fn merge_is_sorted_and_lossless(seed in 0u64..100_000) {
        let config = TraceConfig {
            scale: 0.0015,
            catalog_scale: 0.008,
            ..TraceConfig::paper_week()
        }
        .with_seed(seed);
        let sharded = generate_with(&config, &GenOptions { threads: 2, shard_size: 7 }).unwrap();
        for w in sharded.requests.windows(2) {
            let a = (w[0].timestamp, w[0].user.raw(), w[0].object.raw());
            let b = (w[1].timestamp, w[1].user.raw(), w[1].object.raw());
            prop_assert!(a <= b, "globally sorted by (timestamp, user, object)");
        }
        // The serial path: one worker, one shard per site.
        let serial = generate_with(
            &config,
            &GenOptions { threads: 1, shard_size: usize::MAX },
        )
        .unwrap();
        // No request lost or invented: count and order-independent checksum
        // agree, then the streams match outright.
        prop_assert_eq!(serial.requests.len(), sharded.requests.len());
        let checksum = |requests: &[Request]| -> u64 {
            requests.iter().fold(0u64, |acc, r| {
                acc.wrapping_add(
                    r.timestamp
                        .wrapping_mul(31)
                        .wrapping_add(r.user.raw().rotate_left(17))
                        .wrapping_add(r.object.raw().rotate_left(5))
                        .wrapping_add(r.object_size),
                )
            })
        };
        prop_assert_eq!(checksum(&serial.requests), checksum(&sharded.requests));
        prop_assert_eq!(serial.requests, sharded.requests);
    }

    #[test]
    fn parallel_columnar_identical_to_serial(
        seed in 0u64..100_000,
        threads in prop::sample::select(vec![1usize, 4, 8]),
        rows_per_shard in prop::sample::select(vec![500usize, 1000, 4096]),
        merge_fanin in prop::sample::select(vec![2usize, 64]),
    ) {
        let config = TraceConfig {
            scale: 0.0015,
            catalog_scale: 0.008,
            ..TraceConfig::paper_week()
        }
        .with_seed(seed);
        let serial_dir = scratch("serial", seed);
        let parallel_dir = scratch("parallel", seed);
        let serial = generate_columnar(
            &config,
            &GenOptions { threads: 1, shard_size: 64 },
            0,
            &serial_dir,
            "req",
            rows_per_shard,
        )
        .unwrap();
        let parallel = generate_columnar_parallel(
            &config,
            &ParGenOptions { threads, shard_size: 32, run_rows: 700, merge_fanin },
            &parallel_dir,
            "req",
            rows_per_shard,
        )
        .unwrap();
        prop_assert_eq!(parallel.rows, serial.rows);
        prop_assert_eq!(parallel.shards, serial.shards);
        let names = shard_names(&serial_dir);
        prop_assert_eq!(&names, &shard_names(&parallel_dir), "shard file lists differ");
        prop_assert!(!names.is_empty());
        for name in &names {
            let a = std::fs::read(serial_dir.join(name)).unwrap();
            let b = std::fs::read(parallel_dir.join(name)).unwrap();
            prop_assert_eq!(
                a, b,
                "shard {} differs at threads={} rows_per_shard={} fanin={}",
                name, threads, rows_per_shard, merge_fanin
            );
        }
        let _ = std::fs::remove_dir_all(&serial_dir);
        let _ = std::fs::remove_dir_all(&parallel_dir);
    }

    #[test]
    fn object_requests_reference_catalog(seed in 0u64..100_000) {
        let config = TraceConfig {
            scale: 0.001,
            catalog_scale: 0.005,
            sites: vec![SiteProfile::p1()],
            ..TraceConfig::paper_week()
        }
        .with_seed(seed);
        let trace = generate(&config).unwrap();
        let ids: std::collections::HashSet<u64> =
            trace.catalogs[0].objects().iter().map(|o| o.id.raw()).collect();
        for r in &trace.requests {
            prop_assert!(ids.contains(&r.object.raw()), "request references catalog object");
        }
    }
}

/// Local-time day index (0-based within the trace week) and hour-of-day for
/// a request, using the requesting user's timezone.
fn local_day_hour(r: &Request, config: &TraceConfig) -> (u64, f64) {
    let local = (r.timestamp - config.start_unix) as i64 + i64::from(r.tz_offset_secs);
    let wrapped = local.rem_euclid(config.duration_secs as i64);
    let day = (wrapped / 86_400) as u64;
    let hour = (wrapped % 86_400) as f64 / 3_600.0;
    (day, hour)
}

/// Circular statistics over hour-of-day samples: (mean hour, resultant length).
///
/// The resultant length is 0 for a uniform distribution and `amplitude / 2`
/// for the generator's `1 + a*cos` diurnal density, so it doubles as a
/// direct estimator of the effective diurnal amplitude.
fn circular_hour_stats(hours: &[f64]) -> (f64, f64) {
    assert!(!hours.is_empty(), "no samples for circular statistics");
    let (mut x, mut y) = (0.0f64, 0.0f64);
    for h in hours {
        let theta = h / 24.0 * std::f64::consts::TAU;
        x += theta.cos();
        y += theta.sin();
    }
    let n = hours.len() as f64;
    let mean = y.atan2(x).rem_euclid(std::f64::consts::TAU) / std::f64::consts::TAU * 24.0;
    let resultant = (x * x + y * y).sqrt() / n;
    (mean, resultant)
}

/// Smallest circular distance between two hours on a 24-hour clock.
fn hour_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(24.0);
    d.min(24.0 - d)
}

/// With a 3x weekend factor, the paper week (starting Saturday) must see
/// markedly more traffic on local days 0-1 than on the five weekdays.
#[test]
fn multi_day_weekend_factor_shapes_daily_volume() {
    let config = TraceConfig {
        scale: 0.002,
        catalog_scale: 0.005,
        sites: vec![SiteProfile::p1()],
        multi_day: Some(MultiDayModel {
            weekend_factor: 3.0,
            phase_drift_hours_per_day: 0.0,
            amplitude_drift_per_day: 0.0,
        }),
        ..TraceConfig::paper_week()
    }
    .with_seed(7);
    let trace = generate(&config).unwrap();
    let mut per_day = [0u64; 7];
    for r in &trace.requests {
        let (day, _) = local_day_hour(r, &config);
        per_day[day as usize % 7] += 1;
    }
    // paper_week starts Sat Oct 10 2015, so local days 0 and 1 are the weekend.
    let weekend = (per_day[0] + per_day[1]) as f64 / 2.0;
    let weekday = per_day[2..].iter().sum::<u64>() as f64 / 5.0;
    assert!(weekday > 0.0, "weekdays must still carry traffic");
    let ratio = weekend / weekday;
    assert!(
        ratio > 1.8,
        "weekend/weekday volume ratio {ratio:.2} too small for factor 3.0 \
         (per-day counts: {per_day:?})"
    );
}

/// Per-day phase drift must move the observed diurnal peak: with
/// +2h/day drift the circular-mean hour on day 5 sits ~10h after day 0's.
#[test]
fn multi_day_phase_drift_moves_diurnal_peak() {
    let mut site = SiteProfile::p1();
    site.diurnal = oat_workload::DiurnalCurve::new(20.0, 0.9);
    let config = TraceConfig {
        scale: 0.002,
        catalog_scale: 0.005,
        sites: vec![site],
        multi_day: Some(MultiDayModel {
            weekend_factor: 1.0,
            phase_drift_hours_per_day: 2.0,
            amplitude_drift_per_day: 0.0,
        }),
        ..TraceConfig::paper_week()
    }
    .with_seed(11);
    let trace = generate(&config).unwrap();
    let mut day0 = Vec::new();
    let mut day5 = Vec::new();
    for r in &trace.requests {
        let (day, hour) = local_day_hour(r, &config);
        match day {
            0 => day0.push(hour),
            5 => day5.push(hour),
            _ => {}
        }
    }
    assert!(
        day0.len() > 200 && day5.len() > 200,
        "need samples on both days"
    );
    let (mean0, _) = circular_hour_stats(&day0);
    let (mean5, _) = circular_hour_stats(&day5);
    let shift = (mean5 - mean0).rem_euclid(24.0);
    assert!(
        hour_distance(shift, 10.0) < 3.0,
        "observed peak shift {shift:.1}h, expected ~10h (day0 mean {mean0:.1}, day5 mean {mean5:.1})"
    );
}

/// Negative amplitude drift must flatten later days: the circular resultant
/// length (an estimator of amplitude/2) on day 5 falls well below day 0's.
#[test]
fn multi_day_amplitude_drift_flattens_later_days() {
    let mut site = SiteProfile::p1();
    site.diurnal = oat_workload::DiurnalCurve::new(20.0, 0.9);
    let config = TraceConfig {
        scale: 0.002,
        catalog_scale: 0.005,
        sites: vec![site],
        multi_day: Some(MultiDayModel {
            weekend_factor: 1.0,
            phase_drift_hours_per_day: 0.0,
            amplitude_drift_per_day: -0.15,
        }),
        ..TraceConfig::paper_week()
    }
    .with_seed(13);
    let trace = generate(&config).unwrap();
    let mut day0 = Vec::new();
    let mut day5 = Vec::new();
    for r in &trace.requests {
        let (day, hour) = local_day_hour(r, &config);
        match day {
            0 => day0.push(hour),
            5 => day5.push(hour),
            _ => {}
        }
    }
    assert!(
        day0.len() > 200 && day5.len() > 200,
        "need samples on both days"
    );
    // Day 0 keeps amplitude 0.9 (resultant ~0.45); by day 5 the model has
    // decayed it to 0.15 (resultant ~0.075).
    let (_, r0) = circular_hour_stats(&day0);
    let (_, r5) = circular_hour_stats(&day5);
    assert!(
        r0 > r5 + 0.15,
        "amplitude decay not observed: day0 resultant {r0:.3}, day5 resultant {r5:.3}"
    );
}
