//! Property-based tests for the workload generator's invariants.

use oat_httplog::{Request, RequestKind};
use oat_workload::{generate, generate_with, Catalog, GenOptions, SiteProfile, TraceConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn trace_invariants_hold_for_any_seed(seed in 0u64..1_000_000) {
        let config = TraceConfig {
            scale: 0.0015,
            catalog_scale: 0.008,
            ..TraceConfig::paper_week()
        }
        .with_seed(seed);
        let trace = generate(&config).unwrap();
        prop_assert!(!trace.requests.is_empty());
        let end = config.start_unix + config.duration_secs;
        let publishers: std::collections::HashSet<u16> =
            config.sites.iter().map(|s| s.publisher.raw()).collect();
        for w in trace.requests.windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp, "sorted by time");
        }
        for r in &trace.requests {
            prop_assert!(r.timestamp >= config.start_unix && r.timestamp <= end);
            prop_assert!(publishers.contains(&r.publisher.raw()));
            prop_assert!(r.object_size > 0);
            match r.kind {
                RequestKind::Range { offset, length } => {
                    prop_assert!(length > 0);
                    prop_assert!(offset + length <= r.object_size);
                }
                RequestKind::Conditional => prop_assert!(!r.incognito),
                _ => {}
            }
            // UA strings parse to a valid category.
            let _ = oat_useragent::parse(&r.user_agent);
        }
    }

    #[test]
    fn catalog_weights_positive_and_sizes_bounded(seed in 0u64..1_000_000,
                                                  n in 60usize..600) {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = SiteProfile::v2();
        let catalog = Catalog::build(&profile, n, 7 * 86_400, &mut rng);
        prop_assert_eq!(catalog.len(), n);
        for obj in catalog.objects() {
            prop_assert!(obj.weight > 0.0);
            let params = profile.class_params(obj.content_class());
            prop_assert!(obj.size >= params.sizes.min_bytes);
            prop_assert!(obj.size <= params.sizes.max_bytes);
            prop_assert!(obj.injection_secs < 7 * 86_400);
        }
    }

    #[test]
    fn sharded_generation_invariant_to_threads_and_shards(
        seed in 0u64..100_000,
        threads in prop::sample::select(vec![1usize, 2, 8]),
        shard_size in prop::sample::select(vec![7usize, 64, 1024]),
    ) {
        let config = TraceConfig {
            scale: 0.0015,
            catalog_scale: 0.008,
            ..TraceConfig::paper_week()
        }
        .with_seed(seed);
        let reference = generate_with(
            &config,
            &GenOptions { threads: 1, shard_size: 64 },
        )
        .unwrap();
        let variant = generate_with(&config, &GenOptions { threads, shard_size }).unwrap();
        prop_assert_eq!(
            reference.requests,
            variant.requests,
            "trace must be byte-identical at threads={} shard_size={}",
            threads,
            shard_size
        );
    }

    #[test]
    fn merge_is_sorted_and_lossless(seed in 0u64..100_000) {
        let config = TraceConfig {
            scale: 0.0015,
            catalog_scale: 0.008,
            ..TraceConfig::paper_week()
        }
        .with_seed(seed);
        let sharded = generate_with(&config, &GenOptions { threads: 2, shard_size: 7 }).unwrap();
        for w in sharded.requests.windows(2) {
            let a = (w[0].timestamp, w[0].user.raw(), w[0].object.raw());
            let b = (w[1].timestamp, w[1].user.raw(), w[1].object.raw());
            prop_assert!(a <= b, "globally sorted by (timestamp, user, object)");
        }
        // The serial path: one worker, one shard per site.
        let serial = generate_with(
            &config,
            &GenOptions { threads: 1, shard_size: usize::MAX },
        )
        .unwrap();
        // No request lost or invented: count and order-independent checksum
        // agree, then the streams match outright.
        prop_assert_eq!(serial.requests.len(), sharded.requests.len());
        let checksum = |requests: &[Request]| -> u64 {
            requests.iter().fold(0u64, |acc, r| {
                acc.wrapping_add(
                    r.timestamp
                        .wrapping_mul(31)
                        .wrapping_add(r.user.raw().rotate_left(17))
                        .wrapping_add(r.object.raw().rotate_left(5))
                        .wrapping_add(r.object_size),
                )
            })
        };
        prop_assert_eq!(checksum(&serial.requests), checksum(&sharded.requests));
        prop_assert_eq!(serial.requests, sharded.requests);
    }

    #[test]
    fn object_requests_reference_catalog(seed in 0u64..100_000) {
        let config = TraceConfig {
            scale: 0.001,
            catalog_scale: 0.005,
            sites: vec![SiteProfile::p1()],
            ..TraceConfig::paper_week()
        }
        .with_seed(seed);
        let trace = generate(&config).unwrap();
        let ids: std::collections::HashSet<u64> =
            trace.catalogs[0].objects().iter().map(|o| o.id.raw()).collect();
        for r in &trace.requests {
            prop_assert!(ids.contains(&r.object.raw()), "request references catalog object");
        }
    }
}
