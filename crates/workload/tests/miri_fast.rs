//! Fast miri subset for the workload crate.
//!
//! CI runs this file under `cargo +nightly miri test -p oat-workload
//! --test miri_fast` to catch undefined behaviour in the hot sampling and
//! merge paths. Inputs are deliberately tiny (miri executes ~1000x slower
//! than native) and everything stays in memory — no files, no threads.

use oat_httplog::Request;
use oat_workload::dist::{AliasTable, Exponential, LogNormal};
use oat_workload::generator::chunk_count;
use oat_workload::merge::{KWayMerge, SortedShard};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lognormal_sampling_is_finite() {
    let dist = LogNormal::from_median(600.0, 1.2).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..16 {
        let x = dist.sample(&mut rng);
        assert!(x.is_finite() && x > 0.0);
    }
}

#[test]
fn exponential_sampling_is_positive() {
    let dist = Exponential::new(3.0).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..16 {
        let x = dist.sample(&mut rng);
        assert!(x.is_finite() && x >= 0.0);
    }
}

#[test]
fn alias_table_stays_in_range() {
    let table = AliasTable::new(&[0.5, 0.25, 0.125, 0.125]).unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..32 {
        assert!(table.sample(&mut rng) < 4);
    }
}

#[test]
fn kway_merge_orders_across_shards() {
    let request_at = |ts: u64| Request {
        timestamp: ts,
        ..Request::example()
    };
    let shards = vec![
        SortedShard {
            site: 0,
            requests: vec![request_at(1), request_at(5)],
        },
        SortedShard {
            site: 1,
            requests: vec![request_at(2), request_at(3)],
        },
    ];
    let merged: Vec<u64> = KWayMerge::new(shards).map(|(_, r)| r.timestamp).collect();
    assert_eq!(merged, vec![1, 2, 3, 5]);
}

#[test]
fn chunk_count_rounds_up() {
    use oat_workload::CHUNK_BYTES;
    // Bodyless/empty objects still occupy one chunk.
    assert_eq!(chunk_count(0), 1);
    assert_eq!(chunk_count(1), 1);
    assert_eq!(chunk_count(CHUNK_BYTES), 1);
    assert_eq!(chunk_count(CHUNK_BYTES + 1), 2);
}
