//! Loom models of the two concurrency protocols in `workload::generator`.
//!
//! Loom cannot instrument crossbeam's channel or scoped threads, so these
//! tests model the *protocols* with loom's own primitives and exhaustively
//! check every interleaving:
//!
//! 1. the atomic shard-counter dispatch (`next.fetch_add(Relaxed)` claim
//!    loop in `generate_shards`) — every task must be claimed by exactly
//!    one worker and no worker may spin forever;
//! 2. the bounded streaming handoff (`crossbeam::channel::bounded(2)` in
//!    `generate_streaming`) — delivery is lossless and ordered, and the
//!    producer terminates instead of blocking when the receiver goes away.
//!
//! Build and run with `RUSTFLAGS="--cfg loom" cargo test -p oat-workload
//! --test loom_models --release`; under a normal build this file is empty.

#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;
use std::collections::VecDeque;

/// Mirror of the shard dispatch in `generate_shards`: workers race on one
/// counter with `Relaxed` ordering; a claim index past the end means done.
#[test]
fn shard_counter_claims_each_task_exactly_once() {
    loom::model(|| {
        const TASKS: usize = 3;
        const WORKERS: usize = 2;
        let next = Arc::new(AtomicUsize::new(0));
        let claims = Arc::new(Mutex::new([0u8; TASKS]));

        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let next = Arc::clone(&next);
                let claims = Arc::clone(&claims);
                thread::spawn(move || loop {
                    // Relaxed suffices: the claim index itself is the only
                    // shared state, and the join below is the fence that
                    // publishes each worker's results.
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= TASKS {
                        break;
                    }
                    claims.lock().unwrap()[t] += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let claims = claims.lock().unwrap();
        assert!(
            claims.iter().all(|&c| c == 1),
            "every task claimed exactly once, got {claims:?}"
        );
    });
}

/// A bounded SPSC queue modelling the semantics `generate_streaming`
/// relies on from `crossbeam::channel::bounded`: blocking sends when full,
/// blocking receives when empty, disconnect on either side.
struct BoundedChan {
    state: Mutex<ChanState>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct ChanState {
    queue: VecDeque<u32>,
    capacity: usize,
    producer_done: bool,
    receiver_gone: bool,
}

impl BoundedChan {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(ChanState {
                queue: VecDeque::new(),
                capacity,
                producer_done: false,
                receiver_gone: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocking send; `Err` when the receiver has disconnected (the
    /// producer thread in `generate_streaming` returns on this).
    fn send(&self, value: u32) -> Result<(), ()> {
        let mut st = self.state.lock().unwrap();
        while st.queue.len() == st.capacity {
            if st.receiver_gone {
                return Err(());
            }
            st = self.not_full.wait(st).unwrap();
        }
        if st.receiver_gone {
            return Err(());
        }
        st.queue.push_back(value);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking receive; `None` once the producer is done and drained.
    fn recv(&self) -> Option<u32> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.not_full.notify_one();
                return Some(v);
            }
            if st.producer_done {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    fn close_producer(&self) {
        self.state.lock().unwrap().producer_done = true;
        self.not_empty.notify_one();
    }

    fn drop_receiver(&self) {
        self.state.lock().unwrap().receiver_gone = true;
        self.not_full.notify_one();
    }
}

/// Happy path: every batch arrives, in order, despite the tiny capacity
/// forcing the producer to block mid-stream.
#[test]
fn bounded_handoff_is_lossless_and_ordered() {
    loom::model(|| {
        const BATCHES: u32 = 3;
        let chan = Arc::new(BoundedChan::new(1));

        let producer = {
            let chan = Arc::clone(&chan);
            thread::spawn(move || {
                for batch in 0..BATCHES {
                    chan.send(batch).expect("receiver stays alive");
                }
                chan.close_producer();
            })
        };

        let mut received = Vec::new();
        while let Some(batch) = chan.recv() {
            received.push(batch);
        }
        producer.join().unwrap();

        assert_eq!(received, (0..BATCHES).collect::<Vec<_>>());
    });
}

/// Receiver-drop path: the consumer takes one batch and walks away; the
/// producer must observe the disconnect and terminate rather than block
/// forever on a full queue (loom fails the model on any deadlock).
#[test]
fn producer_terminates_when_receiver_drops() {
    loom::model(|| {
        let chan = Arc::new(BoundedChan::new(1));

        let producer = {
            let chan = Arc::clone(&chan);
            thread::spawn(move || {
                let mut sent = 0u32;
                for batch in 0..3u32 {
                    if chan.send(batch).is_err() {
                        break; // receiver dropped: abandon the rest
                    }
                    sent += 1;
                }
                sent
            })
        };

        let first = chan.recv();
        chan.drop_receiver();
        let sent = producer.join().unwrap();

        assert_eq!(first, Some(0), "the batch sent before the drop arrives");
        assert!(sent >= 1, "at least the received batch was sent");
    });
}
