//! P² (P-square) streaming quantile estimation.
//!
//! Jain & Chlamtac's P² algorithm estimates a single quantile in O(1) memory
//! without storing observations — used for on-the-fly percentile tracking
//! while replaying multi-million-request traces.

use serde::{Deserialize, Serialize};

/// Streaming estimator for one quantile `q` using five markers.
///
/// # Example
///
/// ```
/// use oat_stats::PsquareQuantile;
///
/// let mut p50 = PsquareQuantile::new(0.5).unwrap();
/// for i in 1..=1001 {
///     p50.push(i as f64);
/// }
/// let est = p50.estimate().unwrap();
/// assert!((est - 501.0).abs() < 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsquareQuantile {
    q: f64,
    /// Marker heights (estimated values).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Number of observations so far (first 5 are buffered in `heights`).
    count: usize,
}

impl PsquareQuantile {
    /// Creates an estimator for quantile `q`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidQuantileError`] unless `0 < q < 1`.
    pub fn new(q: f64) -> Result<Self, InvalidQuantileError> {
        // NaN fails both comparisons and is rejected.
        if q.is_nan() || q <= 0.0 || q >= 1.0 {
            return Err(InvalidQuantileError { q });
        }
        Ok(Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        })
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of observations pushed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(|a, b| a.total_cmp(b));
            }
            return;
        }
        self.count += 1;

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in &mut self.positions[k + 1..5] {
            *p += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    self.heights[i] = candidate;
                } else {
                    self.heights[i] = self.linear(i, d);
                }
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate; `None` until at least one observation.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                // Fall back to the exact quantile of the buffered samples.
                let mut buf = self.heights[..n].to_vec();
                buf.sort_by(|a, b| a.total_cmp(b));
                let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n);
                Some(buf[rank - 1])
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// Error returned by [`PsquareQuantile::new`] for `q` outside `(0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidQuantileError {
    /// The rejected quantile.
    pub q: f64,
}

impl std::fmt::Display for InvalidQuantileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "quantile must be in (0, 1), got {}", self.q)
    }
}

impl std::error::Error for InvalidQuantileError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*seed >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn rejects_bad_quantiles() {
        assert!(PsquareQuantile::new(0.0).is_err());
        assert!(PsquareQuantile::new(1.0).is_err());
        assert!(PsquareQuantile::new(-0.5).is_err());
        assert!(PsquareQuantile::new(f64::NAN).is_err());
        let err = PsquareQuantile::new(2.0).unwrap_err();
        assert!(err.to_string().contains("2"));
    }

    #[test]
    fn empty_estimate_none() {
        let p = PsquareQuantile::new(0.5).unwrap();
        assert_eq!(p.estimate(), None);
        assert_eq!(p.count(), 0);
    }

    #[test]
    fn small_sample_exact() {
        let mut p = PsquareQuantile::new(0.5).unwrap();
        p.push(3.0);
        p.push(1.0);
        p.push(2.0);
        assert_eq!(p.estimate(), Some(2.0));
    }

    #[test]
    fn uniform_median_accurate() {
        let mut p = PsquareQuantile::new(0.5).unwrap();
        let mut seed = 42u64;
        for _ in 0..100_000 {
            p.push(lcg(&mut seed));
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn uniform_p95_accurate() {
        let mut p = PsquareQuantile::new(0.95).unwrap();
        let mut seed = 7u64;
        for _ in 0..100_000 {
            p.push(lcg(&mut seed));
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.95).abs() < 0.02, "p95 estimate {est}");
    }

    #[test]
    fn skewed_distribution() {
        // Exponential-ish: -ln(u). True median = ln 2 ≈ 0.693.
        let mut p = PsquareQuantile::new(0.5).unwrap();
        let mut seed = 99u64;
        for _ in 0..100_000 {
            let u = lcg(&mut seed).max(1e-12);
            p.push(-u.ln());
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.693).abs() < 0.05, "exp median estimate {est}");
    }

    #[test]
    fn ignores_non_finite() {
        let mut p = PsquareQuantile::new(0.5).unwrap();
        p.push(f64::NAN);
        p.push(f64::INFINITY);
        assert_eq!(p.count(), 0);
        p.push(1.0);
        assert_eq!(p.count(), 1);
    }

    #[test]
    fn monotone_stream() {
        let mut p = PsquareQuantile::new(0.9).unwrap();
        for i in 0..10_000 {
            p.push(i as f64);
        }
        let est = p.estimate().unwrap();
        assert!((est - 9000.0).abs() < 200.0, "p90 estimate {est}");
    }
}
