//! Power-law (Zipf) fitting for popularity distributions.
//!
//! Content popularity in the paper (Fig 6) is long-tailed. This module fits
//! the rank-frequency exponent `alpha` of `count(rank) ∝ rank^-alpha` via
//! least squares in log-log space, and also reports tail-concentration
//! statistics (what fraction of requests the top `p` objects draw).

use serde::{Deserialize, Serialize};

/// Result of fitting `count ∝ rank^-alpha` to a popularity distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZipfFit {
    /// Fitted skew exponent (the negated log-log slope).
    pub alpha: f64,
    /// Intercept in log-log space (`ln` of the count predicted at rank 1).
    pub intercept: f64,
    /// Coefficient of determination of the log-log regression.
    pub r_squared: f64,
    /// Number of ranks used in the fit.
    pub ranks: usize,
}

/// Fits a Zipf exponent to raw per-object request counts.
///
/// Counts are sorted descending, zero counts are dropped, and an ordinary
/// least-squares line is fit to `(ln rank, ln count)`. Returns `None` when
/// fewer than two distinct positive counts remain or the fit degenerates.
///
/// # Example
///
/// ```
/// use oat_stats::fit_zipf;
///
/// // Ideal Zipf with alpha = 1: counts 1000/rank.
/// let counts: Vec<u64> = (1..=100u64).map(|r| 1000 / r).collect();
/// let fit = fit_zipf(&counts).unwrap();
/// assert!((fit.alpha - 1.0).abs() < 0.1);
/// assert!(fit.r_squared > 0.95);
/// ```
pub fn fit_zipf(counts: &[u64]) -> Option<ZipfFit> {
    let mut sorted: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    if sorted.len() < 2 {
        return None;
    }
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let points: Vec<(f64, f64)> = sorted
        .iter()
        .enumerate()
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom == 0.0 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (intercept + slope * p.0)).powi(2))
        .sum();
    // Near-zero total variance means all counts are (numerically) equal:
    // the flat line is a perfect fit.
    let r_squared = if ss_tot < 1e-9 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(ZipfFit {
        alpha: -slope,
        intercept,
        r_squared,
        ranks: points.len(),
    })
}

/// Fraction of total requests captured by the most popular `top_fraction`
/// of objects (e.g. `0.1` = top 10 %).
///
/// Returns `None` when `counts` is empty or sums to zero. `top_fraction` is
/// clamped to `[0, 1]`; at least one object is always included when the
/// clamped fraction is positive.
///
/// # Example
///
/// ```
/// use oat_stats::zipf::top_share;
///
/// let counts = [100u64, 10, 5, 1, 1, 1, 1, 1, 1, 1];
/// // The single most popular object (top 10 %) draws 100/122 of requests.
/// let share = top_share(&counts, 0.1).unwrap();
/// assert!((share - 100.0 / 122.0).abs() < 1e-12);
/// ```
pub fn top_share(counts: &[u64], top_fraction: f64) -> Option<f64> {
    if counts.is_empty() {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let top_fraction = top_fraction.clamp(0.0, 1.0);
    if top_fraction == 0.0 {
        return Some(0.0);
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let k = ((sorted.len() as f64 * top_fraction).round() as usize).clamp(1, sorted.len());
    let top: u64 = sorted[..k].iter().sum();
    Some(top as f64 / total as f64)
}

/// Gini coefficient of a popularity distribution — `0` when all objects are
/// equally popular, approaching `1` for extreme concentration.
///
/// Returns `None` when `counts` is empty or sums to zero.
pub fn gini(counts: &[u64]) -> Option<f64> {
    if counts.is_empty() {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as f64 + 1.0) * c as f64)
        .sum();
    Some((2.0 * weighted) / (n * total as f64) - (n + 1.0) / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_zipf_recovered() {
        for alpha in [0.6, 0.8, 1.0, 1.2] {
            let counts: Vec<u64> = (1..=500u64)
                .map(|r| (1e6 / (r as f64).powf(alpha)).round() as u64)
                .collect();
            let fit = fit_zipf(&counts).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.05,
                "alpha {alpha}: fitted {}",
                fit.alpha
            );
            assert!(fit.r_squared > 0.99);
            assert_eq!(fit.ranks, 500);
        }
    }

    #[test]
    fn uniform_counts_alpha_zero() {
        let counts = vec![50u64; 100];
        let fit = fit_zipf(&counts).unwrap();
        assert!(fit.alpha.abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn too_few_points() {
        assert!(fit_zipf(&[]).is_none());
        assert!(fit_zipf(&[5]).is_none());
        assert!(fit_zipf(&[0, 0, 7]).is_none());
    }

    #[test]
    fn zeros_dropped() {
        let counts = [10u64, 0, 5, 0, 1];
        let fit = fit_zipf(&counts).unwrap();
        assert_eq!(fit.ranks, 3);
    }

    #[test]
    fn top_share_bounds() {
        let counts = [1u64; 10];
        assert_eq!(top_share(&counts, 0.0), Some(0.0));
        assert_eq!(top_share(&counts, 1.0), Some(1.0));
        // Clamp out-of-range fractions.
        assert_eq!(top_share(&counts, 2.0), Some(1.0));
        assert!((top_share(&counts, 0.5).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_share_skewed() {
        let counts = [1000u64, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        assert!(top_share(&counts, 0.1).unwrap() > 0.99);
    }

    #[test]
    fn top_share_empty_or_zero() {
        assert_eq!(top_share(&[], 0.5), None);
        assert_eq!(top_share(&[0, 0], 0.5), None);
    }

    #[test]
    fn gini_extremes() {
        assert!((gini(&[10, 10, 10, 10]).unwrap()).abs() < 1e-12);
        // One object holds everything: Gini → (n-1)/n.
        let g = gini(&[100, 0, 0, 0]).unwrap();
        assert!((g - 0.75).abs() < 1e-12);
        assert_eq!(gini(&[]), None);
        assert_eq!(gini(&[0]), None);
    }

    #[test]
    fn gini_order_invariant() {
        let a = gini(&[5, 1, 3, 9]).unwrap();
        let b = gini(&[9, 3, 5, 1]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }
}
