//! Approximate heavy hitters via the Space-Saving algorithm.
//!
//! Tracking exact per-object counters for tens of millions of URLs is
//! memory-hungry; Space-Saving (Metwally et al., 2005) maintains the top-k
//! most frequent items with bounded error using `k` counters.

use std::collections::HashMap;
use std::hash::Hash;

/// A Space-Saving heavy-hitter sketch over items of type `T`.
///
/// Maintains at most `capacity` counters. Each reported count overestimates
/// the true count by at most the reported `error` for that item.
///
/// # Example
///
/// ```
/// use oat_stats::SpaceSaving;
///
/// let mut ss = SpaceSaving::new(2);
/// for item in ["a", "a", "a", "b", "c", "a"] {
///     ss.observe(item);
/// }
/// let top = ss.top(1);
/// assert_eq!(top[0].item, "a");
/// assert!(top[0].count >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSaving<T> {
    capacity: usize,
    counters: HashMap<T, Counter>,
    observed: u64,
    /// Monotonic insertion sequence; tie-breaks eviction and reporting so
    /// results never depend on `HashMap` iteration order.
    next_seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct Counter {
    count: u64,
    error: u64,
    /// Insertion order, for deterministic tie-breaking.
    seq: u64,
}

/// One entry reported by [`SpaceSaving::top`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyHitter<T> {
    /// The tracked item.
    pub item: T,
    /// Estimated count (an overestimate).
    pub count: u64,
    /// Maximum possible overestimation for this item.
    pub error: u64,
}

impl<T: Eq + Hash + Clone> SpaceSaving<T> {
    /// Creates a sketch tracking at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving capacity must be positive");
        Self {
            capacity,
            counters: HashMap::with_capacity(capacity),
            observed: 0,
            next_seq: 0,
        }
    }

    /// Records one occurrence of `item`.
    pub fn observe(&mut self, item: T) {
        self.observe_weighted(item, 1);
    }

    /// Records `weight` occurrences of `item` at once.
    pub fn observe_weighted(&mut self, item: T, weight: u64) {
        if weight == 0 {
            return;
        }
        self.observed += weight;
        if let Some(c) = self.counters.get_mut(&item) {
            c.count += weight;
            return;
        }
        if self.counters.len() < self.capacity {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.counters.insert(
                item,
                Counter {
                    count: weight,
                    error: 0,
                    seq,
                },
            );
            return;
        }
        // Evict the minimum counter and inherit its count as error. The
        // `(count, seq)` key is unique, so the minimum — and therefore the
        // sketch state — is independent of `HashMap` iteration order.
        let (min_item, min_count) = self
            .counters
            // oat-lint: allow(determinism-taint) -- min over the unique (count, seq) key
            .iter()
            .min_by_key(|(_, c)| (c.count, c.seq))
            .map(|(k, c)| (k.clone(), c.count))
            .expect("capacity > 0 implies at least one counter");
        self.counters.remove(&min_item);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.counters.insert(
            item,
            Counter {
                count: min_count + weight,
                error: min_count,
                seq,
            },
        );
    }

    /// Total weight observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of items currently tracked.
    pub fn tracked(&self) -> usize {
        self.counters.len()
    }

    /// The `n` highest-count items, sorted by descending estimated count.
    pub fn top(&self, n: usize) -> Vec<HeavyHitter<T>> {
        let mut all: Vec<(u64, HeavyHitter<T>)> = self
            .counters
            // oat-lint: allow(determinism-taint) -- sorted by the unique (count, seq) key below
            .iter()
            .map(|(item, c)| {
                (
                    c.seq,
                    HeavyHitter {
                        item: item.clone(),
                        count: c.count,
                        error: c.error,
                    },
                )
            })
            .collect();
        // Descending count, ties broken by insertion order: the reported
        // ranking is a pure function of the observation sequence.
        all.sort_by_key(|(seq, hh)| (std::cmp::Reverse(hh.count), *seq));
        all.truncate(n);
        all.into_iter().map(|(_, hh)| hh).collect()
    }

    /// Estimated count for `item`, if tracked.
    pub fn estimate(&self, item: &T) -> Option<u64> {
        self.counters.get(item).map(|c| c.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SpaceSaving::<u32>::new(0);
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(10);
        for i in 0..5u32 {
            for _ in 0..=i {
                ss.observe(i);
            }
        }
        for i in 0..5u32 {
            assert_eq!(ss.estimate(&i), Some(i as u64 + 1));
        }
        let top = ss.top(2);
        assert_eq!(top[0].item, 4);
        assert_eq!(top[0].error, 0);
        assert_eq!(ss.observed(), 15);
    }

    #[test]
    fn heavy_hitter_survives_eviction() {
        let mut ss = SpaceSaving::new(3);
        // "hot" appears 1000 times interleaved with 100 distinct cold items.
        for i in 0..1000u32 {
            ss.observe(0u32);
            ss.observe(1000 + (i % 100));
        }
        let top = ss.top(1);
        assert_eq!(top[0].item, 0);
        assert!(top[0].count >= 1000);
        assert_eq!(ss.tracked(), 3);
    }

    #[test]
    fn overestimate_bounded_by_error() {
        let mut ss = SpaceSaving::new(2);
        for item in ["a", "b", "c", "d"] {
            ss.observe(item);
        }
        for hh in ss.top(2) {
            // True count of every item is 1; estimate - error <= true count.
            assert!(hh.count - hh.error <= 1);
        }
    }

    #[test]
    fn weighted_observations() {
        let mut ss = SpaceSaving::new(4);
        ss.observe_weighted("x", 10);
        ss.observe_weighted("y", 3);
        ss.observe_weighted("x", 5);
        ss.observe_weighted("z", 0); // no-op
        assert_eq!(ss.estimate(&"x"), Some(15));
        assert_eq!(ss.estimate(&"z"), None);
        assert_eq!(ss.observed(), 18);
    }

    #[test]
    fn top_truncates() {
        let mut ss = SpaceSaving::new(5);
        for i in 0..5u32 {
            ss.observe(i);
        }
        assert_eq!(ss.top(3).len(), 3);
        assert_eq!(ss.top(100).len(), 5);
    }
}
