//! Linear and logarithmic histograms with simple mode detection.
//!
//! The paper's Figure 5(b) claims image sizes are **bi-modal** (thumbnail
//! vs full-resolution). [`LogHistogram::modes`] provides the smoothed
//! local-maxima detection used to verify that claim on synthetic traces.

use serde::{Deserialize, Serialize};

/// One histogram bucket: `[lo, hi)` with a count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (the final bin includes its upper edge).
    pub hi: f64,
    /// Number of samples that fell in this bin.
    pub count: u64,
}

impl Bin {
    /// Midpoint of the bin.
    pub fn center(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// A fixed-range, equal-width histogram.
///
/// # Example
///
/// ```
/// use oat_stats::LinearHistogram;
///
/// let mut h = LinearHistogram::new(0.0, 10.0, 5).unwrap();
/// for x in [0.5, 1.0, 2.5, 9.9, 10.0] {
///     h.add(x);
/// }
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.bins()[0].count, 2); // 0.5 and 1.0 — 1.0 lands in [0,2)? no: bin width 2 → [0,2) holds 0.5,1.0
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl LinearHistogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width buckets.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramConfigError`] if `bins == 0`, the bounds are not
    /// finite, or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, HistogramConfigError> {
        if bins == 0 {
            return Err(HistogramConfigError::ZeroBins);
        }
        if !lo.is_finite() || !hi.is_finite() {
            return Err(HistogramConfigError::NonFiniteBounds);
        }
        if hi <= lo {
            return Err(HistogramConfigError::EmptyRange);
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Adds one sample. Samples outside `[lo, hi]` are tallied in the
    /// under/overflow counters; non-finite samples are ignored.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x > self.hi {
            self.overflow += 1;
            return;
        }
        let n = self.counts.len();
        let width = (self.hi - self.lo) / n as f64;
        let idx = (((x - self.lo) / width) as usize).min(n - 1);
        self.counts[idx] += 1;
    }

    /// Total samples added (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below the lower edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Materializes the buckets.
    pub fn bins(&self) -> Vec<Bin> {
        let n = self.counts.len();
        let width = (self.hi - self.lo) / n as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &count)| Bin {
                lo: self.lo + width * i as f64,
                hi: self.lo + width * (i + 1) as f64,
                count,
            })
            .collect()
    }

    /// Indices of smoothed local maxima; see [`modes`] for the algorithm.
    pub fn modes(&self, smoothing: usize, min_prominence: f64) -> Vec<Bin> {
        let bins = self.bins();
        modes(&bins, smoothing, min_prominence)
    }
}

/// A base-`b` logarithmic histogram for positive, heavy-tailed data
/// (file sizes, request counts).
///
/// Bucket `i` covers `[b^(min_exp + i), b^(min_exp + i + 1))`.
///
/// # Example
///
/// ```
/// use oat_stats::LogHistogram;
///
/// let mut h = LogHistogram::base2(0, 30).unwrap(); // 1 byte .. 1 GiB
/// h.add(1500.0);   // ~1.5 KB thumbnail
/// h.add(800_000.0); // ~800 KB full image
/// assert_eq!(h.total(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    base: f64,
    min_exp: i32,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Creates a log histogram with the given base and exponent range
    /// `[min_exp, max_exp)`.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramConfigError`] if `base <= 1`, the range is empty,
    /// or the base is not finite.
    pub fn new(base: f64, min_exp: i32, max_exp: i32) -> Result<Self, HistogramConfigError> {
        if !base.is_finite() {
            return Err(HistogramConfigError::NonFiniteBounds);
        }
        if base <= 1.0 {
            return Err(HistogramConfigError::BadBase);
        }
        if max_exp <= min_exp {
            return Err(HistogramConfigError::EmptyRange);
        }
        Ok(Self {
            base,
            min_exp,
            counts: vec![0; (max_exp - min_exp) as usize],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Base-2 log histogram over exponents `[min_exp, max_exp)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogHistogram::new`].
    pub fn base2(min_exp: i32, max_exp: i32) -> Result<Self, HistogramConfigError> {
        Self::new(2.0, min_exp, max_exp)
    }

    /// Base-10 log histogram over exponents `[min_exp, max_exp)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogHistogram::new`].
    pub fn base10(min_exp: i32, max_exp: i32) -> Result<Self, HistogramConfigError> {
        Self::new(10.0, min_exp, max_exp)
    }

    /// Adds one sample. Non-positive and non-finite samples are ignored;
    /// samples outside the exponent range land in under/overflow.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() || x <= 0.0 {
            return;
        }
        self.total += 1;
        let exp = x.log(self.base).floor() as i32;
        if exp < self.min_exp {
            self.underflow += 1;
        } else if exp >= self.min_exp + self.counts.len() as i32 {
            self.overflow += 1;
        } else {
            self.counts[(exp - self.min_exp) as usize] += 1;
        }
    }

    /// Total samples added (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below `base^min_exp`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `base^max_exp`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Materializes the buckets with geometric edges.
    pub fn bins(&self) -> Vec<Bin> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &count)| Bin {
                lo: self.base.powi(self.min_exp + i as i32),
                hi: self.base.powi(self.min_exp + i as i32 + 1),
                count,
            })
            .collect()
    }

    /// Smoothed local maxima of the bucket counts; see [`modes`].
    pub fn modes(&self, smoothing: usize, min_prominence: f64) -> Vec<Bin> {
        modes(&self.bins(), smoothing, min_prominence)
    }

    /// Convenience: `true` when the distribution shows at least two modes.
    ///
    /// Used to verify the paper's bi-modal image-size claim (Fig 5b).
    pub fn is_multimodal(&self, smoothing: usize, min_prominence: f64) -> bool {
        self.modes(smoothing, min_prominence).len() >= 2
    }
}

/// Finds local maxima of a binned distribution after moving-average
/// smoothing.
///
/// `smoothing` is the half-width of the moving-average window (0 = none).
/// `min_prominence` is the minimum fraction of the total mass a mode's peak
/// bin must hold after smoothing (e.g. `0.02` = 2 %) — this suppresses noise
/// peaks.
pub fn modes(bins: &[Bin], smoothing: usize, min_prominence: f64) -> Vec<Bin> {
    if bins.is_empty() {
        return Vec::new();
    }
    let total: u64 = bins.iter().map(|b| b.count).sum();
    if total == 0 {
        return Vec::new();
    }
    let n = bins.len();
    let smoothed: Vec<f64> = (0..n)
        .map(|i| {
            let lo = i.saturating_sub(smoothing);
            let hi = (i + smoothing + 1).min(n);
            let window = &bins[lo..hi];
            window.iter().map(|b| b.count as f64).sum::<f64>() / window.len() as f64
        })
        .collect();
    let threshold = min_prominence * total as f64;
    let mut result = Vec::new();
    for i in 0..n {
        let left_ok = i == 0 || smoothed[i] > smoothed[i - 1];
        let right_ok = i + 1 == n || smoothed[i] >= smoothed[i + 1];
        if left_ok && right_ok && smoothed[i] >= threshold {
            result.push(bins[i]);
        }
    }
    result
}

/// Error constructing a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramConfigError {
    /// Requested zero buckets.
    ZeroBins,
    /// A bound was NaN or infinite.
    NonFiniteBounds,
    /// Upper bound does not exceed lower bound.
    EmptyRange,
    /// Logarithm base must exceed 1.
    BadBase,
}

impl std::fmt::Display for HistogramConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            Self::ZeroBins => "histogram must have at least one bin",
            Self::NonFiniteBounds => "histogram bounds must be finite",
            Self::EmptyRange => "histogram upper bound must exceed lower bound",
            Self::BadBase => "log histogram base must exceed 1",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for HistogramConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_rejects_bad_config() {
        assert_eq!(
            LinearHistogram::new(0.0, 1.0, 0).unwrap_err(),
            HistogramConfigError::ZeroBins
        );
        assert_eq!(
            LinearHistogram::new(1.0, 1.0, 4).unwrap_err(),
            HistogramConfigError::EmptyRange
        );
        assert_eq!(
            LinearHistogram::new(f64::NAN, 1.0, 4).unwrap_err(),
            HistogramConfigError::NonFiniteBounds
        );
    }

    #[test]
    fn linear_bucketing() {
        let mut h = LinearHistogram::new(0.0, 10.0, 10).unwrap();
        for x in [0.0, 0.5, 1.0, 9.99, 10.0] {
            h.add(x);
        }
        let bins = h.bins();
        assert_eq!(bins[0].count, 2); // 0.0, 0.5
        assert_eq!(bins[1].count, 1); // 1.0
        assert_eq!(bins[9].count, 2); // 9.99 and the inclusive upper edge 10.0
        assert_eq!(h.total(), 5);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn linear_under_overflow() {
        let mut h = LinearHistogram::new(0.0, 1.0, 2).unwrap();
        h.add(-1.0);
        h.add(2.0);
        h.add(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn log2_bucketing() {
        let mut h = LogHistogram::base2(0, 4).unwrap();
        // Buckets: [1,2) [2,4) [4,8) [8,16)
        for x in [1.0, 1.9, 2.0, 7.9, 8.0, 15.9] {
            h.add(x);
        }
        let bins = h.bins();
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[1].count, 1);
        assert_eq!(bins[2].count, 1);
        assert_eq!(bins[3].count, 2);
    }

    #[test]
    fn log_ignores_nonpositive() {
        let mut h = LogHistogram::base10(0, 3).unwrap();
        h.add(0.0);
        h.add(-5.0);
        assert_eq!(h.total(), 0);
        h.add(0.5); // below 10^0
        assert_eq!(h.underflow(), 1);
        h.add(1e9); // above 10^3
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn bad_base_rejected() {
        assert_eq!(
            LogHistogram::new(1.0, 0, 4).unwrap_err(),
            HistogramConfigError::BadBase
        );
    }

    #[test]
    fn unimodal_detected() {
        let mut h = LinearHistogram::new(0.0, 10.0, 20).unwrap();
        for i in 0..1000 {
            // Roughly triangular around 5.
            let x = 5.0 + 4.0 * ((i as f64 * 0.618).fract() - 0.5);
            h.add(x);
        }
        let modes = h.modes(1, 0.02);
        assert!(!modes.is_empty());
    }

    #[test]
    fn bimodal_detected() {
        let mut h = LogHistogram::base2(8, 24).unwrap(); // 256 B .. 16 MB
                                                         // Thumbnail mode around 4 KB, full-size mode around 512 KB.
        for i in 0..500 {
            h.add(3000.0 + (i % 100) as f64 * 20.0);
            h.add(400_000.0 + (i % 100) as f64 * 2000.0);
        }
        assert!(h.is_multimodal(0, 0.05));
        let modes = h.modes(0, 0.05);
        assert_eq!(modes.len(), 2);
        assert!(modes[0].lo < 10_000.0);
        assert!(modes[1].lo > 100_000.0);
    }

    #[test]
    fn empty_bins_no_modes() {
        let h = LinearHistogram::new(0.0, 1.0, 4).unwrap();
        assert!(h.modes(1, 0.0).is_empty());
        assert!(modes(&[], 1, 0.0).is_empty());
    }

    #[test]
    fn bin_center() {
        let b = Bin {
            lo: 2.0,
            hi: 4.0,
            count: 1,
        };
        assert_eq!(b.center(), 3.0);
    }
}
