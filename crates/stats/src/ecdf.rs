//! Empirical cumulative distribution functions.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over `f64` samples.
///
/// Non-finite samples (`NaN`, `±∞`) are rejected at construction so that the
/// internal ordering is total. The ECDF is the workhorse behind every CDF
/// figure in the paper (content sizes, popularity, inter-arrival times,
/// session lengths, hit ratios, requests-per-user).
///
/// # Example
///
/// ```
/// use oat_stats::Ecdf;
///
/// let ecdf = Ecdf::from_samples([10.0, 20.0, 30.0, 40.0]);
/// assert_eq!(ecdf.len(), 4);
/// assert_eq!(ecdf.fraction_at_most(25.0), 0.5);
/// assert_eq!(ecdf.quantile(1.0), Some(40.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from an iterator of samples.
    ///
    /// Non-finite samples are silently dropped; use [`Ecdf::try_from_samples`]
    /// to treat them as an error instead.
    pub fn from_samples<I>(samples: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self { sorted }
    }

    /// Builds an ECDF, returning an error if any sample is not finite.
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteSampleError`] carrying the index of the first
    /// offending sample.
    pub fn try_from_samples<I>(samples: I) -> Result<Self, NonFiniteSampleError>
    where
        I: IntoIterator<Item = f64>,
    {
        let mut sorted = Vec::new();
        for (index, x) in samples.into_iter().enumerate() {
            if !x.is_finite() {
                return Err(NonFiniteSampleError { index });
            }
            sorted.push(x);
        }
        sorted.sort_by(|a, b| a.total_cmp(b));
        Ok(Self { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// The largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The arithmetic mean, if any samples exist.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// The median (0.5-quantile), if any samples exist.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Fraction of samples `<= x`; that is, the value `F(x)` of the ECDF.
    ///
    /// Returns `0.0` for an empty ECDF.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s < x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile using the nearest-rank (inverse-CDF) definition.
    ///
    /// `q` is clamped to `[0, 1]`. Returns `None` for an empty ECDF.
    ///
    /// # Example
    ///
    /// ```
    /// use oat_stats::Ecdf;
    /// let e = Ecdf::from_samples([1.0, 2.0, 3.0, 4.0, 5.0]);
    /// assert_eq!(e.quantile(0.0), Some(1.0));
    /// assert_eq!(e.quantile(0.9), Some(5.0));
    /// ```
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Evaluates the ECDF at `points.len()` x-positions, returning `(x, F(x))`
    /// pairs — convenient for rendering a CDF curve.
    pub fn curve<I>(&self, points: I) -> Vec<(f64, f64)>
    where
        I: IntoIterator<Item = f64>,
    {
        points
            .into_iter()
            .map(|x| (x, self.fraction_at_most(x)))
            .collect()
    }

    /// Returns an evenly spaced `(x, F(x))` curve with `n` points covering
    /// `[min, max]`. Returns an empty vector when there are no samples or
    /// `n == 0`.
    pub fn uniform_curve(&self, n: usize) -> Vec<(f64, f64)> {
        let (Some(lo), Some(hi)) = (self.min(), self.max()) else {
            return Vec::new();
        };
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        let step = (hi - lo) / (n - 1) as f64;
        (0..n)
            .map(|i| {
                // Pin the endpoint so F(last) is exactly 1.0 despite rounding.
                let x = if i + 1 == n { hi } else { lo + step * i as f64 };
                (x, self.fraction_at_most(x))
            })
            .collect()
    }

    /// Returns a log-spaced `(x, F(x))` curve with `n` points, useful for the
    /// paper's log-x CDF plots (file sizes, request counts).
    ///
    /// Samples must be positive for a sensible result; the curve starts at
    /// `max(min_sample, f64::MIN_POSITIVE)`.
    pub fn log_curve(&self, n: usize) -> Vec<(f64, f64)> {
        let (Some(lo), Some(hi)) = (self.min(), self.max()) else {
            return Vec::new();
        };
        if n == 0 {
            return Vec::new();
        }
        let lo = lo.max(f64::MIN_POSITIVE);
        let hi = hi.max(lo);
        if n == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        let (llo, lhi) = (lo.ln(), hi.ln());
        let step = (lhi - llo) / (n - 1) as f64;
        (0..n)
            .map(|i| {
                // Pin the endpoint to the exact max so F(last) is 1.0 despite
                // exp/ln round-tripping error.
                let x = if i + 1 == n {
                    hi
                } else {
                    (llo + step * i as f64).exp()
                };
                (x, self.fraction_at_most(x))
            })
            .collect()
    }

    /// A view of the sorted samples.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }
}

impl FromIterator<f64> for Ecdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::from_samples(iter)
    }
}

/// Error returned by [`Ecdf::try_from_samples`] when a sample is not finite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonFiniteSampleError {
    /// Index of the first non-finite sample in the input iterator.
    pub index: usize,
}

impl std::fmt::Display for NonFiniteSampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sample at index {} is not finite", self.index)
    }
}

impl std::error::Error for NonFiniteSampleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ecdf() {
        let e = Ecdf::from_samples([]);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.fraction_at_most(1.0), 0.0);
        assert_eq!(e.min(), None);
        assert_eq!(e.mean(), None);
        assert!(e.uniform_curve(5).is_empty());
    }

    #[test]
    fn single_sample() {
        let e = Ecdf::from_samples([7.0]);
        assert_eq!(e.quantile(0.0), Some(7.0));
        assert_eq!(e.quantile(1.0), Some(7.0));
        assert_eq!(e.fraction_at_most(6.9), 0.0);
        assert_eq!(e.fraction_at_most(7.0), 1.0);
        assert_eq!(e.median(), Some(7.0));
    }

    #[test]
    fn drops_non_finite() {
        let e = Ecdf::from_samples([1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn try_from_rejects_non_finite() {
        let err = Ecdf::try_from_samples([1.0, f64::NAN]).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.to_string().contains("index 1"));
    }

    #[test]
    fn fraction_below_vs_at_most_with_ties() {
        let e = Ecdf::from_samples([1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.fraction_below(2.0), 0.25);
        assert_eq!(e.fraction_at_most(2.0), 0.75);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.quantile(0.25), Some(1.0));
        assert_eq!(e.quantile(0.26), Some(2.0));
        assert_eq!(e.quantile(0.5), Some(2.0));
        assert_eq!(e.quantile(0.75), Some(3.0));
        assert_eq!(e.quantile(1.0), Some(4.0));
        // Out-of-range q is clamped.
        assert_eq!(e.quantile(-1.0), Some(1.0));
        assert_eq!(e.quantile(2.0), Some(4.0));
    }

    #[test]
    fn uniform_curve_spans_range() {
        let e = Ecdf::from_samples([0.0, 10.0]);
        let curve = e.uniform_curve(11);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].0, 0.0);
        assert_eq!(curve[10].0, 10.0);
        assert_eq!(curve[10].1, 1.0);
    }

    #[test]
    fn log_curve_monotone() {
        let e = Ecdf::from_samples((1..=1000).map(|i| i as f64));
        let curve = e.log_curve(20);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn constant_samples_curves() {
        let e = Ecdf::from_samples([5.0, 5.0, 5.0]);
        assert_eq!(e.uniform_curve(4), vec![(5.0, 1.0)]);
        assert_eq!(e.log_curve(4), vec![(5.0, 1.0)]);
    }

    #[test]
    fn from_iterator_collect() {
        let e: Ecdf = [3.0, 1.0, 2.0].into_iter().collect();
        assert_eq!(e.sorted_samples(), &[1.0, 2.0, 3.0]);
    }
}
