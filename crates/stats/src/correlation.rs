//! Pearson and Spearman correlation coefficients.
//!
//! The paper reports a Pearson correlation above 0.9 between object
//! popularity and CDN cache hit ratio; [`pearson`] and [`spearman`] are used
//! to reproduce that check on simulated cache statistics.

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` when the slices differ in length, have fewer than two
/// elements, contain non-finite values, or either sample has zero variance.
///
/// # Example
///
/// ```
/// use oat_stats::pearson;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation of two equal-length samples.
///
/// Ties receive average (fractional) ranks. Returns `None` under the same
/// conditions as [`pearson`].
///
/// # Example
///
/// ```
/// use oat_stats::spearman;
///
/// // Monotone but non-linear relationship: rank correlation is exactly 1.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [1.0, 8.0, 27.0, 64.0];
/// assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = average_ranks(x)?;
    let ry = average_ranks(y)?;
    pearson(&rx, &ry)
}

/// Assigns average ranks (1-based) to a sample, handling ties by averaging.
///
/// Returns `None` if any value is non-finite.
pub fn average_ranks(values: &[f64]) -> Option<Vec<f64>> {
    if values.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j share the same value; average rank is the mean of
        // (i+1)..=(j+1).
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    Some(ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson(&x, &[10.0, 20.0, 30.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &[30.0, 20.0, 10.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_or_short_inputs() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(spearman(&[], &[]), None);
    }

    #[test]
    fn zero_variance() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn non_finite_rejected() {
        assert_eq!(pearson(&[1.0, f64::NAN], &[1.0, 2.0]), None);
        assert_eq!(spearman(&[1.0, f64::INFINITY], &[1.0, 2.0]), None);
    }

    #[test]
    fn uncorrelated_near_zero() {
        // x symmetric, y = x^2: Pearson correlation is exactly 0.
        let x = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn spearman_with_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_ranks_ties() {
        let ranks = average_ranks(&[10.0, 20.0, 20.0, 30.0]).unwrap();
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn average_ranks_all_equal() {
        let ranks = average_ranks(&[5.0; 4]).unwrap();
        assert_eq!(ranks, vec![2.5; 4]);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.exp().min(1e300)).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson is well below 1 for this convex relationship.
        assert!(pearson(&x, &y).unwrap() < 0.9);
    }
}
