//! Two-sample Kolmogorov–Smirnov statistic.
//!
//! Used to quantify how far two empirical distributions diverge — e.g.
//! thumbnail vs full-size image populations, or a measured CDF against a
//! reference shape.

use crate::ecdf::Ecdf;

/// The two-sample KS statistic: the supremum distance between two ECDFs.
///
/// Returns `None` when either sample is empty. The value lies in `[0, 1]`;
/// 0 means identical empirical distributions.
///
/// # Example
///
/// ```
/// use oat_stats::{ks_statistic, Ecdf};
///
/// let a = Ecdf::from_samples([1.0, 2.0, 3.0]);
/// let b = Ecdf::from_samples([1.0, 2.0, 3.0]);
/// assert_eq!(ks_statistic(&a, &b), Some(0.0));
///
/// let c = Ecdf::from_samples([100.0, 200.0]);
/// assert_eq!(ks_statistic(&a, &c), Some(1.0));
/// ```
pub fn ks_statistic(a: &Ecdf, b: &Ecdf) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    // The supremum is attained at a sample point of either distribution;
    // evaluate both CDFs just below and at every merged sample point.
    let mut d: f64 = 0.0;
    for &x in a.sorted_samples().iter().chain(b.sorted_samples()) {
        let at = (a.fraction_at_most(x) - b.fraction_at_most(x)).abs();
        let below = (a.fraction_below(x) - b.fraction_below(x)).abs();
        d = d.max(at).max(below);
    }
    Some(d)
}

/// Asymptotic two-sample KS significance threshold at level `alpha`
/// (commonly 0.05): distributions with a statistic above the returned
/// value differ significantly.
///
/// Returns `None` when either sample size is zero or `alpha` is outside
/// `(0, 1)`.
pub fn ks_threshold(n1: usize, n2: usize, alpha: f64) -> Option<f64> {
    if n1 == 0 || n2 == 0 || !(alpha > 0.0 && alpha < 1.0) {
        return None;
    }
    let c = (-0.5 * (alpha / 2.0).ln()).sqrt();
    let scale = ((n1 + n2) as f64 / (n1 as f64 * n2 as f64)).sqrt();
    Some(c * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_zero() {
        let a = Ecdf::from_samples((0..100).map(|i| i as f64));
        assert_eq!(ks_statistic(&a, &a.clone()), Some(0.0));
    }

    #[test]
    fn disjoint_samples_one() {
        let a = Ecdf::from_samples([1.0, 2.0]);
        let b = Ecdf::from_samples([10.0, 20.0]);
        assert_eq!(ks_statistic(&a, &b), Some(1.0));
    }

    #[test]
    fn empty_is_none() {
        let a = Ecdf::from_samples([1.0]);
        let empty = Ecdf::from_samples([]);
        assert_eq!(ks_statistic(&a, &empty), None);
        assert_eq!(ks_statistic(&empty, &a), None);
    }

    #[test]
    fn shifted_uniform_statistic() {
        // U[0,1] vs U[0.5,1.5]: KS distance is 0.5.
        let a = Ecdf::from_samples((0..1000).map(|i| i as f64 / 1000.0));
        let b = Ecdf::from_samples((0..1000).map(|i| 0.5 + i as f64 / 1000.0));
        let d = ks_statistic(&a, &b).unwrap();
        assert!((d - 0.5).abs() < 0.01, "got {d}");
    }

    #[test]
    fn symmetric() {
        let a = Ecdf::from_samples([1.0, 5.0, 9.0]);
        let b = Ecdf::from_samples([2.0, 5.0, 7.0, 11.0]);
        assert_eq!(ks_statistic(&a, &b), ks_statistic(&b, &a));
    }

    #[test]
    fn threshold_behaviour() {
        let t = ks_threshold(100, 100, 0.05).unwrap();
        assert!((0.1..0.3).contains(&t), "got {t}");
        // More data → tighter threshold.
        assert!(ks_threshold(10_000, 10_000, 0.05).unwrap() < t);
        assert_eq!(ks_threshold(0, 5, 0.05), None);
        assert_eq!(ks_threshold(5, 5, 0.0), None);
        assert_eq!(ks_threshold(5, 5, 1.0), None);
    }

    #[test]
    fn same_distribution_below_threshold() {
        // Two halves of the same uniform stream should not differ
        // significantly.
        let a = Ecdf::from_samples((0..500).map(|i| (i as f64 * 0.618).fract()));
        let b = Ecdf::from_samples((500..1000).map(|i| (i as f64 * 0.618).fract()));
        let d = ks_statistic(&a, &b).unwrap();
        let t = ks_threshold(500, 500, 0.05).unwrap();
        assert!(d < t, "statistic {d} exceeds threshold {t}");
    }
}
