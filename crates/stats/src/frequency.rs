//! Exact frequency tables with concentration summaries.

use std::collections::HashMap;
use std::hash::Hash;

/// An exact counting table over items of type `T`, with share, entropy and
/// ranking summaries.
///
/// Used for per-category request counts (Fig 1/2), device mixes (Fig 4) and
/// HTTP response-code counts (Fig 16).
///
/// # Example
///
/// ```
/// use oat_stats::FrequencyTable;
///
/// let mut t = FrequencyTable::new();
/// t.extend(["video", "video", "image"]);
/// assert_eq!(t.count(&"video"), 2);
/// assert!((t.share(&"video") - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct FrequencyTable<T> {
    counts: HashMap<T, u64>,
    total: u64,
}

impl<T: Eq + Hash> Default for FrequencyTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq + Hash> FrequencyTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Records one occurrence of `item`.
    pub fn add(&mut self, item: T) {
        self.add_weighted(item, 1);
    }

    /// Records `weight` occurrences of `item`.
    pub fn add_weighted(&mut self, item: T, weight: u64) {
        if weight == 0 {
            return;
        }
        *self.counts.entry(item).or_insert(0) += weight;
        self.total += weight;
    }

    /// Count for `item` (zero if unseen).
    pub fn count(&self, item: &T) -> u64 {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// Fraction of all observations that are `item` (zero for an empty table).
    pub fn share(&self, item: &T) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(item) as f64 / self.total as f64
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct items.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterates over `(item, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, u64)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }

    /// Shannon entropy in bits. Zero for empty or single-item tables.
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        self.counts
            .values()
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.log2()
            })
            .sum()
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: FrequencyTable<T>) {
        // oat-lint: allow(determinism-taint) -- per-key addition commutes, state is order-independent
        for (item, count) in other.counts {
            self.add_weighted(item, count);
        }
    }
}

impl<T: Eq + Hash + Clone> FrequencyTable<T> {
    /// Items sorted by descending count (ties broken arbitrarily),
    /// truncated to `n` entries.
    pub fn ranked(&self, n: usize) -> Vec<(T, u64)> {
        let mut v: Vec<(T, u64)> = self.counts.iter().map(|(k, &c)| (k.clone(), c)).collect();
        v.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        v.truncate(n);
        v
    }

    /// All counts as a vector (order unspecified) — handy for Zipf fitting.
    pub fn counts_vec(&self) -> Vec<u64> {
        self.counts.values().copied().collect()
    }
}

impl<T: Eq + Hash> Extend<T> for FrequencyTable<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.add(item);
        }
    }
}

impl<T: Eq + Hash> FromIterator<T> for FrequencyTable<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut t = Self::new();
        t.extend(iter);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table() {
        let t: FrequencyTable<&str> = FrequencyTable::new();
        assert!(t.is_empty());
        assert_eq!(t.count(&"x"), 0);
        assert_eq!(t.share(&"x"), 0.0);
        assert_eq!(t.entropy_bits(), 0.0);
        assert_eq!(t.distinct(), 0);
    }

    #[test]
    fn counting_and_shares() {
        let t: FrequencyTable<char> = "aabbbc".chars().collect();
        assert_eq!(t.count(&'a'), 2);
        assert_eq!(t.count(&'b'), 3);
        assert_eq!(t.total(), 6);
        assert!((t.share(&'b') - 0.5).abs() < 1e-12);
        assert_eq!(t.distinct(), 3);
    }

    #[test]
    fn weighted_and_zero_weight() {
        let mut t = FrequencyTable::new();
        t.add_weighted("x", 5);
        t.add_weighted("y", 0);
        assert_eq!(t.total(), 5);
        assert_eq!(t.distinct(), 1);
    }

    #[test]
    fn ranked_ordering() {
        let t: FrequencyTable<&str> = ["a", "b", "b", "c", "c", "c"].into_iter().collect();
        let ranked = t.ranked(2);
        assert_eq!(ranked[0], ("c", 3));
        assert_eq!(ranked[1], ("b", 2));
        assert_eq!(t.ranked(10).len(), 3);
    }

    #[test]
    fn entropy_uniform_vs_point_mass() {
        let uniform: FrequencyTable<u8> = [0u8, 1, 2, 3].into_iter().collect();
        assert!((uniform.entropy_bits() - 2.0).abs() < 1e-12);
        let point: FrequencyTable<u8> = [7u8, 7, 7].into_iter().collect();
        assert_eq!(point.entropy_bits(), 0.0);
    }

    #[test]
    fn merge_tables() {
        let mut a: FrequencyTable<&str> = ["x", "y"].into_iter().collect();
        let b: FrequencyTable<&str> = ["y", "z"].into_iter().collect();
        a.merge(b);
        assert_eq!(a.count(&"y"), 2);
        assert_eq!(a.total(), 4);
        assert_eq!(a.distinct(), 3);
    }

    #[test]
    fn counts_vec_for_zipf() {
        let t: FrequencyTable<u32> = [1u32, 1, 2].into_iter().collect();
        let mut v = t.counts_vec();
        v.sort_unstable();
        assert_eq!(v, vec![1, 2]);
    }
}
