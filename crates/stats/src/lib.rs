//! Statistical primitives used throughout the `oat` workspace.
//!
//! This crate is a small, dependency-light statistics toolbox covering the
//! descriptive machinery the ICDCS 2016 adult-traffic study leans on:
//!
//! * [`Ecdf`] — empirical cumulative distribution functions (every CDF figure
//!   in the paper: content sizes, popularity, inter-arrival times, session
//!   lengths, hit ratios, requests-per-user).
//! * [`LinearHistogram`] / [`LogHistogram`] — binned views, including the
//!   mode detection used to verify the paper's *bi-modal image size* claim.
//! * [`StreamingStats`] — single-pass Welford moments for large traces.
//! * [`PsquareQuantile`] — constant-memory streaming quantile estimation.
//! * [`zipf`] — rank-frequency power-law fitting for popularity skew.
//! * [`correlation`] — Pearson and Spearman coefficients (the paper reports
//!   a > 0.9 popularity/hit-ratio correlation).
//! * [`SpaceSaving`] — approximate heavy hitters for top-object reporting.
//! * [`FrequencyTable`] — exact counting with entropy/Gini/share summaries.
//!
//! # Example
//!
//! ```
//! use oat_stats::Ecdf;
//!
//! let ecdf = Ecdf::from_samples([4.0, 1.0, 3.0, 2.0]);
//! assert_eq!(ecdf.quantile(0.5), Some(2.0));
//! assert_eq!(ecdf.fraction_at_most(3.0), 0.75);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod correlation;
pub mod ecdf;
pub mod frequency;
pub mod histogram;
pub mod ks;
pub mod psquare;
pub mod streaming;
pub mod topk;
pub mod zipf;

pub use correlation::{pearson, spearman};
pub use ecdf::Ecdf;
pub use frequency::FrequencyTable;
pub use histogram::{Bin, LinearHistogram, LogHistogram};
pub use ks::{ks_statistic, ks_threshold};
pub use psquare::PsquareQuantile;
pub use streaming::StreamingStats;
pub use topk::SpaceSaving;
pub use zipf::{fit_zipf, ZipfFit};
