//! Single-pass streaming moment estimation (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Online mean/variance/min/max over a stream of `f64` values.
///
/// Uses Welford's numerically stable update, and supports merging two
/// accumulators (Chan et al.) so per-shard statistics can be combined.
///
/// # Example
///
/// ```
/// use oat_stats::StreamingStats;
///
/// let mut s = StreamingStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), Some(5.0));
/// assert_eq!(s.population_variance(), Some(4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of (finite) observations pushed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations have been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, if any observations exist.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population variance (dividing by `n`), if any observations exist.
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample variance (dividing by `n - 1`); requires at least 2 samples.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> Option<f64> {
        self.population_variance().map(f64::sqrt)
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Coefficient of variation (population std dev over mean), if defined.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        let mean = self.mean()?;
        if mean == 0.0 {
            return None;
        }
        Some(self.population_std_dev()? / mean.abs())
    }

    /// Merges another accumulator into this one.
    ///
    /// Equivalent to having pushed all of `other`'s observations here.
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for StreamingStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for StreamingStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = StreamingStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.population_variance(), None);
        assert_eq!(s.sample_variance(), None);
    }

    #[test]
    fn single_value() {
        let s: StreamingStats = [3.0].into_iter().collect();
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.population_variance(), Some(0.0));
        assert_eq!(s.sample_variance(), None);
        assert_eq!(s.min(), Some(3.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn ignores_non_finite() {
        let s: StreamingStats = [1.0, f64::NAN, 3.0, f64::NEG_INFINITY]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), Some(2.0));
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 100.0).collect();
        let s: StreamingStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean().unwrap() - mean).abs() < 1e-9);
        assert!((s.population_variance().unwrap() - var).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64 * 1.5).collect();
        let (a_half, b_half) = xs.split_at(123);
        let mut a: StreamingStats = a_half.iter().copied().collect();
        let b: StreamingStats = b_half.iter().copied().collect();
        a.merge(&b);
        let full: StreamingStats = xs.iter().copied().collect();
        assert_eq!(a.count(), full.count());
        assert!((a.mean().unwrap() - full.mean().unwrap()).abs() < 1e-9);
        assert!(
            (a.population_variance().unwrap() - full.population_variance().unwrap()).abs() < 1e-6
        );
        assert_eq!(a.min(), full.min());
        assert_eq!(a.max(), full.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a: StreamingStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&StreamingStats::new());
        assert_eq!(a, before);

        let mut empty = StreamingStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn coefficient_of_variation() {
        let s: StreamingStats = [1.0, 1.0, 1.0].into_iter().collect();
        assert_eq!(s.coefficient_of_variation(), Some(0.0));
        let zero_mean: StreamingStats = [-1.0, 1.0].into_iter().collect();
        assert_eq!(zero_mean.coefficient_of_variation(), None);
    }
}
