//! Property-based tests for `oat-stats` invariants.

use oat_stats::{
    correlation::average_ranks, fit_zipf, pearson, spearman, zipf, Ecdf, LogHistogram,
    PsquareQuantile, SpaceSaving, StreamingStats,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ecdf_is_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let ecdf = Ecdf::from_samples(samples.iter().copied());
        let curve = ecdf.uniform_curve(50);
        for w in curve.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn ecdf_quantile_within_range(samples in prop::collection::vec(-1e6f64..1e6, 1..200),
                                  q in 0.0f64..=1.0) {
        let ecdf = Ecdf::from_samples(samples.iter().copied());
        let v = ecdf.quantile(q).unwrap();
        prop_assert!(v >= ecdf.min().unwrap());
        prop_assert!(v <= ecdf.max().unwrap());
    }

    #[test]
    fn ecdf_fraction_at_most_bounds(samples in prop::collection::vec(-1e3f64..1e3, 0..100),
                                    x in -2e3f64..2e3) {
        let ecdf = Ecdf::from_samples(samples.iter().copied());
        let f = ecdf.fraction_at_most(x);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(ecdf.fraction_below(x) <= f);
    }

    #[test]
    fn streaming_merge_associative(a in prop::collection::vec(-1e4f64..1e4, 0..100),
                                   b in prop::collection::vec(-1e4f64..1e4, 0..100)) {
        let mut merged: StreamingStats = a.iter().copied().collect();
        let sb: StreamingStats = b.iter().copied().collect();
        merged.merge(&sb);
        let sequential: StreamingStats = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.count(), sequential.count());
        if let (Some(m1), Some(m2)) = (merged.mean(), sequential.mean()) {
            prop_assert!((m1 - m2).abs() < 1e-6);
        }
        prop_assert_eq!(merged.min(), sequential.min());
        prop_assert_eq!(merged.max(), sequential.max());
    }

    #[test]
    fn streaming_mean_between_min_max(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s: StreamingStats = samples.iter().copied().collect();
        let mean = s.mean().unwrap();
        prop_assert!(mean >= s.min().unwrap() - 1e-9);
        prop_assert!(mean <= s.max().unwrap() + 1e-9);
        prop_assert!(s.population_variance().unwrap() >= -1e-9);
    }

    #[test]
    fn pearson_bounded_and_symmetric(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = pearson(&y, &x).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }

    #[test]
    fn spearman_invariant_to_monotone_transform(xs in prop::collection::vec(-1e2f64..1e2, 3..50)) {
        let ys: Vec<f64> = xs.iter().map(|v| v * 3.0 + 1.0).collect();
        if let (Some(a), Some(b)) = (spearman(&xs, &ys), spearman(&xs, &xs)) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn average_ranks_sum_preserved(xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let ranks = average_ranks(&xs).unwrap();
        let n = xs.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn zipf_fit_alpha_nonnegative_for_sorted_decay(scale in 100u64..10_000, n in 10usize..200) {
        let counts: Vec<u64> = (1..=n as u64).map(|r| scale / r).collect();
        if let Some(fit) = fit_zipf(&counts) {
            prop_assert!(fit.alpha >= -0.01);
            prop_assert!(fit.r_squared <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn top_share_monotone_in_fraction(counts in prop::collection::vec(1u64..1000, 1..100),
                                      f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let a = zipf::top_share(&counts, lo).unwrap();
        let b = zipf::top_share(&counts, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn gini_in_unit_interval(counts in prop::collection::vec(0u64..1000, 1..100)) {
        if let Some(g) = zipf::gini(&counts) {
            prop_assert!((-1e-9..=1.0).contains(&g));
        }
    }

    #[test]
    fn space_saving_estimate_overcounts(items in prop::collection::vec(0u8..20, 1..500)) {
        let mut ss = SpaceSaving::new(5);
        for &i in &items {
            ss.observe(i);
        }
        for hh in ss.top(5) {
            let truth = items.iter().filter(|&&x| x == hh.item).count() as u64;
            prop_assert!(hh.count >= truth, "estimate must overcount");
            prop_assert!(hh.count - hh.error <= truth, "count - error lower-bounds truth");
        }
        prop_assert_eq!(ss.observed(), items.len() as u64);
    }

    #[test]
    fn psquare_estimate_within_observed_range(samples in prop::collection::vec(-1e4f64..1e4, 1..500),
                                              qi in 1usize..10) {
        let q = qi as f64 / 10.0;
        let mut p = PsquareQuantile::new(q).unwrap();
        for &s in &samples {
            p.push(s);
        }
        let est = p.estimate().unwrap();
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= min - 1e-9);
        prop_assert!(est <= max + 1e-9);
    }

    #[test]
    fn log_histogram_total_conserved(samples in prop::collection::vec(1e-3f64..1e9, 0..300)) {
        let mut h = LogHistogram::base10(-1, 8).unwrap();
        for &s in &samples {
            h.add(s);
        }
        let binned: u64 = h.bins().iter().map(|b| b.count).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), h.total());
        prop_assert_eq!(h.total(), samples.len() as u64);
    }
}
