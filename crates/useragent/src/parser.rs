//! Heuristic user-agent string classification.
//!
//! The rules follow the common convention (and RFC 2616 UA semantics) used
//! by traffic-measurement studies:
//!
//! * `iPhone`/`iPod` ⇒ iOS smartphone; `iPad` ⇒ tablet ⇒ **Misc**.
//! * `Android` with the `Mobile` token ⇒ Android smartphone; `Android`
//!   without `Mobile` ⇒ Android tablet ⇒ **Misc**.
//! * `Windows NT` / `Macintosh` / `X11`/`Linux` ⇒ **Desktop**.
//! * Consoles, smart TVs, bots and unrecognized strings ⇒ **Misc**.

use crate::device::{Browser, Classification, DeviceCategory, Os};

/// Classifies a raw `User-Agent` header value.
///
/// Never fails: unrecognized strings classify as
/// [`DeviceCategory::Misc`] / [`Os::Other`] / [`Browser::Other`].
///
/// # Example
///
/// ```
/// use oat_useragent::{parse, Browser, DeviceCategory, Os};
///
/// let c = parse("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 \
///                (KHTML, like Gecko) Chrome/46.0.2490.86 Safari/537.36");
/// assert_eq!(c.device, DeviceCategory::Desktop);
/// assert_eq!(c.os, Os::Windows);
/// assert_eq!(c.browser, Browser::Chrome);
/// ```
pub fn parse(ua: &str) -> Classification {
    let lower = ua.to_ascii_lowercase();
    let os = parse_os(&lower);
    let browser = parse_browser(&lower);
    let device = parse_device(&lower, os);
    Classification {
        device,
        os,
        browser,
    }
}

fn parse_os(lower: &str) -> Os {
    if lower.contains("windows phone") {
        return Os::Other;
    }
    if lower.contains("android") {
        return Os::Android;
    }
    if lower.contains("iphone") || lower.contains("ipad") || lower.contains("ipod") {
        return Os::Ios;
    }
    if lower.contains("windows nt") || lower.contains("windows 9") {
        return Os::Windows;
    }
    if lower.contains("mac os x") || lower.contains("macintosh") {
        return Os::MacOs;
    }
    if lower.contains("cros") {
        return Os::Other;
    }
    if lower.contains("linux") || lower.contains("x11") {
        return Os::Linux;
    }
    Os::Other
}

fn parse_browser(lower: &str) -> Browser {
    // Order matters: Chrome UAs contain "safari", Opera contains "chrome".
    if lower.contains("opr/") || lower.contains("opera") {
        return Browser::Opera;
    }
    if lower.contains("edge/") || lower.contains("edg/") {
        return Browser::Other;
    }
    if lower.contains("msie") || lower.contains("trident/") {
        return Browser::InternetExplorer;
    }
    if lower.contains("firefox/") && !lower.contains("seamonkey") {
        return Browser::Firefox;
    }
    if lower.contains("chrome/") || lower.contains("crios/") || lower.contains("chromium/") {
        return Browser::Chrome;
    }
    if lower.contains("safari/") {
        return Browser::Safari;
    }
    Browser::Other
}

fn parse_device(lower: &str, os: Os) -> DeviceCategory {
    if is_bot(lower) {
        return DeviceCategory::Misc;
    }
    match os {
        Os::Ios => {
            if lower.contains("ipad") {
                DeviceCategory::Misc // tablets are Misc per the paper
            } else {
                DeviceCategory::Ios
            }
        }
        Os::Android => {
            // The `Mobile` token distinguishes phones from tablets.
            if lower.contains("mobile") {
                DeviceCategory::Android
            } else {
                DeviceCategory::Misc
            }
        }
        Os::Windows | Os::MacOs | Os::Linux => DeviceCategory::Desktop,
        Os::Other => DeviceCategory::Misc,
    }
}

fn is_bot(lower: &str) -> bool {
    const BOT_MARKERS: [&str; 6] = ["bot", "spider", "crawler", "slurp", "curl/", "wget/"];
    BOT_MARKERS.iter().any(|m| lower.contains(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIN_CHROME: &str = "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 \
                              (KHTML, like Gecko) Chrome/45.0.2454.101 Safari/537.36";
    const MAC_SAFARI: &str = "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_11) \
                              AppleWebKit/601.1.56 (KHTML, like Gecko) Version/9.0 Safari/601.1.56";
    const LINUX_FIREFOX: &str = "Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:41.0) \
                                 Gecko/20100101 Firefox/41.0";
    const ANDROID_PHONE: &str = "Mozilla/5.0 (Linux; Android 5.1.1; Nexus 5 Build/LMY48M) \
                                 AppleWebKit/537.36 (KHTML, like Gecko) \
                                 Chrome/46.0.2490.76 Mobile Safari/537.36";
    const ANDROID_TABLET: &str = "Mozilla/5.0 (Linux; Android 5.0.2; SM-T530 Build/LRX22G) \
                                  AppleWebKit/537.36 (KHTML, like Gecko) Chrome/46.0.2490.76 \
                                  Safari/537.36";
    const IPHONE: &str = "Mozilla/5.0 (iPhone; CPU iPhone OS 9_1 like Mac OS X) \
                          AppleWebKit/601.1.46 (KHTML, like Gecko) Version/9.0 \
                          Mobile/13B143 Safari/601.1";
    const IPAD: &str = "Mozilla/5.0 (iPad; CPU OS 9_1 like Mac OS X) AppleWebKit/601.1.46 \
                        (KHTML, like Gecko) Version/9.0 Mobile/13B143 Safari/601.1";
    const IE11: &str = "Mozilla/5.0 (Windows NT 6.3; Trident/7.0; rv:11.0) like Gecko";
    const GOOGLEBOT: &str = "Mozilla/5.0 (compatible; Googlebot/2.1; \
                             +http://www.google.com/bot.html)";

    #[test]
    fn desktop_platforms() {
        for (ua, os, browser) in [
            (WIN_CHROME, Os::Windows, Browser::Chrome),
            (MAC_SAFARI, Os::MacOs, Browser::Safari),
            (LINUX_FIREFOX, Os::Linux, Browser::Firefox),
        ] {
            let c = parse(ua);
            assert_eq!(c.device, DeviceCategory::Desktop, "{ua}");
            assert_eq!(c.os, os, "{ua}");
            assert_eq!(c.browser, browser, "{ua}");
        }
    }

    #[test]
    fn android_phone_vs_tablet() {
        let phone = parse(ANDROID_PHONE);
        assert_eq!(phone.device, DeviceCategory::Android);
        assert_eq!(phone.os, Os::Android);
        let tablet = parse(ANDROID_TABLET);
        assert_eq!(tablet.device, DeviceCategory::Misc);
        assert_eq!(tablet.os, Os::Android);
    }

    #[test]
    fn iphone_vs_ipad() {
        let phone = parse(IPHONE);
        assert_eq!(phone.device, DeviceCategory::Ios);
        assert_eq!(phone.os, Os::Ios);
        assert_eq!(phone.browser, Browser::Safari);
        let tablet = parse(IPAD);
        assert_eq!(tablet.device, DeviceCategory::Misc);
        assert_eq!(tablet.os, Os::Ios);
    }

    #[test]
    fn internet_explorer() {
        let c = parse(IE11);
        assert_eq!(c.browser, Browser::InternetExplorer);
        assert_eq!(c.device, DeviceCategory::Desktop);
    }

    #[test]
    fn bots_are_misc() {
        let c = parse(GOOGLEBOT);
        assert_eq!(c.device, DeviceCategory::Misc);
        let curl = parse("curl/7.43.0");
        assert_eq!(curl.device, DeviceCategory::Misc);
        assert_eq!(curl.browser, Browser::Other);
    }

    #[test]
    fn empty_and_garbage() {
        let c = parse("");
        assert_eq!(c.device, DeviceCategory::Misc);
        assert_eq!(c.os, Os::Other);
        assert_eq!(c.browser, Browser::Other);
        let g = parse("totally unknown agent 1.0");
        assert_eq!(g.device, DeviceCategory::Misc);
    }

    #[test]
    fn opera_detected_before_chrome() {
        let ua = "Mozilla/5.0 (Windows NT 10.0) AppleWebKit/537.36 (KHTML, like Gecko) \
                  Chrome/45.0.2454.85 Safari/537.36 OPR/32.0.1948.69";
        assert_eq!(parse(ua).browser, Browser::Opera);
    }

    #[test]
    fn windows_phone_is_misc() {
        let ua = "Mozilla/5.0 (Windows Phone 10.0; Android 4.2.1; Microsoft; Lumia 950)";
        let c = parse(ua);
        assert_eq!(c.os, Os::Other);
        assert_eq!(c.device, DeviceCategory::Misc);
    }

    #[test]
    fn case_insensitive() {
        let c = parse("MOZILLA/5.0 (WINDOWS NT 10.0) CHROME/46.0 SAFARI/537.36");
        assert_eq!(c.device, DeviceCategory::Desktop);
        assert_eq!(c.browser, Browser::Chrome);
    }
}
