//! Synthetic user-agent corpus generation.
//!
//! `oat-workload` stamps every generated request with a realistic UA string
//! so that the analysis pipeline classifies devices the same way it would on
//! real CDN logs. The corpus is era-appropriate for the paper's 2015/2016
//! collection window.

use crate::device::DeviceCategory;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Relative weights of the four device categories for one website's
/// visitors.
///
/// Weights need not sum to one; they are normalized on use.
///
/// # Example
///
/// ```
/// use oat_useragent::DeviceMix;
///
/// // V-2 in the paper: > 95 % desktop.
/// let mix = DeviceMix::new(0.96, 0.02, 0.01, 0.01).unwrap();
/// assert!((mix.desktop() - 0.96).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceMix {
    desktop: f64,
    android: f64,
    ios: f64,
    misc: f64,
}

impl DeviceMix {
    /// Creates a mix from the four weights.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceMixError`] if any weight is negative or non-finite,
    /// or all weights are zero.
    pub fn new(desktop: f64, android: f64, ios: f64, misc: f64) -> Result<Self, DeviceMixError> {
        let weights = [desktop, android, ios, misc];
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(DeviceMixError::InvalidWeight);
        }
        let total: f64 = weights.iter().sum();
        if total == 0.0 {
            return Err(DeviceMixError::AllZero);
        }
        Ok(Self {
            desktop: desktop / total,
            android: android / total,
            ios: ios / total,
            misc: misc / total,
        })
    }

    /// Normalized desktop share.
    pub fn desktop(&self) -> f64 {
        self.desktop
    }

    /// Normalized Android share.
    pub fn android(&self) -> f64 {
        self.android
    }

    /// Normalized iOS share.
    pub fn ios(&self) -> f64 {
        self.ios
    }

    /// Normalized misc share.
    pub fn misc(&self) -> f64 {
        self.misc
    }

    /// Normalized share of the given category.
    pub fn share(&self, category: DeviceCategory) -> f64 {
        match category {
            DeviceCategory::Desktop => self.desktop,
            DeviceCategory::Android => self.android,
            DeviceCategory::Ios => self.ios,
            DeviceCategory::Misc => self.misc,
        }
    }

    /// Samples a device category according to the mix.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> DeviceCategory {
        let x: f64 = rng.gen();
        if x < self.desktop {
            DeviceCategory::Desktop
        } else if x < self.desktop + self.android {
            DeviceCategory::Android
        } else if x < self.desktop + self.android + self.ios {
            DeviceCategory::Ios
        } else {
            DeviceCategory::Misc
        }
    }
}

impl Default for DeviceMix {
    /// The paper's aggregate shape: desktop-dominated with a non-trivial
    /// mobile fraction.
    fn default() -> Self {
        Self::new(0.75, 0.12, 0.08, 0.05).expect("default weights are valid")
    }
}

/// Error constructing a [`DeviceMix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceMixError {
    /// A weight was negative, NaN or infinite.
    InvalidWeight,
    /// All weights were zero.
    AllZero,
}

impl std::fmt::Display for DeviceMixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            Self::InvalidWeight => "device-mix weights must be finite and non-negative",
            Self::AllZero => "device-mix weights must not all be zero",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for DeviceMixError {}

/// Generator of realistic synthetic user-agent strings.
#[derive(Debug, Clone, Copy, Default)]
pub struct UaCorpus;

const WINDOWS_VERSIONS: [&str; 4] = ["6.1", "6.3", "10.0", "6.2"];
const MAC_VERSIONS: [&str; 3] = ["10_10_5", "10_11_1", "10_9_5"];
const CHROME_VERSIONS: [&str; 4] = [
    "45.0.2454.101",
    "46.0.2490.86",
    "44.0.2403.157",
    "47.0.2526.73",
];
const FIREFOX_VERSIONS: [&str; 3] = ["41.0", "42.0", "40.0.3"];
const ANDROID_VERSIONS: [&str; 4] = ["4.4.2", "5.0.2", "5.1.1", "6.0"];
const ANDROID_PHONES: [&str; 5] = ["Nexus 5", "SM-G920F", "HTC One_M8", "LG-D855", "XT1068"];
const ANDROID_TABLETS: [&str; 3] = ["SM-T530", "Nexus 7", "SM-T800"];
const IOS_VERSIONS: [&str; 3] = ["8_4_1", "9_0_2", "9_1"];

impl UaCorpus {
    /// Creates the corpus generator.
    pub fn new() -> Self {
        Self
    }

    /// Generates a UA string for the given device category.
    ///
    /// The returned string round-trips through [`crate::parse`] back to the
    /// same category (a property the test suite enforces).
    pub fn generate<R: Rng + ?Sized>(&self, category: DeviceCategory, rng: &mut R) -> String {
        match category {
            DeviceCategory::Desktop => self.desktop(rng),
            DeviceCategory::Android => self.android_phone(rng),
            DeviceCategory::Ios => self.iphone(rng),
            DeviceCategory::Misc => self.misc(rng),
        }
    }

    /// Samples a category from `mix` and generates a matching UA string.
    pub fn generate_mixed<R: Rng + ?Sized>(
        &self,
        mix: &DeviceMix,
        rng: &mut R,
    ) -> (DeviceCategory, String) {
        let category = mix.sample(rng);
        (category, self.generate(category, rng))
    }

    fn desktop<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        match rng.gen_range(0..4) {
            0 => {
                let win = pick(&WINDOWS_VERSIONS, rng);
                let chrome = pick(&CHROME_VERSIONS, rng);
                format!(
                    "Mozilla/5.0 (Windows NT {win}; WOW64) AppleWebKit/537.36 \
                     (KHTML, like Gecko) Chrome/{chrome} Safari/537.36"
                )
            }
            1 => {
                let win = pick(&WINDOWS_VERSIONS, rng);
                let ff = pick(&FIREFOX_VERSIONS, rng);
                format!("Mozilla/5.0 (Windows NT {win}; rv:{ff}) Gecko/20100101 Firefox/{ff}")
            }
            2 => {
                let mac = pick(&MAC_VERSIONS, rng);
                format!(
                    "Mozilla/5.0 (Macintosh; Intel Mac OS X {mac}) AppleWebKit/601.1.56 \
                     (KHTML, like Gecko) Version/9.0 Safari/601.1.56"
                )
            }
            _ => {
                let ff = pick(&FIREFOX_VERSIONS, rng);
                format!(
                    "Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:{ff}) Gecko/20100101 Firefox/{ff}"
                )
            }
        }
    }

    fn android_phone<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let os = pick(&ANDROID_VERSIONS, rng);
        let model = pick(&ANDROID_PHONES, rng);
        let chrome = pick(&CHROME_VERSIONS, rng);
        format!(
            "Mozilla/5.0 (Linux; Android {os}; {model} Build/LMY48M) AppleWebKit/537.36 \
             (KHTML, like Gecko) Chrome/{chrome} Mobile Safari/537.36"
        )
    }

    fn iphone<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let os = pick(&IOS_VERSIONS, rng);
        format!(
            "Mozilla/5.0 (iPhone; CPU iPhone OS {os} like Mac OS X) AppleWebKit/601.1.46 \
             (KHTML, like Gecko) Version/9.0 Mobile/13B143 Safari/601.1"
        )
    }

    fn misc<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        match rng.gen_range(0..3) {
            0 => {
                let os = pick(&IOS_VERSIONS, rng);
                format!(
                    "Mozilla/5.0 (iPad; CPU OS {os} like Mac OS X) AppleWebKit/601.1.46 \
                     (KHTML, like Gecko) Version/9.0 Mobile/13B143 Safari/601.1"
                )
            }
            1 => {
                let os = pick(&ANDROID_VERSIONS, rng);
                let model = pick(&ANDROID_TABLETS, rng);
                let chrome = pick(&CHROME_VERSIONS, rng);
                format!(
                    "Mozilla/5.0 (Linux; Android {os}; {model} Build/LRX22G) AppleWebKit/537.36 \
                     (KHTML, like Gecko) Chrome/{chrome} Safari/537.36"
                )
            }
            _ => "Mozilla/5.0 (PlayStation 4 3.11) AppleWebKit/537.73 (KHTML, like Gecko)"
                .to_string(),
        }
    }
}

fn pick<'a, R: Rng + ?Sized>(options: &[&'a str], rng: &mut R) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mix_rejects_bad_weights() {
        assert_eq!(
            DeviceMix::new(-1.0, 0.0, 0.0, 0.0).unwrap_err(),
            DeviceMixError::InvalidWeight
        );
        assert_eq!(
            DeviceMix::new(f64::NAN, 0.0, 0.0, 0.0).unwrap_err(),
            DeviceMixError::InvalidWeight
        );
        assert_eq!(
            DeviceMix::new(0.0, 0.0, 0.0, 0.0).unwrap_err(),
            DeviceMixError::AllZero
        );
    }

    #[test]
    fn mix_normalizes() {
        let mix = DeviceMix::new(3.0, 1.0, 0.0, 0.0).unwrap();
        assert!((mix.desktop() - 0.75).abs() < 1e-12);
        assert!((mix.android() - 0.25).abs() < 1e-12);
        assert_eq!(mix.share(DeviceCategory::Ios), 0.0);
        let total = DeviceCategory::ALL
            .iter()
            .map(|&c| mix.share(c))
            .sum::<f64>();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_respects_weights() {
        let mix = DeviceMix::new(0.8, 0.1, 0.05, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(mix.sample(&mut rng)).or_insert(0u32) += 1;
        }
        let desktop = counts[&DeviceCategory::Desktop] as f64 / 20_000.0;
        assert!((desktop - 0.8).abs() < 0.02, "desktop share {desktop}");
    }

    #[test]
    fn generated_uas_roundtrip_through_parser() {
        let corpus = UaCorpus::new();
        let mut rng = StdRng::seed_from_u64(7);
        for category in DeviceCategory::ALL {
            for _ in 0..200 {
                let ua = corpus.generate(category, &mut rng);
                let parsed = parse(&ua);
                assert_eq!(parsed.device, category, "UA {ua:?} parsed as {parsed:?}");
            }
        }
    }

    #[test]
    fn generate_mixed_consistent() {
        let corpus = UaCorpus::new();
        let mix = DeviceMix::default();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let (category, ua) = corpus.generate_mixed(&mix, &mut rng);
            assert_eq!(parse(&ua).device, category);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = UaCorpus::new();
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..50)
                .map(|_| corpus.generate(DeviceCategory::Desktop, &mut rng))
                .collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..50)
                .map(|_| corpus.generate(DeviceCategory::Desktop, &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }
}
