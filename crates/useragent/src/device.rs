//! Device, OS and browser taxonomies.

use serde::{Deserialize, Serialize};

/// The four device categories the paper reports (Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceCategory {
    /// Traditional desktop/laptop browsers.
    Desktop,
    /// Android smartphones.
    Android,
    /// iPhones and iPods.
    Ios,
    /// Tablets, smart TVs, consoles, bots and anything else.
    Misc,
}

impl DeviceCategory {
    /// All categories, in the paper's reporting order.
    pub const ALL: [DeviceCategory; 4] = [
        DeviceCategory::Desktop,
        DeviceCategory::Android,
        DeviceCategory::Ios,
        DeviceCategory::Misc,
    ];
}

impl std::fmt::Display for DeviceCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceCategory::Desktop => "Desktop",
            DeviceCategory::Android => "Android",
            DeviceCategory::Ios => "iOS",
            DeviceCategory::Misc => "Misc",
        };
        f.write_str(s)
    }
}

/// Operating system extracted from a user-agent string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Os {
    /// Microsoft Windows.
    Windows,
    /// Apple macOS / OS X.
    MacOs,
    /// Desktop Linux (non-Android).
    Linux,
    /// Google Android.
    Android,
    /// Apple iOS (iPhone/iPad/iPod).
    Ios,
    /// Anything else (consoles, TVs, bots, unknown).
    Other,
}

impl std::fmt::Display for Os {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Os::Windows => "Windows",
            Os::MacOs => "macOS",
            Os::Linux => "Linux",
            Os::Android => "Android",
            Os::Ios => "iOS",
            Os::Other => "Other",
        };
        f.write_str(s)
    }
}

/// Browser family extracted from a user-agent string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Browser {
    /// Google Chrome / Chromium.
    Chrome,
    /// Mozilla Firefox.
    Firefox,
    /// Apple Safari.
    Safari,
    /// Microsoft Internet Explorer.
    InternetExplorer,
    /// Opera.
    Opera,
    /// Anything else.
    Other,
}

impl std::fmt::Display for Browser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Browser::Chrome => "Chrome",
            Browser::Firefox => "Firefox",
            Browser::Safari => "Safari",
            Browser::InternetExplorer => "IE",
            Browser::Opera => "Opera",
            Browser::Other => "Other",
        };
        f.write_str(s)
    }
}

/// Full classification of one user-agent string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Classification {
    /// Paper-style device category.
    pub device: DeviceCategory,
    /// Operating system.
    pub os: Os,
    /// Browser family.
    pub browser: Browser,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert_eq!(DeviceCategory::Ios.to_string(), "iOS");
        assert_eq!(Os::MacOs.to_string(), "macOS");
        assert_eq!(Browser::InternetExplorer.to_string(), "IE");
    }

    #[test]
    fn all_categories_distinct() {
        let set: std::collections::HashSet<_> = DeviceCategory::ALL.into_iter().collect();
        assert_eq!(set.len(), 4);
    }
}
