//! User-agent parsing and synthetic UA corpus generation.
//!
//! The paper (§III, Fig 4) classifies requests into **Desktop / Android /
//! iOS / Misc** device categories from the HTTP `User-Agent` header. Real
//! CDN logs carry raw UA strings, so this crate provides:
//!
//! * [`parse`] — a heuristic UA-string classifier producing a
//!   [`Classification`] (device category, OS, browser),
//! * [`corpus`] — a generator of realistic synthetic UA strings with a
//!   configurable device mix, used by `oat-workload` so the analysis
//!   pipeline exercises genuine string parsing rather than enum tags.
//!
//! # Example
//!
//! ```
//! use oat_useragent::{parse, DeviceCategory};
//!
//! let c = parse("Mozilla/5.0 (iPhone; CPU iPhone OS 9_1 like Mac OS X) \
//!                AppleWebKit/601.1.46 (KHTML, like Gecko) Version/9.0 \
//!                Mobile/13B143 Safari/601.1");
//! assert_eq!(c.device, DeviceCategory::Ios);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod device;
pub mod parser;

pub use corpus::{DeviceMix, UaCorpus};
pub use device::{Browser, Classification, DeviceCategory, Os};
pub use parser::parse;
