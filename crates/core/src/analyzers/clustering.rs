//! Figures 8–10 — DTW clustering of per-object request time series.
//!
//! The paper's methodology (§IV-B): per-object hourly request-count series
//! are normalized, pairwise-compared with Dynamic Time Warping, clustered
//! with agglomerative hierarchical clustering (dendrograms, Fig 8), and
//! each cluster is summarized by its medoid with a point-wise
//! standard-deviation envelope (Figs 9–10). Clusters map onto diurnal,
//! long-lived, short-lived (and for P-2 flash-crowd) popularity trends.

use super::Analyzer;
use oat_httplog::{ContentClass, LogRecord, ObjectId, PublisherId, UserId};
use oat_timeseries::{
    classify_trend, cluster_envelope, distance::pairwise_matrix_with_threads, hierarchical,
    kmedoids, normalize, Linkage, Merge, Metric, TrendClass,
};
use serde::{Deserialize, Serialize};
// Accumulators only: finish() sorts candidates by (count, ObjectId)
// before any order-sensitive step. oat-lint: allow(ordered-output)
use std::collections::HashMap;

/// Configuration of the clustering pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// Cluster the top-N objects by request count (the paper clusters the
    /// objects with enough signal; the long tail has too few requests to
    /// carry shape).
    pub max_objects: usize,
    /// Minimum requests for an object to participate.
    pub min_requests: u64,
    /// Number of clusters to cut the dendrogram into.
    pub k: usize,
    /// Sakoe–Chiba band half-width (hours) for DTW.
    pub band: Option<usize>,
    /// Linkage criterion.
    pub linkage: Linkage,
    /// Moving-average half-width (hours) applied before DTW; smooths the
    /// Poisson sparseness of per-object hourly counts.
    pub smooth_half_width: usize,
    /// Worker threads for the pairwise DTW matrix (0 = all available
    /// cores). A throughput knob only: the matrix — and hence every
    /// downstream cluster assignment — is bit-identical at any setting.
    #[serde(default)]
    pub threads: usize,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        Self {
            max_objects: 150,
            min_requests: 24,
            k: 5,
            band: Some(24),
            linkage: Linkage::Ward,
            smooth_half_width: 3,
            threads: 0,
        }
    }
}

/// One recovered cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSummary {
    /// Number of member objects.
    pub size: usize,
    /// Share of the clustered objects (the percentages on Fig 8's x-axis).
    pub share: f64,
    /// Trend label of the medoid (diurnal / long-lived / short-lived /
    /// flash-crowd / outlier).
    pub label: TrendClass,
    /// Normalized medoid request series (Fig 9/10 solid line).
    pub medoid: Vec<f64>,
    /// Point-wise standard deviation (Fig 9/10 shaded envelope).
    pub std_dev: Vec<f64>,
}

/// The Figure 8–10 report for one (site, class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteringReport {
    /// Site code.
    pub code: String,
    /// Content class clustered.
    pub class: ContentClass,
    /// Objects that participated.
    pub clustered_objects: usize,
    /// Clusters, largest first.
    pub clusters: Vec<ClusterSummary>,
    /// Dendrogram merges (ascending distance) for Fig 8 rendering.
    pub merges: Vec<Merge>,
    /// Mean silhouette coefficient of the cut (`None` for degenerate cuts)
    /// — how separated the recovered clusters are.
    pub silhouette: Option<f64>,
}

impl ClusteringReport {
    /// The distinct trend labels recovered.
    pub fn labels(&self) -> Vec<TrendClass> {
        let mut seen = Vec::new();
        for c in &self.clusters {
            if !seen.contains(&c.label) {
                seen.push(c.label);
            }
        }
        seen
    }
}

/// Streaming analyzer for Figures 8–10, targeting one (site, class).
#[derive(Debug)]
pub struct ClusteringAnalyzer {
    publisher: PublisherId,
    code: String,
    class: ContentClass,
    trace_start: u64,
    hours: usize,
    config: ClusteringConfig,
    counts: HashMap<ObjectId, SparseSeries>, // oat-lint: allow(ordered-output)
    /// Dedup set so one viewer's chunk burst counts as a single viewing
    /// event per hour (raw 206 bursts would otherwise drown the temporal
    /// shape in multiplicative noise).
    seen: std::collections::HashSet<(ObjectId, u32, UserId)>, // oat-lint: allow(ordered-output)
}

#[derive(Debug, Default)]
struct SparseSeries {
    total: u64,
    by_hour: HashMap<u32, u32>, // oat-lint: allow(ordered-output)
}

impl ClusteringAnalyzer {
    /// Creates an analyzer for `publisher`/`class` over a trace starting at
    /// `trace_start` and spanning `hours` hours.
    pub fn new(
        publisher: PublisherId,
        code: impl Into<String>,
        class: ContentClass,
        trace_start: u64,
        hours: usize,
        config: ClusteringConfig,
    ) -> Self {
        Self {
            publisher,
            code: code.into(),
            class,
            trace_start,
            hours: hours.max(1),
            config,
            counts: HashMap::new(), // oat-lint: allow(ordered-output)
            seen: std::collections::HashSet::new(), // oat-lint: allow(ordered-output)
        }
    }
}

impl Analyzer for ClusteringAnalyzer {
    type Output = ClusteringReport;

    // Cross-record state (not a pure incremental fold): the streaming
    // pipeline replays this analyzer from the on-disk record spool.
    fn needs_replay(&self) -> bool {
        true
    }

    fn observe(&mut self, record: &LogRecord) {
        if record.publisher != self.publisher
            || record.content_class() != self.class
            || !record.status.carries_body()
        {
            return;
        }
        let hour = (record.timestamp.saturating_sub(self.trace_start) / 3600) as u32;
        if hour as usize >= self.hours {
            return;
        }
        // One viewing event per (object, hour, user): chunked playback and
        // page reloads collapse to a single sample of the popularity curve.
        if !self.seen.insert((record.object, hour, record.user)) {
            return;
        }
        let series = self.counts.entry(record.object).or_default();
        series.total += 1;
        *series.by_hour.entry(hour).or_insert(0) += 1;
    }

    fn finish(self) -> ClusteringReport {
        // Select the top-N objects with enough requests.
        let mut candidates: Vec<(&ObjectId, &SparseSeries)> = self
            .counts
            .iter()
            .filter(|(_, s)| s.total >= self.config.min_requests)
            .collect();
        candidates.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(b.0)));
        candidates.truncate(self.config.max_objects);

        let empty = ClusteringReport {
            code: self.code.clone(),
            class: self.class,
            clustered_objects: candidates.len(),
            clusters: Vec::new(),
            merges: Vec::new(),
            silhouette: None,
        };
        if candidates.len() < 2 {
            return empty;
        }

        // Densify and sum-normalize.
        let series: Vec<Vec<f64>> = candidates
            .iter()
            .map(|(_, s)| {
                let mut dense = vec![0.0f64; self.hours];
                for (&h, &c) in &s.by_hour {
                    dense[h as usize] = c as f64;
                }
                let smoothed = normalize::moving_average(&dense, self.config.smooth_half_width);
                normalize::sum_normalize(&smoothed).unwrap_or(smoothed)
            })
            .collect();

        let Some(matrix) = pairwise_matrix_with_threads(
            &series,
            Metric::Dtw {
                band: self.config.band,
            },
            self.config.threads,
        ) else {
            return empty;
        };
        let dendrogram = hierarchical::cluster(&matrix, self.config.linkage);
        let k = self.config.k.min(series.len());
        let labels = dendrogram.cut_k(k);
        let silhouette = kmedoids::silhouette(&matrix, &labels);
        let groups = dendrogram.clusters_k(k);

        let clusters = groups
            .iter()
            .filter_map(|members| {
                let env = cluster_envelope(&series, &matrix, members)?;
                // Label from the medoid — the most central member — as the
                // paper does when interpreting Figs 9/10.
                let label = classify_trend(&env.medoid, 24);
                Some(ClusterSummary {
                    size: members.len(),
                    share: members.len() as f64 / series.len() as f64,
                    label,
                    medoid: env.medoid,
                    std_dev: env.std_dev,
                })
            })
            .collect();

        ClusteringReport {
            code: self.code,
            class: self.class,
            clustered_objects: series.len(),
            clusters,
            merges: dendrogram.merges().to_vec(),
            silhouette,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::FileFormat;

    const HOURS: usize = 168;

    /// Builds synthetic records for one object following an hourly pattern;
    /// each repetition comes from a distinct user so the analyzer's
    /// unique-viewer dedup keeps the full count.
    fn records_for(object: u64, pattern: impl Fn(usize) -> u32) -> Vec<LogRecord> {
        let mut out = Vec::new();
        for h in 0..HOURS {
            for k in 0..pattern(h) {
                out.push(LogRecord {
                    publisher: PublisherId::new(2),
                    object: ObjectId::new(object),
                    format: FileFormat::Mp4,
                    timestamp: (h * 3600 + k as usize * 60) as u64,
                    user: UserId::new(1000 + k as u64),
                    ..LogRecord::example()
                });
            }
        }
        out
    }

    fn analyzer(config: ClusteringConfig) -> ClusteringAnalyzer {
        ClusteringAnalyzer::new(
            PublisherId::new(2),
            "V-2",
            ContentClass::Video,
            0,
            HOURS,
            config,
        )
    }

    #[test]
    fn recovers_planted_clusters() {
        let mut records = Vec::new();
        // Five diurnal objects.
        for obj in 0..5 {
            records.extend(records_for(obj, |h| if h % 24 < 6 { 4 } else { 1 }));
        }
        // Five short-lived objects (die within the first day).
        for obj in 10..15 {
            records.extend(records_for(obj, |h| if h < 8 { 20 } else { 0 }));
        }
        // Five flash-crowd objects (mid-week spike).
        for obj in 20..25 {
            records.extend(records_for(
                obj,
                |h| if (80..88).contains(&h) { 20 } else { 0 },
            ));
        }
        records.sort_by_key(|r| r.timestamp);

        let config = ClusteringConfig {
            k: 3,
            min_requests: 10,
            ..Default::default()
        };
        let report = run_analyzer(analyzer(config), &records);
        assert_eq!(report.clustered_objects, 15);
        assert_eq!(report.clusters.len(), 3);
        let labels = report.labels();
        assert!(labels.contains(&TrendClass::Diurnal), "labels {labels:?}");
        assert!(
            labels.contains(&TrendClass::ShortLived),
            "labels {labels:?}"
        );
        assert!(
            labels.contains(&TrendClass::FlashCrowd),
            "labels {labels:?}"
        );
        // Each cluster holds exactly its planted family.
        for c in &report.clusters {
            assert_eq!(
                c.size,
                5,
                "cluster sizes {:?}",
                report.clusters.iter().map(|c| c.size).collect::<Vec<_>>()
            );
            assert!((c.share - 1.0 / 3.0).abs() < 1e-9);
            assert_eq!(c.medoid.len(), HOURS);
            assert_eq!(c.std_dev.len(), HOURS);
        }
        assert_eq!(report.merges.len(), 14);
    }

    #[test]
    fn thread_count_does_not_change_report() {
        let mut records = Vec::new();
        for obj in 0..4 {
            records.extend(records_for(obj, |h| if h % 24 < 6 { 4 } else { 1 }));
        }
        for obj in 10..14 {
            records.extend(records_for(obj, |h| if h < 8 { 20 } else { 0 }));
        }
        records.sort_by_key(|r| r.timestamp);
        let config = |threads| ClusteringConfig {
            k: 2,
            min_requests: 10,
            threads,
            ..Default::default()
        };
        let serial = run_analyzer(analyzer(config(1)), &records);
        for threads in [0, 2, 8] {
            let parallel = run_analyzer(analyzer(config(threads)), &records);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn filters_low_signal_objects() {
        let mut records = records_for(1, |h| if h < 4 { 30 } else { 0 });
        // One object with a single request: below min_requests.
        records.push(LogRecord {
            publisher: PublisherId::new(2),
            object: ObjectId::new(99),
            format: FileFormat::Mp4,
            timestamp: 50,
            ..LogRecord::example()
        });
        let report = run_analyzer(
            analyzer(ClusteringConfig {
                min_requests: 10,
                ..Default::default()
            }),
            &records,
        );
        // Only one candidate remains → empty clustering.
        assert_eq!(report.clustered_objects, 1);
        assert!(report.clusters.is_empty());
    }

    #[test]
    fn ignores_other_publishers_classes_and_bodyless() {
        let mut records = records_for(1, |_| 1);
        for r in &mut records {
            r.publisher = PublisherId::new(9); // wrong publisher
        }
        let mut more = records_for(2, |_| 1);
        for r in &mut more {
            r.format = FileFormat::Jpg; // wrong class
        }
        records.extend(more);
        let mut bodyless = records_for(3, |_| 1);
        for r in &mut bodyless {
            r.status = oat_httplog::HttpStatus::NOT_MODIFIED;
        }
        records.extend(bodyless);
        let report = run_analyzer(analyzer(Default::default()), &records);
        assert_eq!(report.clustered_objects, 0);
        assert!(report.clusters.is_empty());
    }

    #[test]
    fn empty_input() {
        let report = run_analyzer(analyzer(Default::default()), &[]);
        assert_eq!(report.clustered_objects, 0);
        assert!(report.clusters.is_empty());
        assert!(report.merges.is_empty());
        assert!(report.labels().is_empty());
    }
}
