//! Figure 15 — CDN cache hit ratios.
//!
//! Per-object hit-ratio distributions (video vs image), the overall per-site
//! hit ratio (the paper reports 80–90 %), and the popularity↔hit-ratio
//! correlation (the paper reports > 0.9, computed here over popularity
//! deciles to match an aggregate-level correlation).

use super::Analyzer;
use crate::sitemap::SiteMap;
use oat_httplog::{ContentClass, LogRecord, ObjectId};
use oat_stats::{spearman, Ecdf};
use serde::{Deserialize, Serialize};
// Per-object hit accumulator; finish() reduces values into sorted
// Ecdfs and summary scalars. oat-lint: allow(ordered-output)
use std::collections::HashMap;

/// Hit-ratio distribution for one (site, class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HitRatioDistribution {
    /// Site code.
    pub code: String,
    /// ECDF over per-object hit ratios.
    pub ecdf: Ecdf,
    /// Objects measured.
    pub objects: u64,
}

impl HitRatioDistribution {
    /// Mean per-object hit ratio.
    pub fn mean(&self) -> Option<f64> {
        self.ecdf.mean()
    }
}

/// Site-level cache summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteCacheSummary {
    /// Site code.
    pub code: String,
    /// Overall hit ratio over body-carrying requests.
    pub overall_hit_ratio: Option<f64>,
    /// Spearman rank correlation between popularity decile and the
    /// decile's aggregate hit ratio (rank-based, robust to the saturating
    /// shape of hit-ratio curves).
    pub popularity_correlation: Option<f64>,
}

/// The Figure 15 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheReport {
    /// Per-site video hit-ratio distributions (Fig 15b).
    pub video: Vec<HitRatioDistribution>,
    /// Per-site image hit-ratio distributions (Fig 15a).
    pub image: Vec<HitRatioDistribution>,
    /// Per-site summaries.
    pub summaries: Vec<SiteCacheSummary>,
}

impl CacheReport {
    /// Distribution for one (site, class).
    pub fn site(&self, code: &str, class: ContentClass) -> Option<&HitRatioDistribution> {
        let list = match class {
            ContentClass::Video => &self.video,
            ContentClass::Image => &self.image,
            ContentClass::Other => return None,
        };
        list.iter().find(|d| d.code == code)
    }

    /// Summary for one site.
    pub fn summary(&self, code: &str) -> Option<&SiteCacheSummary> {
        self.summaries.iter().find(|s| s.code == code)
    }
}

/// Streaming analyzer for Figure 15 (consumes records that already carry
/// cache statuses, i.e. post-`oat-cdnsim`).
#[derive(Debug)]
pub struct CacheAnalyzer {
    map: SiteMap,
    per_object: Vec<HashMap<ObjectId, ObjectHits>>, // oat-lint: allow(ordered-output)
}

#[derive(Debug, Default, Clone, Copy)]
struct ObjectHits {
    class: Option<ContentClass>,
    hits: u64,
    total: u64,
}

impl CacheAnalyzer {
    /// Creates an analyzer for the sites in `map`.
    pub fn new(map: SiteMap) -> Self {
        let n = map.len();
        Self {
            map,
            per_object: vec![HashMap::new(); n], // oat-lint: allow(ordered-output)
        }
    }
}

impl Analyzer for CacheAnalyzer {
    type Output = CacheReport;

    // Cross-record state (not a pure incremental fold): the streaming
    // pipeline replays this analyzer from the on-disk record spool.
    fn needs_replay(&self) -> bool {
        true
    }

    fn observe(&mut self, record: &LogRecord) {
        if !record.status.carries_body() {
            return;
        }
        let Some(site) = self.map.index(record.publisher) else {
            return;
        };
        let entry = self.per_object[site].entry(record.object).or_default();
        entry.class.get_or_insert(record.content_class());
        entry.total += 1;
        entry.hits += u64::from(record.cache_status.is_hit());
    }

    fn finish(self) -> CacheReport {
        let mut video = Vec::with_capacity(self.map.len());
        let mut image = Vec::with_capacity(self.map.len());
        let mut summaries = Vec::with_capacity(self.map.len());
        for (i, publisher) in self.map.publishers().enumerate() {
            let code = self
                .map
                .code(publisher)
                .expect("publisher in map")
                .to_string();
            for (class, out) in [
                (ContentClass::Video, &mut video),
                (ContentClass::Image, &mut image),
            ] {
                let ratios: Vec<f64> = self.per_object[i]
                    .values()
                    .filter(|o| o.class == Some(class) && o.total > 0)
                    .map(|o| o.hits as f64 / o.total as f64)
                    .collect();
                out.push(HitRatioDistribution {
                    code: code.clone(),
                    objects: ratios.len() as u64,
                    ecdf: Ecdf::from_samples(ratios),
                });
            }
            summaries.push(site_summary(code, self.per_object[i].values()));
        }
        CacheReport {
            video,
            image,
            summaries,
        }
    }
}

fn site_summary<'a, I>(code: String, objects: I) -> SiteCacheSummary
where
    I: Iterator<Item = &'a ObjectHits>,
{
    let mut all: Vec<(u64, u64)> = objects
        .filter(|o| o.total > 0)
        .map(|o| (o.total, o.hits))
        .collect();
    let total: u64 = all.iter().map(|(t, _)| t).sum();
    let hits: u64 = all.iter().map(|(_, h)| h).sum();
    let overall_hit_ratio = (total > 0).then(|| hits as f64 / total as f64);

    // Decile-binned popularity vs aggregate hit ratio. The sort key must be
    // total — ties broken by hits — so decile membership is deterministic
    // regardless of HashMap iteration order.
    let popularity_correlation = if all.len() >= 20 {
        all.sort_unstable_by_key(|&(t, h)| (t, h));
        let deciles = 10;
        let per = all.len() / deciles;
        let mut xs = Vec::with_capacity(deciles);
        let mut ys = Vec::with_capacity(deciles);
        for d in 0..deciles {
            let lo = d * per;
            let hi = if d + 1 == deciles {
                all.len()
            } else {
                (d + 1) * per
            };
            let slice = &all[lo..hi];
            let t: u64 = slice.iter().map(|(t, _)| t).sum();
            let h: u64 = slice.iter().map(|(_, h)| h).sum();
            if t > 0 {
                xs.push(d as f64);
                ys.push(h as f64 / t as f64);
            }
        }
        spearman(&xs, &ys)
    } else {
        None
    };

    SiteCacheSummary {
        code,
        overall_hit_ratio,
        popularity_correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::{CacheStatus, FileFormat, HttpStatus, PublisherId};

    fn record(publisher: u16, object: u64, format: FileFormat, hit: bool) -> LogRecord {
        LogRecord {
            publisher: PublisherId::new(publisher),
            object: ObjectId::new(object),
            format,
            cache_status: if hit {
                CacheStatus::Hit
            } else {
                CacheStatus::Miss
            },
            status: HttpStatus::OK,
            ..LogRecord::example()
        }
    }

    #[test]
    fn per_object_ratios() {
        let records = vec![
            record(1, 1, FileFormat::Mp4, false),
            record(1, 1, FileFormat::Mp4, true),
            record(1, 1, FileFormat::Mp4, true),
            record(1, 2, FileFormat::Jpg, false),
        ];
        let report = run_analyzer(CacheAnalyzer::new(SiteMap::paper_five()), &records);
        let v1_video = report.site("V-1", ContentClass::Video).unwrap();
        assert_eq!(v1_video.objects, 1);
        assert!((v1_video.mean().unwrap() - 2.0 / 3.0).abs() < 1e-9);
        let v1_image = report.site("V-1", ContentClass::Image).unwrap();
        assert_eq!(v1_image.mean(), Some(0.0));
        let summary = report.summary("V-1").unwrap();
        assert_eq!(summary.overall_hit_ratio, Some(0.5));
    }

    #[test]
    fn bodyless_records_ignored() {
        let mut r = record(1, 1, FileFormat::Mp4, true);
        r.status = HttpStatus::NOT_MODIFIED;
        let report = run_analyzer(CacheAnalyzer::new(SiteMap::paper_five()), &[r]);
        assert_eq!(report.site("V-1", ContentClass::Video).unwrap().objects, 0);
        assert_eq!(report.summary("V-1").unwrap().overall_hit_ratio, None);
    }

    #[test]
    fn popularity_correlation_positive_when_popular_hits_more() {
        let mut records = Vec::new();
        for obj in 0..100u64 {
            let requests = 1 + obj; // popularity grows with id
            for k in 0..requests {
                // First request misses, the rest hit → popular objects have
                // higher ratios.
                records.push(record(3, obj, FileFormat::Jpg, k > 0));
            }
        }
        let report = run_analyzer(CacheAnalyzer::new(SiteMap::paper_five()), &records);
        let corr = report
            .summary("P-1")
            .unwrap()
            .popularity_correlation
            .unwrap();
        assert!(corr > 0.9, "decile correlation {corr}");
    }

    #[test]
    fn correlation_needs_enough_objects() {
        let records = vec![record(1, 1, FileFormat::Mp4, true)];
        let report = run_analyzer(CacheAnalyzer::new(SiteMap::paper_five()), &records);
        assert!(report
            .summary("V-1")
            .unwrap()
            .popularity_correlation
            .is_none());
    }
}
