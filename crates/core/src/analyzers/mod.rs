//! One streaming analyzer per paper figure.
//!
//! Every analyzer implements [`Analyzer`]: it consumes records one at a
//! time (`observe`) and produces its figure's data on `finish`. The
//! analyzers are mutually independent, so the
//! [`experiment`](crate::experiment) runner fans them out over scoped
//! threads, each streaming the shared record slice once.

use oat_httplog::LogRecord;

pub mod addiction;
pub mod aging;
pub mod availability;
pub mod cache;
pub mod clustering;
pub mod composition;
pub mod device;
pub mod iat;
pub mod popularity;
pub mod response;
pub mod sessions;
pub mod sizes;
pub mod temporal;

/// A single-pass streaming analyzer.
pub trait Analyzer {
    /// The figure data produced when the stream ends.
    type Output;

    /// Consumes one record.
    fn observe(&mut self, record: &LogRecord);

    /// Consumes a batch of records. The default forwards to [`observe`]
    /// record by record; analyzers with a cheaper batched path may
    /// override it, provided the result is identical.
    ///
    /// [`observe`]: Analyzer::observe
    fn observe_batch(&mut self, records: &[LogRecord]) {
        for r in records {
            self.observe(r);
        }
    }

    /// Finalizes and returns the figure data.
    fn finish(self) -> Self::Output;
}

/// Marker for analyzers that are truly single-pass: their output depends
/// only on the folded observation sequence, never on holding the whole
/// record set. These are safe to feed incrementally from the streaming
/// pipeline ([`crate::experiment::run_streaming`]) while the records that
/// produced earlier batches are no longer addressable.
pub trait StreamAnalyzer: Analyzer {}

/// Runs one analyzer over a record slice (convenience for tests/benches).
pub fn run_analyzer<A: Analyzer>(mut analyzer: A, records: &[LogRecord]) -> A::Output {
    analyzer.observe_batch(records);
    analyzer.finish()
}

/// Runs one analyzer over a chunked record set (the retained copy kept by
/// the streaming pipeline). Equivalent to [`run_analyzer`] over the
/// concatenation of the chunks.
pub fn run_analyzer_chunks<A: Analyzer>(
    mut analyzer: A,
    chunks: &[std::sync::Arc<Vec<LogRecord>>],
) -> A::Output {
    for chunk in chunks {
        analyzer.observe_batch(chunk);
    }
    analyzer.finish()
}
