//! One streaming analyzer per paper figure.
//!
//! Every analyzer implements [`Analyzer`]: it consumes records one at a
//! time (`observe`) and produces its figure's data on `finish`. The
//! analyzers are mutually independent, so the
//! [`experiment`](crate::experiment) runner fans them out over scoped
//! threads, each streaming the shared record slice once.

use oat_httplog::{ColumnarDirReader, HttplogError, LogRecord, ShardFilter};

pub mod addiction;
pub mod aging;
pub mod availability;
pub mod cache;
pub mod clustering;
pub mod composition;
pub mod device;
pub mod iat;
pub mod popularity;
pub mod response;
pub mod sessions;
pub mod sizes;
pub mod temporal;

/// A single-pass streaming analyzer.
pub trait Analyzer {
    /// The figure data produced when the stream ends.
    type Output;

    /// Consumes one record.
    fn observe(&mut self, record: &LogRecord);

    /// Consumes a batch of records. The default forwards to [`observe`]
    /// record by record; analyzers with a cheaper batched path may
    /// override it, provided the result is identical.
    ///
    /// [`observe`]: Analyzer::observe
    fn observe_batch(&mut self, records: &[LogRecord]) {
        for r in records {
            self.observe(r);
        }
    }

    /// Finalizes and returns the figure data.
    fn finish(self) -> Self::Output;

    /// Whether this analyzer's fold needs the *whole* record set replayed
    /// after streaming ends (cross-record state such as per-user request
    /// histories or per-object hour matrices), rather than being safe to
    /// feed incrementally while earlier batches are discarded.
    ///
    /// The default is `false` (single-pass). Multi-pass analyzers override
    /// this to `true`, and the streaming pipeline replays them from the
    /// on-disk columnar spool instead of a retained in-memory copy.
    fn needs_replay(&self) -> bool {
        false
    }
}

/// Marker for analyzers that are truly single-pass: their output depends
/// only on the folded observation sequence, never on holding the whole
/// record set. These are safe to feed incrementally from the streaming
/// pipeline ([`crate::experiment::run_streaming`]) while the records that
/// produced earlier batches are no longer addressable.
pub trait StreamAnalyzer: Analyzer {}

/// Runs one analyzer over a record slice (convenience for tests/benches).
pub fn run_analyzer<A: Analyzer>(mut analyzer: A, records: &[LogRecord]) -> A::Output {
    analyzer.observe_batch(records);
    analyzer.finish()
}

/// Replays one multi-pass analyzer from an on-disk columnar record spool
/// in bounded batches of `batch_rows` rows (`0` picks the reader default).
/// Equivalent to [`run_analyzer`] over the materialized record set, while
/// only one batch is ever resident.
///
/// # Errors
///
/// Propagates the first shard-read error.
pub fn run_analyzer_replay<A: Analyzer>(
    mut analyzer: A,
    reader: &ColumnarDirReader<LogRecord>,
    batch_rows: usize,
) -> Result<A::Output, HttplogError> {
    debug_assert!(
        analyzer.needs_replay(),
        "single-pass analyzers should be fed incrementally, not replayed"
    );
    reader.scan(&ShardFilter::all(), batch_rows, |batch| {
        analyzer.observe_batch(batch);
    })?;
    Ok(analyzer.finish())
}
