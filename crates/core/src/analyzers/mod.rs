//! One streaming analyzer per paper figure.
//!
//! Every analyzer implements [`Analyzer`]: it consumes records one at a
//! time (`observe`) and produces its figure's data on `finish`. The
//! analyzers are mutually independent, so the
//! [`experiment`](crate::experiment) runner fans them out over scoped
//! threads, each streaming the shared record slice once.

use oat_httplog::LogRecord;

pub mod addiction;
pub mod aging;
pub mod cache;
pub mod clustering;
pub mod composition;
pub mod device;
pub mod iat;
pub mod popularity;
pub mod response;
pub mod sessions;
pub mod sizes;
pub mod temporal;

/// A single-pass streaming analyzer.
pub trait Analyzer {
    /// The figure data produced when the stream ends.
    type Output;

    /// Consumes one record.
    fn observe(&mut self, record: &LogRecord);

    /// Finalizes and returns the figure data.
    fn finish(self) -> Self::Output;
}

/// Runs one analyzer over a record slice (convenience for tests/benches).
pub fn run_analyzer<A: Analyzer>(mut analyzer: A, records: &[LogRecord]) -> A::Output {
    for r in records {
        analyzer.observe(r);
    }
    analyzer.finish()
}
