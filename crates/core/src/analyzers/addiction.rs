//! Figures 13–14 — repeated content access (user "addiction").
//!
//! Fig 13 scatters per-object total requests against unique requesters:
//! points far above the diagonal are objects one user hammers repeatedly.
//! Fig 14 summarizes repeated access per object as a CDF of the *heaviest
//! single user's* request count: at least 10 % of video objects see more
//! than 10 requests from one user, under 1 % of image objects do.

use super::Analyzer;
use crate::sitemap::SiteMap;
use oat_httplog::{ContentClass, LogRecord, ObjectId, UserId};
use oat_stats::Ecdf;
use serde::{Deserialize, Serialize};
// oat-lint: allow(ordered-output) — HashMap is the per-user accumulator only.
use std::collections::{BTreeMap, HashMap};

/// One Fig 13 scatter point: an object's request volume vs its audience.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepeatPoint {
    /// Total requests for the object.
    pub requests: u64,
    /// Distinct users who requested it.
    pub users: u64,
    /// Requests issued by the object's heaviest single user.
    pub max_by_one_user: u64,
}

impl RepeatPoint {
    /// Average requests per unique user.
    pub fn ratio(&self) -> f64 {
        if self.users == 0 {
            0.0
        } else {
            self.requests as f64 / self.users as f64
        }
    }
}

/// Per-(site, class) addiction summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddictionDistribution {
    /// Site code.
    pub code: String,
    /// Scatter points (one per object) — Fig 13.
    pub points: Vec<RepeatPoint>,
    /// ECDF over each object's heaviest-single-user request count — Fig 14.
    pub per_user_ecdf: Ecdf,
}

impl AddictionDistribution {
    /// Fraction of objects where one user issued more than `threshold`
    /// requests (the paper uses 10). Zero when no objects exist.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.per_user_ecdf.is_empty() {
            return 0.0;
        }
        1.0 - self.per_user_ecdf.fraction_at_most(threshold)
    }

    /// The largest single-user request count observed for any object.
    pub fn max_by_one_user(&self) -> Option<f64> {
        self.per_user_ecdf.max()
    }

    /// The largest average requests-per-user ratio (Fig 13 distance above
    /// the diagonal).
    pub fn max_ratio(&self) -> Option<f64> {
        self.points
            .iter()
            .map(RepeatPoint::ratio)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }
}

/// The Figures 13–14 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddictionReport {
    /// Video distributions per site.
    pub video: Vec<AddictionDistribution>,
    /// Image distributions per site.
    pub image: Vec<AddictionDistribution>,
}

impl AddictionReport {
    /// Distribution for one (site, class).
    pub fn site(&self, code: &str, class: ContentClass) -> Option<&AddictionDistribution> {
        let list = match class {
            ContentClass::Video => &self.video,
            ContentClass::Image => &self.image,
            ContentClass::Other => return None,
        };
        list.iter().find(|d| d.code == code)
    }
}

/// Streaming analyzer for Figures 13–14.
///
/// Tracks per-(object, user) request counts; memory is proportional to the
/// number of distinct such pairs.
#[derive(Debug)]
pub struct AddictionAnalyzer {
    map: SiteMap,
    // BTreeMap so `finish` emits scatter points in ObjectId order — the
    // report is serialized and must be byte-identical across runs.
    per_object: Vec<BTreeMap<ObjectId, ObjectUsers>>,
}

#[derive(Debug, Default)]
struct ObjectUsers {
    class: Option<ContentClass>,
    requests: u64,
    // Only reduced with order-independent ops (`len`, `max`), so the
    // unordered map is safe here. oat-lint: allow(ordered-output)
    per_user: HashMap<UserId, u64>,
}

impl AddictionAnalyzer {
    /// Creates an analyzer for the sites in `map`.
    pub fn new(map: SiteMap) -> Self {
        let n = map.len();
        Self {
            map,
            per_object: (0..n).map(|_| BTreeMap::new()).collect(),
        }
    }
}

impl Analyzer for AddictionAnalyzer {
    type Output = AddictionReport;

    // Cross-record state (not a pure incremental fold): the streaming
    // pipeline replays this analyzer from the on-disk record spool.
    fn needs_replay(&self) -> bool {
        true
    }

    fn observe(&mut self, record: &LogRecord) {
        let Some(site) = self.map.index(record.publisher) else {
            return;
        };
        let entry = self.per_object[site].entry(record.object).or_default();
        entry.class.get_or_insert(record.content_class());
        entry.requests += 1;
        *entry.per_user.entry(record.user).or_insert(0) += 1;
    }

    fn finish(self) -> AddictionReport {
        let mut video = Vec::with_capacity(self.map.len());
        let mut image = Vec::with_capacity(self.map.len());
        for (i, publisher) in self.map.publishers().enumerate() {
            let code = self
                .map
                .code(publisher)
                .expect("publisher in map")
                .to_string();
            for (class, out) in [
                (ContentClass::Video, &mut video),
                (ContentClass::Image, &mut image),
            ] {
                let points: Vec<RepeatPoint> = self.per_object[i]
                    .values()
                    .filter(|o| o.class == Some(class))
                    .map(|o| RepeatPoint {
                        requests: o.requests,
                        users: o.per_user.len() as u64,
                        max_by_one_user: o.per_user.values().copied().max().unwrap_or(0),
                    })
                    .collect();
                let per_user_ecdf =
                    Ecdf::from_samples(points.iter().map(|p| p.max_by_one_user as f64));
                out.push(AddictionDistribution {
                    code: code.clone(),
                    points,
                    per_user_ecdf,
                });
            }
        }
        AddictionReport { video, image }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::{FileFormat, PublisherId};

    fn record(publisher: u16, object: u64, user: u64, format: FileFormat) -> LogRecord {
        LogRecord {
            publisher: PublisherId::new(publisher),
            object: ObjectId::new(object),
            user: UserId::new(user),
            format,
            ..LogRecord::example()
        }
    }

    #[test]
    fn requests_vs_users() {
        let mut records = Vec::new();
        // Object 1: one addict, 20 requests.
        for _ in 0..20 {
            records.push(record(1, 1, 7, FileFormat::Mp4));
        }
        // Object 2: viral — 10 users, one request each.
        for u in 0..10 {
            records.push(record(1, 2, u, FileFormat::Mp4));
        }
        let report = run_analyzer(AddictionAnalyzer::new(SiteMap::paper_five()), &records);
        let v1 = report.site("V-1", ContentClass::Video).unwrap();
        assert_eq!(v1.points.len(), 2);
        let addict = v1.points.iter().find(|p| p.requests == 20).unwrap();
        assert_eq!(addict.users, 1);
        assert_eq!(addict.ratio(), 20.0);
        assert_eq!(addict.max_by_one_user, 20);
        let viral = v1.points.iter().find(|p| p.requests == 10).unwrap();
        assert_eq!(viral.users, 10);
        assert_eq!(viral.ratio(), 1.0);
        assert_eq!(viral.max_by_one_user, 1);
        // Half the objects have a user exceeding 10 requests.
        assert!((v1.fraction_above(10.0) - 0.5).abs() < 1e-9);
        assert_eq!(v1.max_by_one_user(), Some(20.0));
        assert_eq!(v1.max_ratio(), Some(20.0));
    }

    #[test]
    fn max_by_one_user_vs_average() {
        // Object with 5 users: four casual (1 request), one addict (12).
        let mut records = Vec::new();
        for u in 0..4 {
            records.push(record(1, 1, u, FileFormat::Mp4));
        }
        for _ in 0..12 {
            records.push(record(1, 1, 99, FileFormat::Mp4));
        }
        let report = run_analyzer(AddictionAnalyzer::new(SiteMap::paper_five()), &records);
        let v1 = report.site("V-1", ContentClass::Video).unwrap();
        let p = &v1.points[0];
        assert_eq!(p.requests, 16);
        assert_eq!(p.users, 5);
        assert_eq!(p.max_by_one_user, 12);
        // The average hides the addict; the single-user max does not.
        assert!(p.ratio() < 10.0);
        assert_eq!(v1.fraction_above(10.0), 1.0);
    }

    #[test]
    fn classes_separate() {
        let records = vec![
            record(3, 1, 1, FileFormat::Jpg),
            record(3, 1, 1, FileFormat::Jpg),
            record(3, 2, 1, FileFormat::Mp4),
        ];
        let report = run_analyzer(AddictionAnalyzer::new(SiteMap::paper_five()), &records);
        assert_eq!(
            report
                .site("P-1", ContentClass::Image)
                .unwrap()
                .points
                .len(),
            1
        );
        assert_eq!(
            report
                .site("P-1", ContentClass::Video)
                .unwrap()
                .points
                .len(),
            1
        );
        assert!(report.site("P-1", ContentClass::Other).is_none());
    }

    #[test]
    fn empty_distribution() {
        let report = run_analyzer(AddictionAnalyzer::new(SiteMap::paper_five()), &[]);
        let s1 = report.site("S-1", ContentClass::Video).unwrap();
        assert!(s1.points.is_empty());
        assert_eq!(s1.max_by_one_user(), None);
        assert_eq!(s1.max_ratio(), None);
        assert_eq!(s1.fraction_above(10.0), 0.0);
    }
}
