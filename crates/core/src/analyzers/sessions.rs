//! Figure 12 — user session-length distributions.
//!
//! A session is a run of one user's consecutive requests with no gap
//! exceeding a timeout; the paper picks a 10-minute timeout from its IAT
//! analysis and finds median session lengths around one minute — far
//! shorter than non-adult sites.

use super::Analyzer;
use crate::checkpoint::{f64_from_hex, f64_to_hex, field_u64};
use crate::sitemap::SiteMap;
use oat_httplog::{LogRecord, UserId};
use oat_stats::Ecdf;
use serde::{Deserialize, Serialize};
// oat-lint: allow(ordered-output) — per-user accumulator; finish() sorts.
use std::collections::HashMap;

/// The paper's session timeout (10 minutes).
pub const DEFAULT_TIMEOUT_SECS: u64 = 600;

/// One site's session-length distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionDistribution {
    /// Site code.
    pub code: String,
    /// ECDF over session lengths, seconds (single-request sessions have
    /// length 0 — the network-side lower bound the paper notes).
    pub ecdf: Ecdf,
    /// Total sessions reconstructed.
    pub sessions: u64,
    /// Mean requests per session.
    pub mean_requests: f64,
}

impl SessionDistribution {
    /// Median session length in seconds.
    pub fn median_secs(&self) -> Option<f64> {
        self.ecdf.median()
    }
}

/// The Figure 12 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Per-site distributions in reporting order.
    pub sites: Vec<SessionDistribution>,
    /// The timeout used, seconds.
    pub timeout_secs: u64,
}

impl SessionReport {
    /// Distribution of one site by code.
    pub fn site(&self, code: &str) -> Option<&SessionDistribution> {
        self.sites.iter().find(|s| s.code == code)
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenSession {
    start: u64,
    last: u64,
    requests: u64,
}

/// Streaming analyzer for Figure 12 (requires time-sorted input).
#[derive(Debug)]
pub struct SessionAnalyzer {
    map: SiteMap,
    timeout_secs: u64,
    // Hot-path accumulator; drained in sorted UserId order by `finish`.
    open: Vec<HashMap<UserId, OpenSession>>, // oat-lint: allow(ordered-output)
    lengths: Vec<Vec<f64>>,
    request_totals: Vec<u64>,
    session_counts: Vec<u64>,
}

impl SessionAnalyzer {
    /// Creates an analyzer with the paper's 10-minute timeout.
    pub fn new(map: SiteMap) -> Self {
        Self::with_timeout(map, DEFAULT_TIMEOUT_SECS)
    }

    /// Creates an analyzer with a custom timeout.
    pub fn with_timeout(map: SiteMap, timeout_secs: u64) -> Self {
        let n = map.len();
        Self {
            map,
            timeout_secs,
            open: vec![HashMap::new(); n], // oat-lint: allow(ordered-output)
            lengths: vec![Vec::new(); n],
            request_totals: vec![0; n],
            session_counts: vec![0; n],
        }
    }

    fn close(
        lengths: &mut Vec<f64>,
        request_totals: &mut u64,
        session_counts: &mut u64,
        session: OpenSession,
    ) {
        lengths.push((session.last - session.start) as f64);
        *request_totals += session.requests;
        *session_counts += 1;
    }

    /// Serializes the fold state for an analysis checkpoint
    /// (see [`crate::checkpoint`]): the timeout, every still-open session
    /// (sorted by user so identical state always yields identical bytes),
    /// closed-session lengths in close order (exact `f64` bit patterns —
    /// the order feeds the ECDF input stream and must replay verbatim),
    /// and per-site totals.
    pub fn checkpoint_state(&self) -> String {
        let mut out = format!("timeout = {}\n", self.timeout_secs);
        for (i, open) in self.open.iter().enumerate() {
            let mut sessions: Vec<(&UserId, &OpenSession)> = open.iter().collect();
            sessions.sort_by_key(|&(user, _)| user);
            for (user, s) in sessions {
                out.push_str(&format!(
                    "open site={i} user={} start={} last={} requests={}\n",
                    user.raw(),
                    s.start,
                    s.last,
                    s.requests
                ));
            }
        }
        for (i, lengths) in self.lengths.iter().enumerate() {
            out.push_str(&format!("lengths site={i}"));
            for &v in lengths {
                out.push(' ');
                out.push_str(&f64_to_hex(v));
            }
            out.push('\n');
        }
        for i in 0..self.request_totals.len() {
            out.push_str(&format!(
                "totals site={i} requests={} sessions={}\n",
                self.request_totals[i], self.session_counts[i]
            ));
        }
        out
    }

    /// Restores an analyzer from [`checkpoint_state`] output. Feeding the
    /// restored analyzer the remaining records yields the same report as
    /// an uninterrupted run.
    ///
    /// # Errors
    ///
    /// A description of the first malformed line, or a site index outside
    /// `map`.
    ///
    /// [`checkpoint_state`]: SessionAnalyzer::checkpoint_state
    pub fn from_checkpoint_state(map: SiteMap, state: &str) -> Result<Self, String> {
        let mut analyzer = Self::new(map);
        let sites = analyzer.open.len();
        let site_index = |site: u64| -> Result<usize, String> {
            let i = site as usize;
            (i < sites)
                .then_some(i)
                .ok_or(format!("site {i} out of range"))
        };
        for line in state.lines().filter(|l| !l.trim().is_empty()) {
            if let Some(value) = line.strip_prefix("timeout = ") {
                analyzer.timeout_secs = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad timeout {value:?}"))?;
            } else if let Some(rest) = line.strip_prefix("open ") {
                let mut tok = rest.split_whitespace();
                let site = site_index(field_u64(tok.next(), "site")?)?;
                let user = UserId::new(field_u64(tok.next(), "user")?);
                let session = OpenSession {
                    start: field_u64(tok.next(), "start")?,
                    last: field_u64(tok.next(), "last")?,
                    requests: field_u64(tok.next(), "requests")?,
                };
                analyzer.open[site].insert(user, session);
            } else if let Some(rest) = line.strip_prefix("lengths ") {
                let mut tok = rest.split_whitespace();
                let site = site_index(field_u64(tok.next(), "site")?)?;
                for bits in tok {
                    analyzer.lengths[site].push(f64_from_hex(bits)?);
                }
            } else if let Some(rest) = line.strip_prefix("totals ") {
                let mut tok = rest.split_whitespace();
                let site = site_index(field_u64(tok.next(), "site")?)?;
                analyzer.request_totals[site] = field_u64(tok.next(), "requests")?;
                analyzer.session_counts[site] = field_u64(tok.next(), "sessions")?;
            } else {
                return Err(format!("unrecognized session state line {line:?}"));
            }
        }
        Ok(analyzer)
    }
}

impl Analyzer for SessionAnalyzer {
    type Output = SessionReport;

    // Cross-record state (not a pure incremental fold): the streaming
    // pipeline replays this analyzer from the on-disk record spool.
    fn needs_replay(&self) -> bool {
        true
    }

    fn observe(&mut self, record: &LogRecord) {
        let Some(site) = self.map.index(record.publisher) else {
            return;
        };
        let t = record.timestamp;
        match self.open[site].get_mut(&record.user) {
            Some(open) if t.saturating_sub(open.last) <= self.timeout_secs => {
                open.last = t;
                open.requests += 1;
            }
            Some(open) => {
                let finished = *open;
                *open = OpenSession {
                    start: t,
                    last: t,
                    requests: 1,
                };
                Self::close(
                    &mut self.lengths[site],
                    &mut self.request_totals[site],
                    &mut self.session_counts[site],
                    finished,
                );
            }
            None => {
                self.open[site].insert(
                    record.user,
                    OpenSession {
                        start: t,
                        last: t,
                        requests: 1,
                    },
                );
            }
        }
    }

    fn finish(mut self) -> SessionReport {
        // Close everything still open, in sorted user order so the closing
        // sequence (and thus every downstream artifact) is deterministic.
        for site in 0..self.map.len() {
            let mut open: Vec<(UserId, OpenSession)> =
                std::mem::take(&mut self.open[site]).into_iter().collect();
            open.sort_by_key(|&(user, _)| user);
            for (_, session) in open {
                Self::close(
                    &mut self.lengths[site],
                    &mut self.request_totals[site],
                    &mut self.session_counts[site],
                    session,
                );
            }
        }
        let sites = self
            .map
            .publishers()
            .enumerate()
            .map(|(i, publisher)| {
                let sessions = self.session_counts[i];
                SessionDistribution {
                    code: self
                        .map
                        .code(publisher)
                        .expect("publisher in map")
                        .to_string(),
                    ecdf: Ecdf::from_samples(self.lengths[i].iter().copied()),
                    sessions,
                    mean_requests: if sessions == 0 {
                        0.0
                    } else {
                        self.request_totals[i] as f64 / sessions as f64
                    },
                }
            })
            .collect();
        SessionReport {
            sites,
            timeout_secs: self.timeout_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::PublisherId;

    fn record(publisher: u16, user: u64, ts: u64) -> LogRecord {
        LogRecord {
            publisher: PublisherId::new(publisher),
            user: UserId::new(user),
            timestamp: ts,
            ..LogRecord::example()
        }
    }

    #[test]
    fn splits_on_timeout() {
        let records = vec![
            record(1, 1, 0),
            record(1, 1, 30),
            record(1, 1, 90),       // session 1: length 90, 3 requests
            record(1, 1, 90 + 601), // session 2 starts (gap > 600)
            record(1, 1, 90 + 631), // session 2: length 30, 2 requests
        ];
        let report = run_analyzer(SessionAnalyzer::new(SiteMap::paper_five()), &records);
        let v1 = report.site("V-1").unwrap();
        assert_eq!(v1.sessions, 2);
        assert_eq!(v1.ecdf.sorted_samples(), &[30.0, 90.0]);
        assert_eq!(v1.mean_requests, 2.5);
        assert_eq!(report.timeout_secs, 600);
    }

    #[test]
    fn single_request_session_has_zero_length() {
        let records = vec![record(1, 7, 1_000)];
        let report = run_analyzer(SessionAnalyzer::new(SiteMap::paper_five()), &records);
        let v1 = report.site("V-1").unwrap();
        assert_eq!(v1.sessions, 1);
        assert_eq!(v1.median_secs(), Some(0.0));
        assert_eq!(v1.mean_requests, 1.0);
    }

    #[test]
    fn custom_timeout() {
        let records = vec![record(1, 1, 0), record(1, 1, 50)];
        let strict = run_analyzer(
            SessionAnalyzer::with_timeout(SiteMap::paper_five(), 10),
            &records,
        );
        assert_eq!(strict.site("V-1").unwrap().sessions, 2);
        let lax = run_analyzer(
            SessionAnalyzer::with_timeout(SiteMap::paper_five(), 100),
            vec![record(1, 1, 0), record(1, 1, 50)].as_slice(),
        );
        assert_eq!(lax.site("V-1").unwrap().sessions, 1);
    }

    #[test]
    fn boundary_gap_continues_session() {
        let records = vec![record(1, 1, 0), record(1, 1, 600)];
        let report = run_analyzer(SessionAnalyzer::new(SiteMap::paper_five()), &records);
        assert_eq!(report.site("V-1").unwrap().sessions, 1);
    }

    #[test]
    fn checkpoint_restore_matches_uninterrupted() {
        // Mixed sites/users with closes before and after the split point,
        // so the checkpoint carries open sessions, lengths and totals.
        let records = vec![
            record(1, 1, 0),
            record(1, 2, 10),
            record(3, 1, 20),
            record(1, 1, 30),
            record(1, 1, 30 + 700), // closes user 1's first V-1 session
            record(3, 1, 40 + 700),
            record(1, 2, 50 + 1400), // closes user 2's first V-1 session
        ];
        let whole = run_analyzer(SessionAnalyzer::new(SiteMap::paper_five()), &records);
        for k in 0..=records.len() {
            let mut first = SessionAnalyzer::new(SiteMap::paper_five());
            for r in &records[..k] {
                first.observe(r);
            }
            let state = first.checkpoint_state();
            let resumed = SessionAnalyzer::from_checkpoint_state(SiteMap::paper_five(), &state)
                .expect("restores");
            assert_eq!(run_analyzer(resumed, &records[k..]), whole, "split at {k}");
        }
    }

    #[test]
    fn checkpoint_preserves_custom_timeout() {
        let analyzer = SessionAnalyzer::with_timeout(SiteMap::paper_five(), 42);
        let state = analyzer.checkpoint_state();
        let restored = SessionAnalyzer::from_checkpoint_state(SiteMap::paper_five(), &state)
            .expect("restores");
        assert_eq!(restored.timeout_secs, 42);
        assert!(
            SessionAnalyzer::from_checkpoint_state(SiteMap::paper_five(), "open site=99 u=1")
                .is_err()
        );
        assert!(SessionAnalyzer::from_checkpoint_state(SiteMap::paper_five(), "junk").is_err());
    }

    #[test]
    fn users_and_sites_independent() {
        let records = vec![record(1, 1, 0), record(1, 2, 1), record(3, 1, 2)];
        let report = run_analyzer(SessionAnalyzer::new(SiteMap::paper_five()), &records);
        assert_eq!(report.site("V-1").unwrap().sessions, 2);
        assert_eq!(report.site("P-1").unwrap().sessions, 1);
        assert_eq!(report.site("P-2").unwrap().sessions, 0);
        assert_eq!(report.site("P-2").unwrap().mean_requests, 0.0);
    }
}
