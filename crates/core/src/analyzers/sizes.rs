//! Figure 5 — content-size distributions.
//!
//! CDFs of *distinct-object* sizes per site, split into video (5a) and
//! image (5b). The paper's anchors: most videos exceed 1 MB, P-2 has the
//! largest videos, and image sizes are **bi-modal** (thumbnails vs
//! full-resolution pictures ≤ 1 MB).

use super::{Analyzer, StreamAnalyzer};
use crate::sitemap::SiteMap;
use oat_httplog::{ContentClass, LogRecord, ObjectId};
use oat_stats::{Ecdf, LogHistogram};
use serde::{Deserialize, Serialize};
// Per-object size accumulator; finish() reduces values into sorted
// Ecdfs. oat-lint: allow(ordered-output)
use std::collections::HashMap;

/// Size distribution of one (site, class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeDistribution {
    /// Site code.
    pub code: String,
    /// Distinct objects measured.
    pub objects: u64,
    /// ECDF over object sizes in bytes.
    pub ecdf: Ecdf,
    /// Number of detected size modes (log₂ histogram, smoothed).
    pub modes: usize,
}

impl SizeDistribution {
    /// Median object size in bytes (`None` when empty).
    pub fn median(&self) -> Option<f64> {
        self.ecdf.median()
    }

    /// Fraction of objects larger than 1 MB.
    pub fn fraction_above_1mb(&self) -> f64 {
        1.0 - self.ecdf.fraction_at_most(1_000_000.0)
    }

    /// Whether the distribution is multi-modal (Fig 5b's image claim).
    pub fn is_bimodal(&self) -> bool {
        self.modes >= 2
    }
}

/// The Figure 5 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeReport {
    /// Video size distributions per site (Fig 5a).
    pub video: Vec<SizeDistribution>,
    /// Image size distributions per site (Fig 5b).
    pub image: Vec<SizeDistribution>,
}

impl SizeReport {
    /// Distribution for one (site, class).
    pub fn site(&self, code: &str, class: ContentClass) -> Option<&SizeDistribution> {
        let list = match class {
            ContentClass::Video => &self.video,
            ContentClass::Image => &self.image,
            ContentClass::Other => return None,
        };
        list.iter().find(|d| d.code == code)
    }
}

/// Streaming analyzer for Figure 5.
#[derive(Debug)]
pub struct SizeAnalyzer {
    map: SiteMap,
    // site → object → (class, size); first sighting wins.
    seen: Vec<HashMap<ObjectId, (ContentClass, u64)>>, // oat-lint: allow(ordered-output)
}

impl SizeAnalyzer {
    /// Creates an analyzer for the sites in `map`.
    pub fn new(map: SiteMap) -> Self {
        let n = map.len();
        Self {
            map,
            seen: vec![HashMap::new(); n], // oat-lint: allow(ordered-output)
        }
    }
}

impl StreamAnalyzer for SizeAnalyzer {}

impl Analyzer for SizeAnalyzer {
    type Output = SizeReport;

    fn observe(&mut self, record: &LogRecord) {
        let Some(site) = self.map.index(record.publisher) else {
            return;
        };
        self.seen[site]
            .entry(record.object)
            .or_insert((record.content_class(), record.object_size));
    }

    fn finish(self) -> SizeReport {
        let mut video = Vec::with_capacity(self.map.len());
        let mut image = Vec::with_capacity(self.map.len());
        for (i, publisher) in self.map.publishers().enumerate() {
            let code = self
                .map
                .code(publisher)
                .expect("publisher in map")
                .to_string();
            for (class, out) in [
                (ContentClass::Video, &mut video),
                (ContentClass::Image, &mut image),
            ] {
                let sizes: Vec<f64> = self.seen[i]
                    .values()
                    .filter(|(c, _)| *c == class)
                    .map(|&(_, s)| s as f64)
                    .collect();
                let mut hist = LogHistogram::base2(8, 34).expect("valid range");
                for &s in &sizes {
                    hist.add(s);
                }
                out.push(SizeDistribution {
                    code: code.clone(),
                    objects: sizes.len() as u64,
                    ecdf: Ecdf::from_samples(sizes),
                    modes: hist.modes(1, 0.03).len(),
                });
            }
        }
        SizeReport { video, image }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::{FileFormat, PublisherId};

    fn record(publisher: u16, object: u64, format: FileFormat, size: u64) -> LogRecord {
        LogRecord {
            publisher: PublisherId::new(publisher),
            object: ObjectId::new(object),
            format,
            object_size: size,
            ..LogRecord::example()
        }
    }

    #[test]
    fn distinct_objects_measured_once() {
        let records = vec![
            record(1, 1, FileFormat::Mp4, 10_000_000),
            record(1, 1, FileFormat::Mp4, 10_000_000), // duplicate
            record(1, 2, FileFormat::Mp4, 30_000_000),
            record(1, 3, FileFormat::Jpg, 20_000),
        ];
        let report = run_analyzer(SizeAnalyzer::new(SiteMap::paper_five()), &records);
        let v1_video = report.site("V-1", ContentClass::Video).unwrap();
        assert_eq!(v1_video.objects, 2);
        assert_eq!(v1_video.median(), Some(10_000_000.0));
        assert_eq!(v1_video.fraction_above_1mb(), 1.0);
        let v1_image = report.site("V-1", ContentClass::Image).unwrap();
        assert_eq!(v1_image.objects, 1);
        assert!(report.site("V-1", ContentClass::Other).is_none());
    }

    #[test]
    fn bimodality_detected() {
        let mut records = Vec::new();
        for i in 0..300 {
            records.push(record(3, i, FileFormat::Jpg, 20_000 + (i % 50) * 100));
            records.push(record(
                3,
                1_000 + i,
                FileFormat::Jpg,
                600_000 + (i % 50) * 2_000,
            ));
        }
        let report = run_analyzer(SizeAnalyzer::new(SiteMap::paper_five()), &records);
        let p1 = report.site("P-1", ContentClass::Image).unwrap();
        assert!(p1.is_bimodal(), "modes: {}", p1.modes);
    }

    #[test]
    fn empty_class_is_empty_ecdf() {
        let report = run_analyzer(SizeAnalyzer::new(SiteMap::paper_five()), &[]);
        let p2 = report.site("P-2", ContentClass::Video).unwrap();
        assert_eq!(p2.objects, 0);
        assert_eq!(p2.median(), None);
        assert!(!p2.is_bimodal());
    }
}
