//! Figure 6 — content-popularity distributions.
//!
//! CDFs of per-object request counts, split into video (6a) and image
//! (6b). The paper observes classic long-tailed distributions: a small
//! fraction of objects draws most requests.

use super::{Analyzer, StreamAnalyzer};
use crate::checkpoint::field_u64;
use crate::sitemap::SiteMap;
use oat_httplog::{ContentClass, LogRecord, ObjectId};
use oat_stats::{fit_zipf, zipf, Ecdf, ZipfFit};
use serde::{Deserialize, Serialize};
// Per-object request accumulator; finish() reduces values into sorted
// Ecdfs and order-independent Zipf fits. oat-lint: allow(ordered-output)
use std::collections::HashMap;

/// Popularity distribution of one (site, class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopularityDistribution {
    /// Site code.
    pub code: String,
    /// Distinct objects requested.
    pub objects: u64,
    /// Total requests.
    pub requests: u64,
    /// ECDF over per-object request counts.
    pub ecdf: Ecdf,
    /// Rank-frequency power-law fit, when enough distinct counts exist.
    pub zipf: Option<ZipfFit>,
    /// Fraction of requests drawn by the top 10 % of objects.
    pub top_decile_share: Option<f64>,
    /// Gini coefficient of the request distribution.
    pub gini: Option<f64>,
}

/// The Figure 6 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopularityReport {
    /// Video popularity per site (Fig 6a).
    pub video: Vec<PopularityDistribution>,
    /// Image popularity per site (Fig 6b).
    pub image: Vec<PopularityDistribution>,
}

impl PopularityReport {
    /// Distribution for one (site, class).
    pub fn site(&self, code: &str, class: ContentClass) -> Option<&PopularityDistribution> {
        let list = match class {
            ContentClass::Video => &self.video,
            ContentClass::Image => &self.image,
            ContentClass::Other => return None,
        };
        list.iter().find(|d| d.code == code)
    }
}

/// Streaming analyzer for Figure 6.
#[derive(Debug)]
pub struct PopularityAnalyzer {
    map: SiteMap,
    counts: Vec<HashMap<ObjectId, (ContentClass, u64)>>, // oat-lint: allow(ordered-output)
}

impl PopularityAnalyzer {
    /// Creates an analyzer for the sites in `map`.
    pub fn new(map: SiteMap) -> Self {
        let n = map.len();
        Self {
            map,
            counts: vec![HashMap::new(); n], // oat-lint: allow(ordered-output)
        }
    }

    /// Serializes the fold state for an analysis checkpoint
    /// (see [`crate::checkpoint`]): one line per `(site, object)` counter,
    /// sorted by object id per site so identical state always yields
    /// identical bytes.
    pub fn checkpoint_state(&self) -> String {
        let mut out = String::new();
        for (i, counts) in self.counts.iter().enumerate() {
            let mut entries: Vec<(&ObjectId, &(ContentClass, u64))> = counts.iter().collect();
            entries.sort_by_key(|&(object, _)| object);
            for (object, (class, count)) in entries {
                let class = match class {
                    ContentClass::Video => 'V',
                    ContentClass::Image => 'I',
                    ContentClass::Other => 'O',
                };
                out.push_str(&format!(
                    "site={i} object={} class={class} count={count}\n",
                    object.raw()
                ));
            }
        }
        out
    }

    /// Restores an analyzer from [`checkpoint_state`] output. Feeding the
    /// restored analyzer the remaining records yields the same report as
    /// an uninterrupted run.
    ///
    /// # Errors
    ///
    /// A description of the first malformed line, or a site index outside
    /// `map`.
    ///
    /// [`checkpoint_state`]: PopularityAnalyzer::checkpoint_state
    pub fn from_checkpoint_state(map: SiteMap, state: &str) -> Result<Self, String> {
        let mut analyzer = Self::new(map);
        for line in state.lines().filter(|l| !l.trim().is_empty()) {
            let mut tok = line.split_whitespace();
            let site = field_u64(tok.next(), "site")? as usize;
            let object = ObjectId::new(field_u64(tok.next(), "object")?);
            let class = match tok.next() {
                Some("class=V") => ContentClass::Video,
                Some("class=I") => ContentClass::Image,
                Some("class=O") => ContentClass::Other,
                other => return Err(format!("bad class token {other:?}")),
            };
            let count = field_u64(tok.next(), "count")?;
            analyzer
                .counts
                .get_mut(site)
                .ok_or_else(|| format!("site {site} out of range"))?
                .insert(object, (class, count));
        }
        Ok(analyzer)
    }
}

impl StreamAnalyzer for PopularityAnalyzer {}

impl Analyzer for PopularityAnalyzer {
    type Output = PopularityReport;

    fn observe(&mut self, record: &LogRecord) {
        let Some(site) = self.map.index(record.publisher) else {
            return;
        };
        let entry = self.counts[site]
            .entry(record.object)
            .or_insert((record.content_class(), 0));
        entry.1 += 1;
    }

    fn finish(self) -> PopularityReport {
        let mut video = Vec::with_capacity(self.map.len());
        let mut image = Vec::with_capacity(self.map.len());
        for (i, publisher) in self.map.publishers().enumerate() {
            let code = self
                .map
                .code(publisher)
                .expect("publisher in map")
                .to_string();
            for (class, out) in [
                (ContentClass::Video, &mut video),
                (ContentClass::Image, &mut image),
            ] {
                let counts: Vec<u64> = self.counts[i]
                    .values()
                    .filter(|(c, _)| *c == class)
                    .map(|&(_, n)| n)
                    .collect();
                out.push(PopularityDistribution {
                    code: code.clone(),
                    objects: counts.len() as u64,
                    requests: counts.iter().sum(),
                    ecdf: Ecdf::from_samples(counts.iter().map(|&c| c as f64)),
                    zipf: fit_zipf(&counts),
                    top_decile_share: zipf::top_share(&counts, 0.1),
                    gini: zipf::gini(&counts),
                });
            }
        }
        PopularityReport { video, image }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::{FileFormat, PublisherId};

    fn record(publisher: u16, object: u64, format: FileFormat) -> LogRecord {
        LogRecord {
            publisher: PublisherId::new(publisher),
            object: ObjectId::new(object),
            format,
            ..LogRecord::example()
        }
    }

    #[test]
    fn per_object_counts() {
        let mut records = Vec::new();
        for _ in 0..10 {
            records.push(record(1, 1, FileFormat::Mp4));
        }
        records.push(record(1, 2, FileFormat::Mp4));
        let report = run_analyzer(PopularityAnalyzer::new(SiteMap::paper_five()), &records);
        let v1 = report.site("V-1", ContentClass::Video).unwrap();
        assert_eq!(v1.objects, 2);
        assert_eq!(v1.requests, 11);
        assert_eq!(v1.ecdf.max(), Some(10.0));
        assert!(v1.top_decile_share.is_some());
    }

    #[test]
    fn zipf_fit_on_skewed_counts() {
        let mut records = Vec::new();
        for obj in 1..=100u64 {
            let n = 1_000 / obj; // Zipf(1)
            for _ in 0..n {
                records.push(record(3, obj, FileFormat::Jpg));
            }
        }
        let report = run_analyzer(PopularityAnalyzer::new(SiteMap::paper_five()), &records);
        let p1 = report.site("P-1", ContentClass::Image).unwrap();
        let fit = p1.zipf.expect("fit exists");
        assert!((fit.alpha - 1.0).abs() < 0.15, "alpha {}", fit.alpha);
        assert!(p1.top_decile_share.unwrap() > 0.5);
        assert!(p1.gini.unwrap() > 0.5);
    }

    #[test]
    fn checkpoint_restore_matches_uninterrupted() {
        let mut records = Vec::new();
        for obj in 1..=20u64 {
            for _ in 0..=(20 - obj) {
                records.push(record(1, obj, FileFormat::Mp4));
                records.push(record(3, obj, FileFormat::Jpg));
            }
        }
        let whole = run_analyzer(PopularityAnalyzer::new(SiteMap::paper_five()), &records);
        for k in [0, 1, records.len() / 2, records.len()] {
            let mut first = PopularityAnalyzer::new(SiteMap::paper_five());
            for r in &records[..k] {
                first.observe(r);
            }
            let state = first.checkpoint_state();
            let resumed = PopularityAnalyzer::from_checkpoint_state(SiteMap::paper_five(), &state)
                .expect("restores");
            assert_eq!(run_analyzer(resumed, &records[k..]), whole, "split at {k}");
        }
    }

    #[test]
    fn checkpoint_rejects_damage() {
        let bad = [
            "site=99 object=1 class=V count=1",
            "site=0 object=1 class=X count=1",
            "gibberish",
        ];
        for state in bad {
            assert!(
                PopularityAnalyzer::from_checkpoint_state(SiteMap::paper_five(), state).is_err(),
                "{state:?} was accepted"
            );
        }
    }

    #[test]
    fn empty_class() {
        let report = run_analyzer(PopularityAnalyzer::new(SiteMap::paper_five()), &[]);
        let s1 = report.site("S-1", ContentClass::Video).unwrap();
        assert_eq!(s1.objects, 0);
        assert!(s1.zipf.is_none());
        assert!(s1.top_decile_share.is_none());
        assert!(report.site("S-1", ContentClass::Other).is_none());
    }
}
