//! Figure 7 — content aging: fraction of objects still requested at
//! increasing ages.
//!
//! An object's age at a request is the time since its first observed
//! request. The paper: a declining fraction of objects is requested as age
//! grows; ~20 % of objects receive no requests after day 3, and only ~10 %
//! are requested throughout the one-week trace.

use super::Analyzer;
use crate::sitemap::SiteMap;
use oat_httplog::{LogRecord, ObjectId};
use serde::{Deserialize, Serialize};
// Per-object span accumulator; finish() only folds values into
// order-independent day counters. oat-lint: allow(ordered-output)
use std::collections::HashMap;

const SECS_PER_DAY: u64 = 86_400;

/// One site's aging curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgingCurve {
    /// Site code.
    pub code: String,
    /// `fraction[d]` = share of objects requested at age ≥ `d + 1` days
    /// (index 0 ⇒ day 1, always 1.0 when any object exists).
    pub fraction_by_day: Vec<f64>,
    /// Objects with at least one request.
    pub objects: u64,
}

impl AgingCurve {
    /// Fraction of objects still requested at age ≥ `day` (1-based).
    pub fn fraction_at_day(&self, day: usize) -> Option<f64> {
        if day == 0 {
            return None;
        }
        self.fraction_by_day.get(day - 1).copied()
    }
}

/// The Figure 7 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgingReport {
    /// Per-site curves in reporting order.
    pub sites: Vec<AgingCurve>,
}

impl AgingReport {
    /// Curve of one site by code.
    pub fn site(&self, code: &str) -> Option<&AgingCurve> {
        self.sites.iter().find(|s| s.code == code)
    }
}

/// Streaming analyzer for Figure 7.
#[derive(Debug)]
pub struct AgingAnalyzer {
    map: SiteMap,
    days: usize,
    // site → object → (first_seen, last_seen) timestamps.
    spans: Vec<HashMap<ObjectId, (u64, u64)>>, // oat-lint: allow(ordered-output)
}

impl AgingAnalyzer {
    /// Creates an analyzer reporting ages up to `days` (the paper uses 7).
    pub fn new(map: SiteMap, days: usize) -> Self {
        let n = map.len();
        Self {
            map,
            days: days.max(1),
            spans: vec![HashMap::new(); n], // oat-lint: allow(ordered-output)
        }
    }
}

impl Analyzer for AgingAnalyzer {
    type Output = AgingReport;

    // Cross-record state (not a pure incremental fold): the streaming
    // pipeline replays this analyzer from the on-disk record spool.
    fn needs_replay(&self) -> bool {
        true
    }

    fn observe(&mut self, record: &LogRecord) {
        let Some(site) = self.map.index(record.publisher) else {
            return;
        };
        let span = self.spans[site]
            .entry(record.object)
            .or_insert((record.timestamp, record.timestamp));
        span.0 = span.0.min(record.timestamp);
        span.1 = span.1.max(record.timestamp);
    }

    fn finish(self) -> AgingReport {
        let sites = self
            .map
            .publishers()
            .enumerate()
            .map(|(i, publisher)| {
                let total = self.spans[i].len() as u64;
                let mut counts = vec![0u64; self.days];
                for &(first, last) in self.spans[i].values() {
                    // Day index (1-based) of the *oldest* request: an
                    // object requested only once has max age day 1.
                    let max_age_day = ((last - first) / SECS_PER_DAY) as usize + 1;
                    for count in counts.iter_mut().take(max_age_day.min(self.days)) {
                        *count += 1;
                    }
                }
                let fraction_by_day = counts
                    .iter()
                    .map(|&c| {
                        if total == 0 {
                            0.0
                        } else {
                            c as f64 / total as f64
                        }
                    })
                    .collect();
                AgingCurve {
                    code: self
                        .map
                        .code(publisher)
                        .expect("publisher in map")
                        .to_string(),
                    fraction_by_day,
                    objects: total,
                }
            })
            .collect();
        AgingReport { sites }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::PublisherId;

    fn record(publisher: u16, object: u64, ts: u64) -> LogRecord {
        LogRecord {
            publisher: PublisherId::new(publisher),
            object: ObjectId::new(object),
            timestamp: ts,
            ..LogRecord::example()
        }
    }

    #[test]
    fn aging_curve_declines() {
        let records = vec![
            // Object 1: alive 6 days.
            record(1, 1, 0),
            record(1, 1, 6 * SECS_PER_DAY),
            // Object 2: one shot.
            record(1, 2, 0),
            // Object 3: alive 2 days.
            record(1, 3, 10),
            record(1, 3, 2 * SECS_PER_DAY + 10),
        ];
        let report = run_analyzer(AgingAnalyzer::new(SiteMap::paper_five(), 7), &records);
        let v1 = report.site("V-1").unwrap();
        assert_eq!(v1.objects, 3);
        assert_eq!(v1.fraction_at_day(1), Some(1.0));
        assert!((v1.fraction_at_day(2).unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert!((v1.fraction_at_day(3).unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert!((v1.fraction_at_day(4).unwrap() - 1.0 / 3.0).abs() < 1e-9);
        assert!((v1.fraction_at_day(7).unwrap() - 1.0 / 3.0).abs() < 1e-9);
        // Monotone non-increasing.
        for w in v1.fraction_by_day.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(v1.fraction_at_day(0), None);
        assert_eq!(v1.fraction_at_day(8), None);
    }

    #[test]
    fn empty_site_zero_curve() {
        let report = run_analyzer(AgingAnalyzer::new(SiteMap::paper_five(), 7), &[]);
        let p2 = report.site("P-2").unwrap();
        assert_eq!(p2.objects, 0);
        assert!(p2.fraction_by_day.iter().all(|&f| f == 0.0));
    }
}
