//! Figure 4 — device-type composition of each site's visitors.
//!
//! The paper extracts the device/OS from the `User-Agent` header and
//! reports the percentage of *users* per category. Desktop dominates
//! everywhere; V-2 exceeds 95 % desktop; more than a third of S-1 visitors
//! arrive from smartphones/misc devices.

use super::{Analyzer, StreamAnalyzer};
use crate::sitemap::SiteMap;
use oat_httplog::{LogRecord, UserId};
use oat_useragent::DeviceCategory;
use serde::{Deserialize, Serialize};
// Per-user device lookup; finish() only tallies category counts,
// which are order-independent. oat-lint: allow(ordered-output)
use std::collections::HashMap;

/// One site's device mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceShare {
    /// Site code.
    pub code: String,
    /// Percentage of users per category `[Desktop, Android, iOS, Misc]`.
    pub user_pct: [f64; 4],
    /// Distinct users observed.
    pub users: u64,
}

impl DeviceShare {
    /// Share (0–100) of one category.
    pub fn pct(&self, category: DeviceCategory) -> f64 {
        self.user_pct[category_idx(category)]
    }

    /// Combined smartphone + misc share (0–100).
    pub fn mobile_and_misc_pct(&self) -> f64 {
        let [_, android, ios, misc] = self.user_pct;
        android + ios + misc
    }
}

fn category_idx(category: DeviceCategory) -> usize {
    match category {
        DeviceCategory::Desktop => 0,
        DeviceCategory::Android => 1,
        DeviceCategory::Ios => 2,
        DeviceCategory::Misc => 3,
    }
}

/// The Figure 4 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Per-site shares in reporting order.
    pub sites: Vec<DeviceShare>,
}

impl DeviceReport {
    /// Shares of one site by code.
    pub fn site(&self, code: &str) -> Option<&DeviceShare> {
        self.sites.iter().find(|s| s.code == code)
    }
}

/// Streaming analyzer for Figure 4: classifies each user's UA string once
/// (first sighting wins, as users keep one device per the generator and
/// the paper's methodology).
#[derive(Debug)]
pub struct DeviceAnalyzer {
    map: SiteMap,
    users: Vec<HashMap<UserId, DeviceCategory>>, // oat-lint: allow(ordered-output)
}

impl DeviceAnalyzer {
    /// Creates an analyzer for the sites in `map`.
    pub fn new(map: SiteMap) -> Self {
        let n = map.len();
        Self {
            map,
            users: vec![HashMap::new(); n], // oat-lint: allow(ordered-output)
        }
    }
}

impl StreamAnalyzer for DeviceAnalyzer {}

impl Analyzer for DeviceAnalyzer {
    type Output = DeviceReport;

    fn observe(&mut self, record: &LogRecord) {
        let Some(site) = self.map.index(record.publisher) else {
            return;
        };
        self.users[site]
            .entry(record.user)
            .or_insert_with(|| oat_useragent::parse(&record.user_agent).device);
    }

    fn finish(self) -> DeviceReport {
        let sites = self
            .map
            .publishers()
            .enumerate()
            .map(|(i, publisher)| {
                let total = self.users[i].len() as u64;
                let mut counts = [0u64; 4];
                for &device in self.users[i].values() {
                    counts[category_idx(device)] += 1;
                }
                let mut user_pct = [0.0; 4];
                if total > 0 {
                    for (p, &c) in user_pct.iter_mut().zip(&counts) {
                        *p = 100.0 * c as f64 / total as f64;
                    }
                }
                DeviceShare {
                    code: self
                        .map
                        .code(publisher)
                        .expect("publisher in map")
                        .to_string(),
                    user_pct,
                    users: total,
                }
            })
            .collect();
        DeviceReport { sites }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::PublisherId;

    const DESKTOP_UA: &str = "Mozilla/5.0 (Windows NT 10.0) AppleWebKit/537.36 \
                              (KHTML, like Gecko) Chrome/46.0.2490.86 Safari/537.36";
    const ANDROID_UA: &str = "Mozilla/5.0 (Linux; Android 5.1.1; Nexus 5) AppleWebKit/537.36 \
                              (KHTML, like Gecko) Chrome/46.0.2490.76 Mobile Safari/537.36";

    fn record(publisher: u16, user: u64, ua: &str) -> LogRecord {
        LogRecord {
            publisher: PublisherId::new(publisher),
            user: UserId::new(user),
            user_agent: ua.to_string(),
            ..LogRecord::example()
        }
    }

    #[test]
    fn counts_users_not_requests() {
        let records = vec![
            record(1, 1, DESKTOP_UA),
            record(1, 1, DESKTOP_UA), // same user again
            record(1, 2, ANDROID_UA),
        ];
        let report = run_analyzer(DeviceAnalyzer::new(SiteMap::paper_five()), &records);
        let v1 = report.site("V-1").unwrap();
        assert_eq!(v1.users, 2);
        assert_eq!(v1.pct(DeviceCategory::Desktop), 50.0);
        assert_eq!(v1.pct(DeviceCategory::Android), 50.0);
        assert_eq!(v1.mobile_and_misc_pct(), 50.0);
    }

    #[test]
    fn first_ua_wins_per_user() {
        let records = vec![record(1, 1, DESKTOP_UA), record(1, 1, ANDROID_UA)];
        let report = run_analyzer(DeviceAnalyzer::new(SiteMap::paper_five()), &records);
        assert_eq!(
            report.site("V-1").unwrap().pct(DeviceCategory::Desktop),
            100.0
        );
    }

    #[test]
    fn empty_site() {
        let report = run_analyzer(DeviceAnalyzer::new(SiteMap::paper_five()), &[]);
        let s1 = report.site("S-1").unwrap();
        assert_eq!(s1.users, 0);
        assert_eq!(s1.user_pct, [0.0; 4]);
    }
}
