//! Figure 3 — hourly traffic-volume time series in visitors' local time.
//!
//! The paper converts timestamps to local timezones and shows that adult
//! sites do *not* follow the classic 7–11 pm web peak: V-1 peaks in
//! late-night/early-morning hours.

use super::{Analyzer, StreamAnalyzer};
use crate::sitemap::SiteMap;
use oat_httplog::LogRecord;
use serde::{Deserialize, Serialize};

/// One site's normalized hourly traffic profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlyProfile {
    /// Site code.
    pub code: String,
    /// Percentage of the site's traffic volume in each local hour
    /// (sums to 100 when the site has traffic).
    pub share_pct: [f64; 24],
    /// Total requests observed.
    pub total: u64,
}

impl HourlyProfile {
    /// The local hour with the largest traffic share.
    pub fn peak_hour(&self) -> usize {
        argmax(&self.share_pct)
    }

    /// The local hour with the smallest traffic share.
    pub fn trough_hour(&self) -> usize {
        self.share_pct
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Peak-to-trough ratio (`None` when the trough is zero).
    pub fn peak_to_trough(&self) -> Option<f64> {
        let trough = self.share_pct[self.trough_hour()];
        (trough > 0.0).then(|| self.share_pct[self.peak_hour()] / trough)
    }

    /// Whether the peak falls in late-night/early-morning local hours
    /// (0–6) — the paper's V-1 signature.
    pub fn peaks_late_night(&self) -> bool {
        self.peak_hour() <= 6
    }
}

fn argmax(xs: &[f64; 24]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// The Figure 3 report: one profile per site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalReport {
    /// Profiles in reporting order.
    pub sites: Vec<HourlyProfile>,
}

impl TemporalReport {
    /// Profile of one site by code.
    pub fn site(&self, code: &str) -> Option<&HourlyProfile> {
        self.sites.iter().find(|s| s.code == code)
    }
}

/// Streaming analyzer for Figure 3.
#[derive(Debug)]
pub struct TemporalAnalyzer {
    map: SiteMap,
    counts: Vec<[u64; 24]>,
}

impl TemporalAnalyzer {
    /// Creates an analyzer for the sites in `map`.
    pub fn new(map: SiteMap) -> Self {
        let n = map.len();
        Self {
            map,
            counts: vec![[0; 24]; n],
        }
    }
}

impl StreamAnalyzer for TemporalAnalyzer {}

impl Analyzer for TemporalAnalyzer {
    type Output = TemporalReport;

    fn observe(&mut self, record: &LogRecord) {
        let Some(site) = self.map.index(record.publisher) else {
            return;
        };
        self.counts[site][record.local_hour() as usize] += 1;
    }

    fn finish(self) -> TemporalReport {
        let sites = self
            .map
            .publishers()
            .enumerate()
            .map(|(i, publisher)| {
                let total: u64 = self.counts[i].iter().sum();
                let mut share_pct = [0.0; 24];
                if total > 0 {
                    for (s, &c) in share_pct.iter_mut().zip(&self.counts[i]) {
                        *s = 100.0 * c as f64 / total as f64;
                    }
                }
                HourlyProfile {
                    code: self
                        .map
                        .code(publisher)
                        .expect("publisher in map")
                        .to_string(),
                    share_pct,
                    total,
                }
            })
            .collect();
        TemporalReport { sites }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::PublisherId;

    fn record_at_local_hour(publisher: u16, hour: u64) -> LogRecord {
        LogRecord {
            publisher: PublisherId::new(publisher),
            timestamp: hour * 3600,
            tz_offset_secs: 0,
            ..LogRecord::example()
        }
    }

    #[test]
    fn shares_sum_to_hundred() {
        let records: Vec<LogRecord> = (0..240).map(|i| record_at_local_hour(1, i % 24)).collect();
        let report = run_analyzer(TemporalAnalyzer::new(SiteMap::paper_five()), &records);
        let v1 = report.site("V-1").unwrap();
        assert_eq!(v1.total, 240);
        let sum: f64 = v1.share_pct.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        // Uniform: peak-to-trough is 1.
        assert!((v1.peak_to_trough().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn peak_detection_with_timezone() {
        // All requests at 03:00 local via a -5h offset.
        let records: Vec<LogRecord> = (0..10)
            .map(|_| LogRecord {
                publisher: PublisherId::new(1),
                timestamp: 8 * 3600, // 08:00 UTC
                tz_offset_secs: -5 * 3600,
                ..LogRecord::example()
            })
            .collect();
        let report = run_analyzer(TemporalAnalyzer::new(SiteMap::paper_five()), &records);
        let v1 = report.site("V-1").unwrap();
        assert_eq!(v1.peak_hour(), 3);
        assert!(v1.peaks_late_night());
        assert_eq!(v1.peak_to_trough(), None, "empty trough hours");
    }

    #[test]
    fn empty_site_all_zero() {
        let report = run_analyzer(TemporalAnalyzer::new(SiteMap::paper_five()), &[]);
        let p1 = report.site("P-1").unwrap();
        assert_eq!(p1.total, 0);
        assert!(p1.share_pct.iter().all(|&s| s == 0.0));
    }
}
