//! Figures 1, 2a, 2b — content and traffic composition.
//!
//! Fig 1 counts *distinct objects* per content class on the CDN servers;
//! Fig 2a counts requests per class; Fig 2b sums the traffic volume per
//! class (bytes actually served, which is what an edge log measures).

use super::{Analyzer, StreamAnalyzer};
use crate::sitemap::SiteMap;
use oat_httplog::{ContentClass, LogRecord, ObjectId};
use serde::{Deserialize, Serialize};
// Distinct-object sets are only reduced with `len()`, never iterated.
// oat-lint: allow(ordered-output)
use std::collections::HashSet;

/// Per-site composition figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteComposition {
    /// Site code (`V-1`, …).
    pub code: String,
    /// Distinct objects per class `[video, image, other]` (Fig 1).
    pub objects: [u64; 3],
    /// Requests per class (Fig 2a).
    pub requests: [u64; 3],
    /// Bytes served per class (Fig 2b).
    pub bytes: [u64; 3],
}

impl SiteComposition {
    /// Share of the given class among this site's distinct objects.
    pub fn object_share(&self, class: ContentClass) -> f64 {
        share(&self.objects, class)
    }

    /// Share of the given class among this site's requests.
    pub fn request_share(&self, class: ContentClass) -> f64 {
        share(&self.requests, class)
    }

    /// Share of the given class among this site's served bytes.
    pub fn byte_share(&self, class: ContentClass) -> f64 {
        share(&self.bytes, class)
    }
}

fn class_idx(class: ContentClass) -> usize {
    match class {
        ContentClass::Video => 0,
        ContentClass::Image => 1,
        ContentClass::Other => 2,
    }
}

fn share(counts: &[u64; 3], class: ContentClass) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        0.0
    } else {
        counts[class_idx(class)] as f64 / total as f64
    }
}

/// The full composition report (Figs 1 + 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositionReport {
    /// One entry per site, in reporting order.
    pub sites: Vec<SiteComposition>,
}

impl CompositionReport {
    /// Composition of one site by code.
    pub fn site(&self, code: &str) -> Option<&SiteComposition> {
        self.sites.iter().find(|s| s.code == code)
    }
}

/// Streaming analyzer for Figures 1 and 2.
#[derive(Debug)]
pub struct CompositionAnalyzer {
    map: SiteMap,
    seen_objects: Vec<[HashSet<ObjectId>; 3]>, // oat-lint: allow(ordered-output)
    requests: Vec<[u64; 3]>,
    bytes: Vec<[u64; 3]>,
}

impl CompositionAnalyzer {
    /// Creates an analyzer for the sites in `map`.
    pub fn new(map: SiteMap) -> Self {
        let n = map.len();
        Self {
            map,
            seen_objects: (0..n).map(|_| Default::default()).collect(),
            requests: vec![[0; 3]; n],
            bytes: vec![[0; 3]; n],
        }
    }
}

impl StreamAnalyzer for CompositionAnalyzer {}

impl Analyzer for CompositionAnalyzer {
    type Output = CompositionReport;

    fn observe(&mut self, record: &LogRecord) {
        let Some(site) = self.map.index(record.publisher) else {
            return;
        };
        let c = class_idx(record.content_class());
        // oat-lint: allow(bounded-memory) -- distinct-object set: bounded by catalog cardinality
        self.seen_objects[site][c].insert(record.object);
        self.requests[site][c] += 1;
        self.bytes[site][c] += record.bytes_served;
    }

    fn finish(self) -> CompositionReport {
        let sites = self
            .map
            .publishers()
            .enumerate()
            .map(|(i, publisher)| SiteComposition {
                code: self
                    .map
                    .code(publisher)
                    .expect("publisher in map")
                    .to_string(),
                objects: {
                    let [video, image, other] = &self.seen_objects[i];
                    [video.len() as u64, image.len() as u64, other.len() as u64]
                },
                requests: self.requests[i],
                bytes: self.bytes[i],
            })
            .collect();
        CompositionReport { sites }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::{FileFormat, PublisherId};

    fn record(publisher: u16, object: u64, format: FileFormat, bytes: u64) -> LogRecord {
        LogRecord {
            publisher: PublisherId::new(publisher),
            object: ObjectId::new(object),
            format,
            bytes_served: bytes,
            ..LogRecord::example()
        }
    }

    #[test]
    fn counts_distinct_objects_and_requests() {
        let records = vec![
            record(1, 1, FileFormat::Mp4, 100),
            record(1, 1, FileFormat::Mp4, 100), // same object again
            record(1, 2, FileFormat::Jpg, 10),
            record(2, 3, FileFormat::Html, 5),
        ];
        let report = run_analyzer(CompositionAnalyzer::new(SiteMap::paper_five()), &records);
        let v1 = report.site("V-1").unwrap();
        assert_eq!(v1.objects, [1, 1, 0]);
        assert_eq!(v1.requests, [2, 1, 0]);
        assert_eq!(v1.bytes, [200, 10, 0]);
        let v2 = report.site("V-2").unwrap();
        assert_eq!(v2.objects, [0, 0, 1]);
        assert!(report.site("nope").is_none());
    }

    #[test]
    fn shares() {
        let records = vec![
            record(1, 1, FileFormat::Mp4, 300),
            record(1, 2, FileFormat::Jpg, 100),
        ];
        let report = run_analyzer(CompositionAnalyzer::new(SiteMap::paper_five()), &records);
        let v1 = report.site("V-1").unwrap();
        assert_eq!(v1.object_share(ContentClass::Video), 0.5);
        assert_eq!(v1.request_share(ContentClass::Image), 0.5);
        assert_eq!(v1.byte_share(ContentClass::Video), 0.75);
        // Empty site: shares are zero.
        let s1 = report.site("S-1").unwrap();
        assert_eq!(s1.object_share(ContentClass::Video), 0.0);
    }

    #[test]
    fn unknown_publisher_ignored() {
        let records = vec![record(99, 1, FileFormat::Mp4, 1)];
        let report = run_analyzer(CompositionAnalyzer::new(SiteMap::paper_five()), &records);
        assert!(report
            .sites
            .iter()
            .all(|s| s.requests.iter().sum::<u64>() == 0));
    }
}
