//! Figure 16 — HTTP response-code composition.
//!
//! Request counts per status code, split into video and image requests.
//! The paper's anchors: 200 dominates; 206 appears for (chunked) video;
//! 304 is strikingly rare because adult browsing happens in
//! incognito/private mode, which discards the browser cache.

use super::{Analyzer, StreamAnalyzer};
use crate::sitemap::SiteMap;
use oat_httplog::{ContentClass, HttpStatus, LogRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Status-code counts for one (site, class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusCounts {
    /// Site code.
    pub code: String,
    /// Requests per status code.
    pub counts: BTreeMap<u16, u64>,
}

impl StatusCounts {
    /// Count for one code.
    pub fn count(&self, status: HttpStatus) -> u64 {
        self.counts.get(&status.code()).copied().unwrap_or(0)
    }

    /// Total requests.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Share (0–1) of one code, zero for an empty table.
    pub fn share(&self, status: HttpStatus) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(status) as f64 / total as f64
        }
    }
}

/// The Figure 16 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseReport {
    /// Per-site video status counts (Fig 16a).
    pub video: Vec<StatusCounts>,
    /// Per-site image status counts (Fig 16b).
    pub image: Vec<StatusCounts>,
}

impl ResponseReport {
    /// Counts for one (site, class).
    pub fn site(&self, code: &str, class: ContentClass) -> Option<&StatusCounts> {
        let list = match class {
            ContentClass::Video => &self.video,
            ContentClass::Image => &self.image,
            ContentClass::Other => return None,
        };
        list.iter().find(|s| s.code == code)
    }
}

/// Streaming analyzer for Figure 16.
#[derive(Debug)]
pub struct ResponseAnalyzer {
    map: SiteMap,
    video: Vec<BTreeMap<u16, u64>>,
    image: Vec<BTreeMap<u16, u64>>,
}

impl ResponseAnalyzer {
    /// Creates an analyzer for the sites in `map`.
    pub fn new(map: SiteMap) -> Self {
        let n = map.len();
        Self {
            map,
            video: vec![BTreeMap::new(); n],
            image: vec![BTreeMap::new(); n],
        }
    }
}

impl StreamAnalyzer for ResponseAnalyzer {}

impl Analyzer for ResponseAnalyzer {
    type Output = ResponseReport;

    fn observe(&mut self, record: &LogRecord) {
        let Some(site) = self.map.index(record.publisher) else {
            return;
        };
        let table = match record.content_class() {
            ContentClass::Video => &mut self.video[site],
            ContentClass::Image => &mut self.image[site],
            ContentClass::Other => return,
        };
        *table.entry(record.status.code()).or_insert(0) += 1;
    }

    fn finish(self) -> ResponseReport {
        let collect = |tables: Vec<BTreeMap<u16, u64>>, map: &SiteMap| {
            map.publishers()
                .zip(tables)
                .map(|(publisher, counts)| StatusCounts {
                    code: map.code(publisher).expect("publisher in map").to_string(),
                    counts,
                })
                .collect()
        };
        let video = collect(self.video, &self.map);
        let image = collect(self.image, &self.map);
        ResponseReport { video, image }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::{FileFormat, PublisherId};

    fn record(publisher: u16, format: FileFormat, status: u16) -> LogRecord {
        LogRecord {
            publisher: PublisherId::new(publisher),
            format,
            status: HttpStatus::new(status).unwrap(),
            ..LogRecord::example()
        }
    }

    #[test]
    fn counts_by_class_and_code() {
        let records = vec![
            record(1, FileFormat::Mp4, 206),
            record(1, FileFormat::Mp4, 206),
            record(1, FileFormat::Mp4, 200),
            record(1, FileFormat::Jpg, 200),
            record(1, FileFormat::Jpg, 304),
            record(1, FileFormat::Html, 200), // "other" — excluded from Fig 16
        ];
        let report = run_analyzer(ResponseAnalyzer::new(SiteMap::paper_five()), &records);
        let video = report.site("V-1", ContentClass::Video).unwrap();
        assert_eq!(video.count(HttpStatus::PARTIAL_CONTENT), 2);
        assert_eq!(video.count(HttpStatus::OK), 1);
        assert_eq!(video.total(), 3);
        assert!((video.share(HttpStatus::PARTIAL_CONTENT) - 2.0 / 3.0).abs() < 1e-9);
        let image = report.site("V-1", ContentClass::Image).unwrap();
        assert_eq!(image.count(HttpStatus::NOT_MODIFIED), 1);
        assert_eq!(image.total(), 2);
        assert!(report.site("V-1", ContentClass::Other).is_none());
    }

    #[test]
    fn empty_shares_zero() {
        let report = run_analyzer(ResponseAnalyzer::new(SiteMap::paper_five()), &[]);
        let s1 = report.site("S-1", ContentClass::Video).unwrap();
        assert_eq!(s1.total(), 0);
        assert_eq!(s1.share(HttpStatus::OK), 0.0);
    }
}
