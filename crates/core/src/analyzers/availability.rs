//! Availability under injected faults — graceful-degradation accounting.
//!
//! Not a paper figure: the paper measures a healthy CDN. This analyzer
//! quantifies what the reproduction's fault-injection layer
//! (`oat_cdnsim::faults`) did to each site's traffic — how many requests
//! were load-shed, served stale, or failed over, and how much origin
//! retrying the degradation cost. Over a healthy trace every site reports
//! availability 1.0 and zero degraded counters.

use super::{Analyzer, StreamAnalyzer};
use crate::checkpoint::field_u64;
use crate::sitemap::SiteMap;
use oat_httplog::{DegradedServe, LogRecord};
use serde::{Deserialize, Serialize};

/// Degradation counters and derived service-level metrics for one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteAvailability {
    /// Site code.
    pub code: String,
    /// Total requests observed.
    pub requests: u64,
    /// Requests load-shed with `503` (outage with no healthy sibling,
    /// capacity pressure, or a brownout miss after retries).
    pub shed: u64,
    /// Requests served by a sibling PoP while the routed PoP was down.
    pub failover: u64,
    /// Requests served stale past their TTL during an origin brownout.
    pub stale: u64,
    /// Origin-fetch retries performed across all requests.
    pub retries: u64,
    /// Bytes served, including degraded serves.
    pub bytes_served: u64,
    /// Bytes served degraded (failover + stale).
    pub degraded_bytes: u64,
}

impl SiteAvailability {
    /// Fraction of requests that received a response body or healthy
    /// status rather than a `503` shed; `None` for an empty site.
    pub fn availability(&self) -> Option<f64> {
        (self.requests > 0).then(|| 1.0 - self.shed as f64 / self.requests as f64)
    }

    /// Mean origin attempts per request (`1.0` without faults); `None`
    /// for an empty site.
    pub fn retry_amplification(&self) -> Option<f64> {
        (self.requests > 0).then(|| 1.0 + self.retries as f64 / self.requests as f64)
    }

    /// Fraction of served bytes that came from a degraded serve; `None`
    /// when no bytes were served.
    pub fn degraded_byte_hit_rate(&self) -> Option<f64> {
        (self.bytes_served > 0).then(|| self.degraded_bytes as f64 / self.bytes_served as f64)
    }

    /// Requests that saw any degradation at all.
    pub fn degraded_requests(&self) -> u64 {
        self.shed + self.failover + self.stale
    }
}

/// The availability report: one entry per site, in reporting order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityReport {
    /// Per-site counters.
    pub sites: Vec<SiteAvailability>,
}

impl AvailabilityReport {
    /// Counters for one site.
    pub fn site(&self, code: &str) -> Option<&SiteAvailability> {
        self.sites.iter().find(|s| s.code == code)
    }

    /// Whether no request on any site was degraded (the healthy-trace
    /// invariant).
    pub fn is_healthy(&self) -> bool {
        self.sites
            .iter()
            .all(|s| s.degraded_requests() == 0 && s.retries == 0)
    }
}

/// Per-site tallies while the stream is in flight.
#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    requests: u64,
    shed: u64,
    failover: u64,
    stale: u64,
    retries: u64,
    bytes_served: u64,
    degraded_bytes: u64,
}

/// Streaming analyzer for the availability report.
#[derive(Debug)]
pub struct AvailabilityAnalyzer {
    map: SiteMap,
    sites: Vec<Tally>,
}

impl AvailabilityAnalyzer {
    /// Creates an analyzer for the sites in `map`.
    pub fn new(map: SiteMap) -> Self {
        let n = map.len();
        Self {
            map,
            sites: vec![Tally::default(); n],
        }
    }

    /// Serializes the fold state for an analysis checkpoint
    /// (see [`crate::checkpoint`]): one line of counters per site.
    pub fn checkpoint_state(&self) -> String {
        let mut out = String::new();
        for (i, t) in self.sites.iter().enumerate() {
            out.push_str(&format!(
                "site={i} requests={} shed={} failover={} stale={} retries={} \
                 bytes_served={} degraded_bytes={}\n",
                t.requests,
                t.shed,
                t.failover,
                t.stale,
                t.retries,
                t.bytes_served,
                t.degraded_bytes,
            ));
        }
        out
    }

    /// Restores an analyzer from [`checkpoint_state`] output. Feeding the
    /// restored analyzer the remaining records yields the same report as
    /// an uninterrupted run.
    ///
    /// # Errors
    ///
    /// A description of the first malformed line, or a site index outside
    /// `map`.
    ///
    /// [`checkpoint_state`]: AvailabilityAnalyzer::checkpoint_state
    pub fn from_checkpoint_state(map: SiteMap, state: &str) -> Result<Self, String> {
        let mut analyzer = Self::new(map);
        for line in state.lines().filter(|l| !l.trim().is_empty()) {
            let mut tok = line.split_whitespace();
            let site = field_u64(tok.next(), "site")? as usize;
            let tally = analyzer
                .sites
                .get_mut(site)
                .ok_or_else(|| format!("site {site} out of range"))?;
            tally.requests = field_u64(tok.next(), "requests")?;
            tally.shed = field_u64(tok.next(), "shed")?;
            tally.failover = field_u64(tok.next(), "failover")?;
            tally.stale = field_u64(tok.next(), "stale")?;
            tally.retries = field_u64(tok.next(), "retries")?;
            tally.bytes_served = field_u64(tok.next(), "bytes_served")?;
            tally.degraded_bytes = field_u64(tok.next(), "degraded_bytes")?;
        }
        Ok(analyzer)
    }
}

impl StreamAnalyzer for AvailabilityAnalyzer {}

impl Analyzer for AvailabilityAnalyzer {
    type Output = AvailabilityReport;

    fn observe(&mut self, record: &LogRecord) {
        let Some(site) = self.map.index(record.publisher) else {
            return;
        };
        let tally = &mut self.sites[site];
        tally.requests += 1;
        tally.bytes_served += record.bytes_served;
        tally.retries += u64::from(record.retries);
        match record.degraded {
            DegradedServe::None => {}
            DegradedServe::Failover => {
                tally.failover += 1;
                tally.degraded_bytes += record.bytes_served;
            }
            DegradedServe::Stale => {
                tally.stale += 1;
                tally.degraded_bytes += record.bytes_served;
            }
            DegradedServe::Shed => tally.shed += 1,
        }
    }

    fn finish(self) -> AvailabilityReport {
        let sites = self
            .map
            .publishers()
            .zip(self.sites)
            .map(|(publisher, t)| SiteAvailability {
                // `publishers()` only yields mapped ids, so the lookup
                // cannot miss; "?" keeps the fold panic-free regardless.
                code: self.map.code(publisher).unwrap_or("?").to_string(),
                requests: t.requests,
                shed: t.shed,
                failover: t.failover,
                stale: t.stale,
                retries: t.retries,
                bytes_served: t.bytes_served,
                degraded_bytes: t.degraded_bytes,
            })
            .collect();
        AvailabilityReport { sites }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::PublisherId;

    fn record(publisher: u16, degraded: DegradedServe, retries: u8, bytes: u64) -> LogRecord {
        LogRecord {
            publisher: PublisherId::new(publisher),
            degraded,
            retries,
            bytes_served: bytes,
            ..LogRecord::example()
        }
    }

    #[test]
    fn counts_degradation_per_site() {
        let records = vec![
            record(1, DegradedServe::None, 0, 100),
            record(1, DegradedServe::Failover, 0, 200),
            record(1, DegradedServe::Stale, 2, 300),
            record(1, DegradedServe::Shed, 3, 0),
            record(2, DegradedServe::None, 1, 50),
        ];
        let report = run_analyzer(AvailabilityAnalyzer::new(SiteMap::paper_five()), &records);
        assert!(!report.is_healthy());
        let v1 = report.site("V-1").unwrap();
        assert_eq!(v1.requests, 4);
        assert_eq!(v1.shed, 1);
        assert_eq!(v1.failover, 1);
        assert_eq!(v1.stale, 1);
        assert_eq!(v1.retries, 5);
        assert_eq!(v1.bytes_served, 600);
        assert_eq!(v1.degraded_bytes, 500);
        assert_eq!(v1.degraded_requests(), 3);
        assert!((v1.availability().unwrap() - 0.75).abs() < 1e-12);
        assert!((v1.retry_amplification().unwrap() - 2.25).abs() < 1e-12);
        assert!((v1.degraded_byte_hit_rate().unwrap() - 500.0 / 600.0).abs() < 1e-12);
        // A retry on a non-degraded serve (origin recovered) still counts.
        let v2 = report.site("V-2").unwrap();
        assert_eq!(v2.retries, 1);
        assert_eq!(v2.availability(), Some(1.0));
    }

    #[test]
    fn checkpoint_restore_matches_uninterrupted() {
        let records = vec![
            record(1, DegradedServe::None, 0, 100),
            record(1, DegradedServe::Failover, 0, 200),
            record(2, DegradedServe::Stale, 2, 300),
            record(3, DegradedServe::Shed, 3, 0),
            record(2, DegradedServe::None, 1, 50),
        ];
        let whole = run_analyzer(AvailabilityAnalyzer::new(SiteMap::paper_five()), &records);
        for k in 0..=records.len() {
            let first = run_analyzer_partial(
                AvailabilityAnalyzer::new(SiteMap::paper_five()),
                &records[..k],
            );
            let state = first.checkpoint_state();
            let resumed =
                AvailabilityAnalyzer::from_checkpoint_state(SiteMap::paper_five(), &state)
                    .expect("restores");
            assert_eq!(run_analyzer(resumed, &records[k..]), whole, "split at {k}");
        }
    }

    fn run_analyzer_partial(
        mut analyzer: AvailabilityAnalyzer,
        records: &[LogRecord],
    ) -> AvailabilityAnalyzer {
        for r in records {
            analyzer.observe(r);
        }
        analyzer
    }

    #[test]
    fn checkpoint_rejects_damage() {
        assert!(
            AvailabilityAnalyzer::from_checkpoint_state(SiteMap::paper_five(), "site=99 x=1")
                .is_err()
        );
        assert!(
            AvailabilityAnalyzer::from_checkpoint_state(SiteMap::paper_five(), "nonsense").is_err()
        );
    }

    #[test]
    fn healthy_records_report_full_availability() {
        let records = vec![
            record(1, DegradedServe::None, 0, 100),
            record(3, DegradedServe::None, 0, 100),
        ];
        let report = run_analyzer(AvailabilityAnalyzer::new(SiteMap::paper_five()), &records);
        assert!(report.is_healthy());
        assert_eq!(report.site("V-1").unwrap().availability(), Some(1.0));
        // An idle site has no defined availability.
        let idle = report.site("P-2").unwrap();
        assert_eq!(idle.availability(), None);
        assert_eq!(idle.retry_amplification(), None);
        assert_eq!(idle.degraded_byte_hit_rate(), None);
        assert!(report.site("NOPE").is_none());
    }
}
