//! Figure 11 — user request inter-arrival time distributions.
//!
//! Gaps between a user's consecutive requests to one site. The paper:
//! video sites show median IATs under 10 minutes (chunked playback),
//! image-heavy sites over an hour (sparse revisits).

use super::Analyzer;
use crate::sitemap::SiteMap;
use oat_httplog::{LogRecord, UserId};
use oat_stats::Ecdf;
use serde::{Deserialize, Serialize};
// oat-lint: allow(ordered-output) — map is only probed per record, never iterated.
use std::collections::HashMap;

/// One site's IAT distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IatDistribution {
    /// Site code.
    pub code: String,
    /// ECDF over inter-arrival gaps, seconds.
    pub ecdf: Ecdf,
}

impl IatDistribution {
    /// Median gap in seconds.
    pub fn median_secs(&self) -> Option<f64> {
        self.ecdf.median()
    }
}

/// The Figure 11 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IatReport {
    /// Per-site distributions in reporting order.
    pub sites: Vec<IatDistribution>,
}

impl IatReport {
    /// Distribution of one site by code.
    pub fn site(&self, code: &str) -> Option<&IatDistribution> {
        self.sites.iter().find(|s| s.code == code)
    }
}

/// Streaming analyzer for Figure 11.
///
/// Requires the record stream to be time-sorted (which both the generator
/// and real CDN log dumps provide).
#[derive(Debug)]
pub struct IatAnalyzer {
    map: SiteMap,
    // Keyed lookups only (insert returns the previous timestamp); iteration
    // order never matters. oat-lint: allow(ordered-output)
    last_seen: Vec<HashMap<UserId, u64>>,
    gaps: Vec<Vec<f64>>,
}

impl IatAnalyzer {
    /// Creates an analyzer for the sites in `map`.
    pub fn new(map: SiteMap) -> Self {
        let n = map.len();
        Self {
            map,
            last_seen: vec![HashMap::new(); n], // oat-lint: allow(ordered-output)
            gaps: vec![Vec::new(); n],
        }
    }
}

impl Analyzer for IatAnalyzer {
    type Output = IatReport;

    // Cross-record state (not a pure incremental fold): the streaming
    // pipeline replays this analyzer from the on-disk record spool.
    fn needs_replay(&self) -> bool {
        true
    }

    fn observe(&mut self, record: &LogRecord) {
        let Some(site) = self.map.index(record.publisher) else {
            return;
        };
        if let Some(prev) = self.last_seen[site].insert(record.user, record.timestamp) {
            self.gaps[site].push(record.timestamp.saturating_sub(prev) as f64);
        }
    }

    fn finish(self) -> IatReport {
        let sites = self
            .map
            .publishers()
            .zip(self.gaps)
            .map(|(publisher, gaps)| IatDistribution {
                code: self
                    .map
                    .code(publisher)
                    .expect("publisher in map")
                    .to_string(),
                ecdf: Ecdf::from_samples(gaps),
            })
            .collect();
        IatReport { sites }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_analyzer;
    use super::*;
    use oat_httplog::PublisherId;

    fn record(publisher: u16, user: u64, ts: u64) -> LogRecord {
        LogRecord {
            publisher: PublisherId::new(publisher),
            user: UserId::new(user),
            timestamp: ts,
            ..LogRecord::example()
        }
    }

    #[test]
    fn per_user_gaps() {
        let records = vec![
            record(1, 1, 0),
            record(1, 2, 5),
            record(1, 1, 10), // user 1 gap: 10
            record(1, 2, 65), // user 2 gap: 60
            record(1, 1, 20), // user 1 gap: 10
        ];
        let report = run_analyzer(IatAnalyzer::new(SiteMap::paper_five()), &records);
        let v1 = report.site("V-1").unwrap();
        assert_eq!(v1.ecdf.len(), 3);
        assert_eq!(v1.median_secs(), Some(10.0));
        assert_eq!(v1.ecdf.max(), Some(60.0));
    }

    #[test]
    fn sites_tracked_independently() {
        let records = vec![record(1, 1, 0), record(3, 1, 100), record(1, 1, 50)];
        let report = run_analyzer(IatAnalyzer::new(SiteMap::paper_five()), &records);
        // Same user on different sites: V-1 gap 50, P-1 has none.
        assert_eq!(report.site("V-1").unwrap().ecdf.len(), 1);
        assert_eq!(report.site("V-1").unwrap().median_secs(), Some(50.0));
        assert!(report.site("P-1").unwrap().ecdf.is_empty());
        assert!(report.site("P-1").unwrap().median_secs().is_none());
    }
}
