//! The analysis pipeline of the ICDCS 2016 online-adult-traffic study.
//!
//! This crate is the paper's primary contribution rebuilt as a library:
//! given a stream of CDN [`LogRecord`](oat_httplog::LogRecord)s it
//! reproduces every figure in the evaluation —
//!
//! | Figures | Analyzer |
//! |---------|----------|
//! | 1, 2a, 2b | [`analyzers::composition`] |
//! | 3 | [`analyzers::temporal`] |
//! | 4 | [`analyzers::device`] |
//! | 5a, 5b | [`analyzers::sizes`] |
//! | 6a, 6b | [`analyzers::popularity`] |
//! | 7 | [`analyzers::aging`] |
//! | 8, 9, 10 | [`analyzers::clustering`] |
//! | 11 | [`analyzers::iat`] |
//! | 12 | [`analyzers::sessions`] |
//! | 13, 14 | [`analyzers::addiction`] |
//! | 15 | [`analyzers::cache`] |
//! | 16 | [`analyzers::response`] |
//! | — (fault runs) | [`analyzers::availability`] |
//!
//! [`experiment::run`] wires the whole reproduction end-to-end: synthesize
//! a trace (`oat-workload`), replay it through the CDN (`oat-cdnsim`), and
//! run every analyzer in a single streaming pass. [`report`] renders each
//! figure's data as text tables for the `repro` harness.
//!
//! # Example
//!
//! ```no_run
//! use oat_core::experiment::{run, ExperimentConfig};
//!
//! let result = run(&ExperimentConfig::small())?;
//! println!("{}", oat_core::report::render_all(&result));
//! # Ok::<(), oat_core::experiment::ExperimentError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyzers;
pub mod checkpoint;
pub mod experiment;
pub mod export;
pub mod report;
pub mod sitemap;

pub use analyzers::{Analyzer, StreamAnalyzer};
pub use checkpoint::{AnalysisCheckpoint, CheckpointError, CHECKPOINT_HEADER};
pub use experiment::{
    run, run_streaming, run_streaming_gauged, ExperimentConfig, ExperimentResult, StreamGauge,
    StreamOptions,
};
pub use sitemap::SiteMap;
