//! End-to-end reproduction runner: synthesize → replay → analyze.

use crate::analyzers::{
    addiction::{AddictionAnalyzer, AddictionReport},
    aging::{AgingAnalyzer, AgingReport},
    availability::{AvailabilityAnalyzer, AvailabilityReport},
    cache::{CacheAnalyzer, CacheReport},
    clustering::{ClusteringAnalyzer, ClusteringConfig, ClusteringReport},
    composition::{CompositionAnalyzer, CompositionReport},
    device::{DeviceAnalyzer, DeviceReport},
    iat::{IatAnalyzer, IatReport},
    popularity::{PopularityAnalyzer, PopularityReport},
    response::{ResponseAnalyzer, ResponseReport},
    run_analyzer, run_analyzer_replay,
    sessions::{SessionAnalyzer, SessionReport},
    sizes::{SizeAnalyzer, SizeReport},
    temporal::{TemporalAnalyzer, TemporalReport},
    StreamAnalyzer,
};
use crate::sitemap::SiteMap;
use oat_cdnsim::{FaultPlan, ServeStats, SimConfig, Simulator};
use oat_httplog::{ColumnarDirReader, ColumnarDirWriter, ContentClass, HttplogError, LogRecord};
use oat_workload::{generate, generate_streaming, ConfigError, GenOptions, TraceConfig};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Configuration for one full reproduction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Workload-generation parameters.
    pub trace: TraceConfig,
    /// CDN-simulation parameters.
    pub sim: SimConfig,
    /// Clustering parameters (Figs 8–10).
    pub clustering: ClusteringConfig,
    /// Which (site, class) pairs to cluster; defaults to the paper's
    /// V-2 video and P-2 image.
    pub clustering_targets: Vec<(String, ContentClass)>,
    /// Optional deterministic fault-injection schedule; `None` (the
    /// default) replays a healthy CDN. Windows compare against absolute
    /// request timestamps — shift trace-relative plans by
    /// `trace.start_unix` ([`FaultPlan::shifted`]) before attaching.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
}

impl ExperimentConfig {
    /// Laptop-scale defaults (seconds of wall-clock).
    pub fn small() -> Self {
        Self {
            trace: TraceConfig::small(),
            sim: SimConfig::default_edge(),
            clustering: ClusteringConfig::default(),
            clustering_targets: vec![
                ("V-2".to_string(), ContentClass::Video),
                ("P-2".to_string(), ContentClass::Image),
            ],
            faults: None,
        }
    }

    /// Paper-scale run (~5 M records; minutes of wall-clock). Per-PoP
    /// capacity is provisioned for the full catalogs.
    pub fn paper() -> Self {
        let mut config = Self {
            trace: TraceConfig::paper_week(),
            ..Self::small()
        };
        config.sim.cache_capacity_bytes = 64_000_000_000;
        config
    }

    /// Sets the master seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.trace.seed = seed;
        self
    }

    /// Attaches a fault plan (builder-style). The plan's windows must
    /// already be in absolute trace time.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The simulator for this config: healthy, or fault-injecting when a
    /// plan is attached.
    fn simulator(&self) -> Simulator {
        let sim = Simulator::new(&self.sim);
        match &self.faults {
            Some(plan) => sim.with_faults(plan.clone()),
            None => sim,
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// Everything the paper's evaluation section reports, for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Figures 1, 2a, 2b.
    pub composition: CompositionReport,
    /// Figure 3.
    pub temporal: TemporalReport,
    /// Figure 4.
    pub devices: DeviceReport,
    /// Figures 5a, 5b.
    pub sizes: SizeReport,
    /// Figures 6a, 6b.
    pub popularity: PopularityReport,
    /// Figure 7.
    pub aging: AgingReport,
    /// Figures 8–10 (one report per configured target).
    pub clusterings: Vec<ClusteringReport>,
    /// Figure 11.
    pub iat: IatReport,
    /// Figure 12.
    pub sessions: SessionReport,
    /// Figures 13, 14.
    pub addiction: AddictionReport,
    /// Figure 15.
    pub cache: CacheReport,
    /// Figure 16.
    pub responses: ResponseReport,
    /// Per-site availability under the configured fault plan (all-healthy
    /// without one).
    pub availability: AvailabilityReport,
    /// Records analyzed.
    pub records: u64,
    /// Aggregated simulator statistics.
    pub sim_stats: ServeStats,
}

/// Options for the streaming pipeline ([`run_streaming`]). Every knob
/// affects only resource usage, never the result: a streaming run is
/// result-identical to [`run`] for the same [`ExperimentConfig`].
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamOptions {
    /// Worker threads for trace generation; `0` = all available cores.
    pub threads: usize,
    /// Users per generation shard; `0` = the workload crate's default.
    pub shard_size: usize,
    /// Requests per pipeline batch (also the multi-pass replay batch);
    /// `0` = the workload crate's default.
    pub batch_size: usize,
    /// Base directory for the on-disk columnar record spool the multi-pass
    /// analyzers replay from; `None` = the system temp directory. Each run
    /// spools into (and removes) its own unique subdirectory.
    #[serde(default)]
    pub spool_dir: Option<PathBuf>,
    /// Rows per columnar spool shard; `0` = the httplog crate's default.
    #[serde(default)]
    pub rows_per_shard: usize,
}

/// Resource accounting for one streaming run (returned by
/// [`run_streaming_gauged`]): evidence that the pipeline is out-of-core,
/// not a retained in-memory copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamGauge {
    /// Peak number of replayed records simultaneously resident in memory
    /// (live record batches across the simulator, analyzer feeds, and the
    /// spool writer). Bounded by a few pipeline batches regardless of
    /// trace size.
    pub peak_live_records: u64,
    /// Records spooled to (and replayed from) the columnar directory.
    pub spooled_rows: u64,
    /// Columnar shards the spool rotated through.
    pub spool_shards: u64,
}

/// Error running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// Invalid workload configuration.
    Config(ConfigError),
    /// The on-disk record spool failed to write or replay.
    Spool(HttplogError),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid workload config: {e}"),
            Self::Spool(e) => write!(f, "record spool failed: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::Spool(e) => Some(e),
        }
    }
}

impl From<ConfigError> for ExperimentError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<HttplogError> for ExperimentError {
    fn from(e: HttplogError) -> Self {
        Self::Spool(e)
    }
}

/// Runs a full reproduction: generate the trace, replay it through the CDN
/// simulator, analyze the resulting records.
///
/// # Errors
///
/// Returns [`ExperimentError::Config`] if the trace config is invalid.
pub fn run(config: &ExperimentConfig) -> Result<ExperimentResult, ExperimentError> {
    let trace = generate(&config.trace)?;
    let map = SiteMap::from_profiles(&config.trace.sites);
    let simulator = config.simulator();
    let records = simulator.replay(trace.requests);
    let sim_stats = simulator.stats();
    Ok(analyze(
        &records,
        &map,
        config.trace.start_unix,
        config.trace.duration_secs,
        &config.clustering,
        &config.clustering_targets,
        sim_stats,
    ))
}

/// Runs a full reproduction through the streaming pipeline: trace batches
/// flow generator → simulator → analyzers through bounded channels, and
/// the replayed records are spooled to an on-disk columnar shard directory
/// instead of being retained in memory — peak record residency is a few
/// pipeline batches regardless of trace size.
///
/// Single-pass analyzers ([`StreamAnalyzer`]) consume each record batch as
/// soon as the simulator emits it; multi-pass analyzers (sessions,
/// addiction, clustering, cache, aging, iat — [`Analyzer::needs_replay`])
/// replay the spool in bounded batches once generation finishes. The
/// spool lives in a unique per-run subdirectory of
/// [`StreamOptions::spool_dir`] and is removed when the run ends. The
/// result equals [`run`] exactly — same requests (per-user RNG streams),
/// same replay order per PoP, same analyzer folds.
///
/// [`Analyzer::needs_replay`]: crate::analyzers::Analyzer::needs_replay
///
/// # Errors
///
/// Returns [`ExperimentError::Config`] if the trace config is invalid, or
/// [`ExperimentError::Spool`] if the record spool fails to write or
/// replay.
pub fn run_streaming(
    config: &ExperimentConfig,
    opts: &StreamOptions,
) -> Result<ExperimentResult, ExperimentError> {
    run_streaming_gauged(config, opts).map(|(result, _)| result)
}

/// [`run_streaming`], also returning the run's [`StreamGauge`] resource
/// accounting (peak live records, spool size). The experiment result is
/// identical to [`run_streaming`] / [`run`].
///
/// # Errors
///
/// As for [`run_streaming`].
pub fn run_streaming_gauged(
    config: &ExperimentConfig,
    opts: &StreamOptions,
) -> Result<(ExperimentResult, StreamGauge), ExperimentError> {
    let gen_opts = GenOptions {
        threads: opts.threads,
        shard_size: opts.shard_size,
    };
    let stream = generate_streaming(&config.trace, &gen_opts, opts.batch_size)?;
    let map = SiteMap::from_profiles(&config.trace.sites);
    let simulator = config.simulator();
    let hours = (config.trace.duration_secs / 3600) as usize;
    let days = (config.trace.duration_secs / 86_400).max(1) as usize;

    let composition = CompositionAnalyzer::new(map.clone());
    let temporal = TemporalAnalyzer::new(map.clone());
    let devices = DeviceAnalyzer::new(map.clone());
    let sizes = SizeAnalyzer::new(map.clone());
    let popularity = PopularityAnalyzer::new(map.clone());
    let responses = ResponseAnalyzer::new(map.clone());
    let availability = AvailabilityAnalyzer::new(map.clone());
    let aging = AgingAnalyzer::new(map.clone(), days);
    let iat = IatAnalyzer::new(map.clone());
    let sessions = SessionAnalyzer::new(map.clone());
    let addiction = AddictionAnalyzer::new(map.clone());
    let cache = CacheAnalyzer::new(map.clone());
    let clusterers = build_clusterers(
        &map,
        config.trace.start_unix,
        hours,
        &config.clustering,
        &config.clustering_targets,
    );

    let spool = SpoolGuard::create(opts.spool_dir.as_deref(), config.trace.seed)?;
    let mut writer: ColumnarDirWriter<LogRecord> =
        ColumnarDirWriter::new(spool.dir(), SPOOL_PREFIX, opts.rows_per_shard)?;

    let simulator = &simulator;
    let scope_result = crossbeam::thread::scope(|scope| {
        let (composition_tx, composition) = spawn_feed(scope, composition);
        let (temporal_tx, temporal) = spawn_feed(scope, temporal);
        let (devices_tx, devices) = spawn_feed(scope, devices);
        let (sizes_tx, sizes) = spawn_feed(scope, sizes);
        let (popularity_tx, popularity) = spawn_feed(scope, popularity);
        let (responses_tx, responses) = spawn_feed(scope, responses);
        let (availability_tx, availability) = spawn_feed(scope, availability);
        let feeds = [
            composition_tx,
            temporal_tx,
            devices_tx,
            sizes_tx,
            popularity_tx,
            responses_tx,
            availability_tx,
        ];

        // Drive the pipeline: replay each request batch as it arrives,
        // broadcast the records to the single-pass feeds, and spool the
        // chunk to the columnar directory. Nothing retains the chunks:
        // once the feeds drain a batch it is freed.
        let mut gauge = LiveGauge::new();
        let mut spool_err: Option<HttplogError> = None;
        for batch in stream.batches.iter() {
            let chunk = Arc::new(simulator.replay(batch));
            if let Err(e) = writer.push_batch(chunk.as_slice()) {
                spool_err = Some(e);
                break;
            }
            for tx in &feeds {
                // A dead feed means its analyzer panicked; the join below
                // re-raises that payload, so the lost send is moot.
                let _ = tx.send(Arc::clone(&chunk));
            }
            gauge.track(&chunk);
        }
        drop(feeds); // close the feeds so the single-pass analyzers finish
        let sim_stats = simulator.stats();

        let composition = join_scoped(composition);
        let temporal = join_scoped(temporal);
        let devices = join_scoped(devices);
        let sizes = join_scoped(sizes);
        let popularity = join_scoped(popularity);
        let responses = join_scoped(responses);
        let availability = join_scoped(availability);

        if let Some(e) = spool_err {
            return Err(ExperimentError::Spool(e));
        }
        let (records, spool_shards) = writer.finish()?;
        let reader: ColumnarDirReader<LogRecord> =
            ColumnarDirReader::open(spool.dir(), SPOOL_PREFIX)?;

        // Multi-pass analyzers replay the spool from disk, fanned out like
        // the batch path; each pass holds one bounded batch at a time.
        let reader = &reader;
        let batch_rows = opts.batch_size;
        let (aging, iat, sessions, addiction, cache, clusterings) =
            scope_output(crossbeam::thread::scope(|scope| {
                let aging = scope.spawn(move |_| run_analyzer_replay(aging, reader, batch_rows));
                let iat = scope.spawn(move |_| run_analyzer_replay(iat, reader, batch_rows));
                let sessions =
                    scope.spawn(move |_| run_analyzer_replay(sessions, reader, batch_rows));
                let addiction =
                    scope.spawn(move |_| run_analyzer_replay(addiction, reader, batch_rows));
                let cache = scope.spawn(move |_| run_analyzer_replay(cache, reader, batch_rows));
                let clusterers: Vec<_> = clusterers
                    .into_iter()
                    .map(|c| scope.spawn(move |_| run_analyzer_replay(c, reader, batch_rows)))
                    .collect();
                (
                    join_scoped(aging),
                    join_scoped(iat),
                    join_scoped(sessions),
                    join_scoped(addiction),
                    join_scoped(cache),
                    clusterers.into_iter().map(join_scoped).collect::<Vec<_>>(),
                )
            }));

        let result = ExperimentResult {
            composition,
            temporal,
            devices,
            sizes,
            popularity,
            aging: aging?,
            clusterings: clusterings
                .into_iter()
                .collect::<Result<Vec<_>, HttplogError>>()?,
            iat: iat?,
            sessions: sessions?,
            addiction: addiction?,
            cache: cache?,
            responses,
            availability,
            records,
            sim_stats,
        };
        Ok((
            result,
            StreamGauge {
                peak_live_records: gauge.peak,
                spooled_rows: records,
                spool_shards,
            },
        ))
    });
    scope_output(scope_result)
}

/// Prefix for the columnar shard files inside a run's spool directory.
const SPOOL_PREFIX: &str = "records";

/// Distinguishes concurrent spools from the same process (e.g. parallel
/// test threads sharing a pid and a seed).
// oat-lint: allow(static-mut) -- process-wide monotonic counter; never read for results
static SPOOL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique per-run spool directory, removed (with its shards) on drop —
/// including on error and panic unwinds.
#[derive(Debug)]
struct SpoolGuard {
    dir: PathBuf,
}

impl SpoolGuard {
    fn create(base: Option<&Path>, seed: u64) -> Result<Self, HttplogError> {
        let base = match base {
            Some(dir) => dir.to_path_buf(),
            None => std::env::temp_dir(),
        };
        let seq = SPOOL_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = base.join(format!(
            "oat-stream-spool-{}-{seed:x}-{seq}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for SpoolGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Tracks the peak number of simultaneously live replayed records via weak
/// references: a chunk counts until the last feed drops it.
struct LiveGauge {
    tracked: Vec<Weak<Vec<LogRecord>>>,
    peak: u64,
}

impl LiveGauge {
    fn new() -> Self {
        Self {
            tracked: Vec::new(),
            peak: 0,
        }
    }

    fn track(&mut self, chunk: &Arc<Vec<LogRecord>>) {
        self.tracked.push(Arc::downgrade(chunk));
        self.tracked.retain(|weak| weak.strong_count() > 0);
        let live: u64 = self
            .tracked
            .iter()
            .filter_map(Weak::upgrade)
            .map(|chunk| chunk.len() as u64)
            .sum();
        self.peak = self.peak.max(live);
    }
}

/// Joins a scoped thread, re-raising its panic payload instead of wrapping
/// it in a fresh panic.
fn join_scoped<T>(handle: crossbeam::thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Unwraps a [`crossbeam::thread::scope`] result, re-raising the panic of
/// any thread the scope had to clean up after.
fn scope_output<T>(result: std::thread::Result<T>) -> T {
    match result {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Spawns one single-pass analyzer on a scoped thread fed by a bounded
/// channel of record chunks; returns the feed sender and the handle that
/// yields the analyzer's output once the sender is dropped.
fn spawn_feed<'env, 'scope, A>(
    scope: &'scope crossbeam::thread::Scope<'env>,
    mut analyzer: A,
) -> (
    crossbeam::channel::Sender<Arc<Vec<LogRecord>>>,
    crossbeam::thread::ScopedJoinHandle<'scope, A::Output>,
)
where
    A: StreamAnalyzer + Send + 'env,
    A::Output: Send + 'env,
{
    debug_assert!(
        !analyzer.needs_replay(),
        "multi-pass analyzers replay the spool; only single-pass ones are fed"
    );
    let (tx, rx) = crossbeam::channel::bounded::<Arc<Vec<LogRecord>>>(2);
    let handle = scope.spawn(move |_| {
        for chunk in rx.iter() {
            analyzer.observe_batch(&chunk);
        }
        analyzer.finish()
    });
    (tx, handle)
}

/// Builds one [`ClusteringAnalyzer`] per resolvable target (unknown site
/// codes are skipped).
fn build_clusterers(
    map: &SiteMap,
    trace_start: u64,
    hours: usize,
    clustering: &ClusteringConfig,
    clustering_targets: &[(String, ContentClass)],
) -> Vec<ClusteringAnalyzer> {
    clustering_targets
        .iter()
        .filter_map(|(code, class)| {
            let publisher = map
                .publishers()
                .find(|&p| map.code(p) == Some(code.as_str()))?;
            Some(ClusteringAnalyzer::new(
                publisher,
                code.clone(),
                *class,
                trace_start,
                hours,
                clustering.clone(),
            ))
        })
        .collect()
}

/// Analyzes an existing record stream (e.g. loaded from disk) with every
/// figure analyzer.
///
/// The analyzers are mutually independent, so each drains the shared
/// record slice on its own scoped thread and the results are joined in a
/// fixed order — the output is identical to the serial single-pass
/// version regardless of scheduling.
#[allow(clippy::too_many_arguments)]
pub fn analyze(
    records: &[LogRecord],
    map: &SiteMap,
    trace_start: u64,
    duration_secs: u64,
    clustering: &ClusteringConfig,
    clustering_targets: &[(String, ContentClass)],
    sim_stats: ServeStats,
) -> ExperimentResult {
    let hours = (duration_secs / 3600) as usize;
    let composition = CompositionAnalyzer::new(map.clone());
    let temporal = TemporalAnalyzer::new(map.clone());
    let devices = DeviceAnalyzer::new(map.clone());
    let sizes = SizeAnalyzer::new(map.clone());
    let popularity = PopularityAnalyzer::new(map.clone());
    let aging = AgingAnalyzer::new(map.clone(), (duration_secs / 86_400).max(1) as usize);
    let iat = IatAnalyzer::new(map.clone());
    let sessions = SessionAnalyzer::new(map.clone());
    let addiction = AddictionAnalyzer::new(map.clone());
    let cache = CacheAnalyzer::new(map.clone());
    let responses = ResponseAnalyzer::new(map.clone());
    let availability = AvailabilityAnalyzer::new(map.clone());
    let clusterers = build_clusterers(map, trace_start, hours, clustering, clustering_targets);

    // Fan out: every analyzer streams the shared slice on its own thread.
    // Each is a pure fold over `records`, so concurrency only reorders
    // wall-clock work, never the per-analyzer arithmetic.
    scope_output(crossbeam::thread::scope(|scope| {
        let composition = scope.spawn(move |_| run_analyzer(composition, records));
        let temporal = scope.spawn(move |_| run_analyzer(temporal, records));
        let devices = scope.spawn(move |_| run_analyzer(devices, records));
        let sizes = scope.spawn(move |_| run_analyzer(sizes, records));
        let popularity = scope.spawn(move |_| run_analyzer(popularity, records));
        let aging = scope.spawn(move |_| run_analyzer(aging, records));
        let iat = scope.spawn(move |_| run_analyzer(iat, records));
        let sessions = scope.spawn(move |_| run_analyzer(sessions, records));
        let addiction = scope.spawn(move |_| run_analyzer(addiction, records));
        let cache = scope.spawn(move |_| run_analyzer(cache, records));
        let responses = scope.spawn(move |_| run_analyzer(responses, records));
        let availability = scope.spawn(move |_| run_analyzer(availability, records));
        let clusterers: Vec<_> = clusterers
            .into_iter()
            .map(|c| scope.spawn(move |_| run_analyzer(c, records)))
            .collect();

        ExperimentResult {
            composition: join_scoped(composition),
            temporal: join_scoped(temporal),
            devices: join_scoped(devices),
            sizes: join_scoped(sizes),
            popularity: join_scoped(popularity),
            aging: join_scoped(aging),
            clusterings: clusterers.into_iter().map(join_scoped).collect(),
            iat: join_scoped(iat),
            sessions: join_scoped(sessions),
            addiction: join_scoped(addiction),
            cache: join_scoped(cache),
            responses: join_scoped(responses),
            availability: join_scoped(availability),
            records: records.len() as u64,
            sim_stats,
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        let mut config = ExperimentConfig::small();
        config.trace.scale = 0.002;
        config.trace.catalog_scale = 0.01;
        config
    }

    #[test]
    fn end_to_end_produces_all_figures() {
        let result = run(&tiny()).unwrap();
        assert!(result.records > 1_000);
        assert_eq!(result.composition.sites.len(), 5);
        assert_eq!(result.temporal.sites.len(), 5);
        assert_eq!(result.devices.sites.len(), 5);
        assert_eq!(result.sizes.video.len(), 5);
        assert_eq!(result.popularity.image.len(), 5);
        assert_eq!(result.aging.sites.len(), 5);
        assert_eq!(result.clusterings.len(), 2);
        assert_eq!(result.iat.sites.len(), 5);
        assert_eq!(result.sessions.sites.len(), 5);
        assert_eq!(result.addiction.video.len(), 5);
        assert_eq!(result.cache.summaries.len(), 5);
        assert_eq!(result.responses.video.len(), 5);
        assert_eq!(result.availability.sites.len(), 5);
        assert!(
            result.availability.is_healthy(),
            "no fault plan, so nothing may degrade"
        );
        assert_eq!(result.sim_stats.requests, result.records);
    }

    #[test]
    fn faulted_run_degrades_and_streams_identically() {
        let mut config = tiny();
        let pops = (config.sim.pops_per_region * 4) as u16;
        config.faults = Some(
            FaultPlan::sample(0xFA_17, config.trace.duration_secs, pops)
                .shifted(config.trace.start_unix),
        );
        let batch = run(&config).unwrap();
        let s = &batch.sim_stats;
        assert!(
            s.degraded_hits + s.stale_hits + s.shed + s.retries > 0,
            "the sampled plan injected nothing observable"
        );
        assert!(!batch.availability.is_healthy());
        let availability_totals: u64 = batch
            .availability
            .sites
            .iter()
            .map(|site| site.requests)
            .sum();
        assert_eq!(availability_totals, batch.records);
        let streamed = run_streaming(
            &config,
            &StreamOptions {
                threads: 2,
                shard_size: 37,
                batch_size: 1_000,
                ..StreamOptions::default()
            },
        )
        .unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn deterministic() {
        let a = run(&tiny()).unwrap();
        let b = run(&tiny()).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.composition, b.composition);
        assert_eq!(a.sessions, b.sessions);
    }

    #[test]
    fn streaming_matches_batch() {
        let batch = run(&tiny()).unwrap();
        let streamed = run_streaming(
            &tiny(),
            &StreamOptions {
                threads: 2,
                shard_size: 37,
                batch_size: 1_000,
                ..StreamOptions::default()
            },
        )
        .unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn streaming_is_out_of_core() {
        let spool_base = std::env::temp_dir().join("oat-experiment-tests-spool");
        let _ = std::fs::remove_dir_all(&spool_base);
        let batch = run(&tiny()).unwrap();
        let opts = StreamOptions {
            threads: 2,
            shard_size: 37,
            batch_size: 250,
            spool_dir: Some(spool_base.clone()),
            rows_per_shard: 600,
        };
        let (streamed, gauge) = run_streaming_gauged(&tiny(), &opts).unwrap();
        assert_eq!(batch, streamed);
        assert_eq!(gauge.spooled_rows, streamed.records);
        assert!(
            gauge.spool_shards >= 2,
            "expected several spool shards, got {}",
            gauge.spool_shards
        );
        // The bounded-memory invariant: peak live records is a handful of
        // pipeline batches (producer + two queued per bounded feed + in
        // flight), never the whole trace — the old pipeline retained every
        // chunk, so its peak equaled `records`.
        assert!(
            gauge.peak_live_records < streamed.records,
            "peak {} should be below the trace size {}",
            gauge.peak_live_records,
            streamed.records
        );
        assert!(
            gauge.peak_live_records <= 8 * 250,
            "peak {} not bounded by a few batches",
            gauge.peak_live_records
        );
        // The per-run spool subdirectory is cleaned up on exit.
        let leftovers: Vec<_> = std::fs::read_dir(&spool_base)
            .map(|entries| entries.filter_map(Result::ok).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "spool not cleaned up: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&spool_base);
    }

    #[test]
    fn streaming_rejects_invalid_config() {
        let mut config = tiny();
        config.trace.scale = -1.0;
        let err = run_streaming(&config, &StreamOptions::default()).unwrap_err();
        assert!(matches!(err, ExperimentError::Config(_)));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut config = tiny();
        config.trace.scale = -1.0;
        let err = run(&config).unwrap_err();
        assert!(matches!(err, ExperimentError::Config(_)));
        assert!(err.to_string().contains("invalid workload config"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn unknown_clustering_target_skipped() {
        let mut config = tiny();
        config.clustering_targets = vec![("NOPE".to_string(), ContentClass::Video)];
        let result = run(&config).unwrap();
        assert!(result.clusterings.is_empty());
    }
}
