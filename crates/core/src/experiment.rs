//! End-to-end reproduction runner: synthesize → replay → analyze.

use crate::analyzers::{
    addiction::{AddictionAnalyzer, AddictionReport},
    aging::{AgingAnalyzer, AgingReport},
    cache::{CacheAnalyzer, CacheReport},
    clustering::{ClusteringAnalyzer, ClusteringConfig, ClusteringReport},
    composition::{CompositionAnalyzer, CompositionReport},
    device::{DeviceAnalyzer, DeviceReport},
    iat::{IatAnalyzer, IatReport},
    popularity::{PopularityAnalyzer, PopularityReport},
    response::{ResponseAnalyzer, ResponseReport},
    sessions::{SessionAnalyzer, SessionReport},
    sizes::{SizeAnalyzer, SizeReport},
    temporal::{TemporalAnalyzer, TemporalReport},
    Analyzer,
};
use crate::sitemap::SiteMap;
use oat_cdnsim::{ServeStats, SimConfig, Simulator};
use oat_httplog::{ContentClass, LogRecord};
use oat_workload::{generate, ConfigError, TraceConfig};
use serde::{Deserialize, Serialize};

/// Configuration for one full reproduction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Workload-generation parameters.
    pub trace: TraceConfig,
    /// CDN-simulation parameters.
    pub sim: SimConfig,
    /// Clustering parameters (Figs 8–10).
    pub clustering: ClusteringConfig,
    /// Which (site, class) pairs to cluster; defaults to the paper's
    /// V-2 video and P-2 image.
    pub clustering_targets: Vec<(String, ContentClass)>,
}

impl ExperimentConfig {
    /// Laptop-scale defaults (seconds of wall-clock).
    pub fn small() -> Self {
        Self {
            trace: TraceConfig::small(),
            sim: SimConfig::default_edge(),
            clustering: ClusteringConfig::default(),
            clustering_targets: vec![
                ("V-2".to_string(), ContentClass::Video),
                ("P-2".to_string(), ContentClass::Image),
            ],
        }
    }

    /// Paper-scale run (~5 M records; minutes of wall-clock). Per-PoP
    /// capacity is provisioned for the full catalogs.
    pub fn paper() -> Self {
        let mut config = Self { trace: TraceConfig::paper_week(), ..Self::small() };
        config.sim.cache_capacity_bytes = 64_000_000_000;
        config
    }

    /// Sets the master seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.trace.seed = seed;
        self
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// Everything the paper's evaluation section reports, for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Figures 1, 2a, 2b.
    pub composition: CompositionReport,
    /// Figure 3.
    pub temporal: TemporalReport,
    /// Figure 4.
    pub devices: DeviceReport,
    /// Figures 5a, 5b.
    pub sizes: SizeReport,
    /// Figures 6a, 6b.
    pub popularity: PopularityReport,
    /// Figure 7.
    pub aging: AgingReport,
    /// Figures 8–10 (one report per configured target).
    pub clusterings: Vec<ClusteringReport>,
    /// Figure 11.
    pub iat: IatReport,
    /// Figure 12.
    pub sessions: SessionReport,
    /// Figures 13, 14.
    pub addiction: AddictionReport,
    /// Figure 15.
    pub cache: CacheReport,
    /// Figure 16.
    pub responses: ResponseReport,
    /// Records analyzed.
    pub records: u64,
    /// Aggregated simulator statistics.
    pub sim_stats: ServeStats,
}

/// Error running an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// Invalid workload configuration.
    Config(ConfigError),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid workload config: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
        }
    }
}

impl From<ConfigError> for ExperimentError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

/// Runs a full reproduction: generate the trace, replay it through the CDN
/// simulator, analyze the resulting records.
///
/// # Errors
///
/// Returns [`ExperimentError::Config`] if the trace config is invalid.
pub fn run(config: &ExperimentConfig) -> Result<ExperimentResult, ExperimentError> {
    let trace = generate(&config.trace)?;
    let map = SiteMap::from_profiles(&config.trace.sites);
    let simulator = Simulator::new(&config.sim);
    let records = simulator.replay(trace.requests);
    let sim_stats = simulator.stats();
    Ok(analyze(
        &records,
        &map,
        config.trace.start_unix,
        config.trace.duration_secs,
        &config.clustering,
        &config.clustering_targets,
        sim_stats,
    ))
}

/// Analyzes an existing record stream (e.g. loaded from disk) with every
/// figure analyzer in one pass.
#[allow(clippy::too_many_arguments)]
pub fn analyze(
    records: &[LogRecord],
    map: &SiteMap,
    trace_start: u64,
    duration_secs: u64,
    clustering: &ClusteringConfig,
    clustering_targets: &[(String, ContentClass)],
    sim_stats: ServeStats,
) -> ExperimentResult {
    let hours = (duration_secs / 3600) as usize;
    let mut composition = CompositionAnalyzer::new(map.clone());
    let mut temporal = TemporalAnalyzer::new(map.clone());
    let mut devices = DeviceAnalyzer::new(map.clone());
    let mut sizes = SizeAnalyzer::new(map.clone());
    let mut popularity = PopularityAnalyzer::new(map.clone());
    let mut aging = AgingAnalyzer::new(map.clone(), (duration_secs / 86_400).max(1) as usize);
    let mut iat = IatAnalyzer::new(map.clone());
    let mut sessions = SessionAnalyzer::new(map.clone());
    let mut addiction = AddictionAnalyzer::new(map.clone());
    let mut cache = CacheAnalyzer::new(map.clone());
    let mut responses = ResponseAnalyzer::new(map.clone());
    let mut clusterers: Vec<ClusteringAnalyzer> = clustering_targets
        .iter()
        .filter_map(|(code, class)| {
            let publisher = map
                .publishers()
                .find(|&p| map.code(p) == Some(code.as_str()))?;
            Some(ClusteringAnalyzer::new(
                publisher,
                code.clone(),
                *class,
                trace_start,
                hours,
                clustering.clone(),
            ))
        })
        .collect();

    // Single streaming pass.
    for record in records {
        composition.observe(record);
        temporal.observe(record);
        devices.observe(record);
        sizes.observe(record);
        popularity.observe(record);
        aging.observe(record);
        iat.observe(record);
        sessions.observe(record);
        addiction.observe(record);
        cache.observe(record);
        responses.observe(record);
        for c in &mut clusterers {
            c.observe(record);
        }
    }

    ExperimentResult {
        composition: composition.finish(),
        temporal: temporal.finish(),
        devices: devices.finish(),
        sizes: sizes.finish(),
        popularity: popularity.finish(),
        aging: aging.finish(),
        clusterings: clusterers.into_iter().map(Analyzer::finish).collect(),
        iat: iat.finish(),
        sessions: sessions.finish(),
        addiction: addiction.finish(),
        cache: cache.finish(),
        responses: responses.finish(),
        records: records.len() as u64,
        sim_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        let mut config = ExperimentConfig::small();
        config.trace.scale = 0.002;
        config.trace.catalog_scale = 0.01;
        config
    }

    #[test]
    fn end_to_end_produces_all_figures() {
        let result = run(&tiny()).unwrap();
        assert!(result.records > 1_000);
        assert_eq!(result.composition.sites.len(), 5);
        assert_eq!(result.temporal.sites.len(), 5);
        assert_eq!(result.devices.sites.len(), 5);
        assert_eq!(result.sizes.video.len(), 5);
        assert_eq!(result.popularity.image.len(), 5);
        assert_eq!(result.aging.sites.len(), 5);
        assert_eq!(result.clusterings.len(), 2);
        assert_eq!(result.iat.sites.len(), 5);
        assert_eq!(result.sessions.sites.len(), 5);
        assert_eq!(result.addiction.video.len(), 5);
        assert_eq!(result.cache.summaries.len(), 5);
        assert_eq!(result.responses.video.len(), 5);
        assert_eq!(result.sim_stats.requests, result.records);
    }

    #[test]
    fn deterministic() {
        let a = run(&tiny()).unwrap();
        let b = run(&tiny()).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.composition, b.composition);
        assert_eq!(a.sessions, b.sessions);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut config = tiny();
        config.trace.scale = -1.0;
        let err = run(&config).unwrap_err();
        assert!(matches!(err, ExperimentError::Config(_)));
        assert!(err.to_string().contains("invalid workload config"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn unknown_clustering_target_skipped() {
        let mut config = tiny();
        config.clustering_targets = vec![("NOPE".to_string(), ContentClass::Video)];
        let result = run(&config).unwrap();
        assert!(result.clusterings.is_empty());
    }
}
