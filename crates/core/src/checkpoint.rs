//! Serializable analysis checkpoints for resumable streaming runs.
//!
//! A long out-of-core analysis (`repro bench scale` over a billion-row
//! spool) folds shard after shard into streaming analyzers. If the process
//! dies hours in, everything folded so far is lost — unless the analyzer
//! state is periodically spilled to disk. This module defines that spill
//! format: a self-describing, checksummed plain-text envelope holding one
//! section per analyzer, written atomically every N shards so a restart
//! resumes from the last completed section instead of shard zero.
//!
//! The format is deliberately text, dependency-free and versioned (the
//! same posture as the spool `MANIFEST`): a header line, `key = value`
//! run metadata, `begin <name>`/`end <name>` sections whose bodies the
//! analyzers themselves encode, and a trailing FNV-1a checksum over
//! everything above it. Floats are serialized as `f64::to_bits` hex so a
//! restore is bit-exact; every map iteration is sorted first so the same
//! state always produces the same bytes.
//!
//! Correctness note: a checkpoint restores *analyzer* state only, not
//! simulator (cache) state. Resuming is sound for analyzers that fold only
//! simulation-independent record fields (publisher, user, object,
//! timestamp, sizes, fault-degradation counters) — which is exactly the
//! bench-scale analyzer set. An analyzer whose output depended on cache
//! hit/miss bits would need the simulator checkpointed too, and does not
//! belong behind this format.

use oat_httplog::fnv1a64;

/// First line of every checkpoint file; bump the version when the
/// envelope (not a section body) changes shape.
pub const CHECKPOINT_HEADER: &str = "oat-analysis-checkpoint v1";

/// Why a checkpoint file could not be restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file does not start with [`CHECKPOINT_HEADER`].
    BadHeader,
    /// The trailing checksum is absent or does not match the content —
    /// a torn write or bit rot; the checkpoint must be discarded.
    ChecksumMismatch,
    /// A structural or per-section parse failure at `line` (1-based).
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadHeader => write!(f, "not an analysis checkpoint (bad header)"),
            Self::ChecksumMismatch => write!(f, "checkpoint checksum mismatch (torn or corrupt)"),
            Self::Malformed { line, msg } => write!(f, "checkpoint line {line}: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A restartable snapshot of a streaming analysis run.
///
/// The envelope carries run identity (`fingerprint` must match the spool
/// being analyzed), progress (`shards_done` whole shards folded,
/// `rows_done` rows observed), and one opaque body per analyzer. Section
/// bodies are produced/consumed by the analyzers' own
/// `checkpoint_state` / `from_checkpoint_state` methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisCheckpoint {
    /// Config fingerprint of the spool this checkpoint belongs to.
    pub fingerprint: u64,
    /// Whole shards already folded; resume starts at this shard index.
    pub shards_done: u64,
    /// Rows observed across those shards.
    pub rows_done: u64,
    /// `(name, body)` analyzer sections, in insertion order.
    pub sections: Vec<(String, String)>,
}

impl AnalysisCheckpoint {
    /// An empty checkpoint for a spool with the given fingerprint.
    pub fn new(fingerprint: u64) -> Self {
        Self {
            fingerprint,
            shards_done: 0,
            rows_done: 0,
            sections: Vec::new(),
        }
    }

    /// Adds (or replaces) one analyzer section.
    pub fn set_section(&mut self, name: &str, body: String) {
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = body;
        } else {
            self.sections.push((name.to_string(), body));
        }
    }

    /// The body of one analyzer section, if present.
    pub fn section(&self, name: &str) -> Option<&str> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_str())
    }

    /// Serializes the checkpoint, ending with a checksum line over
    /// everything above it.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(CHECKPOINT_HEADER);
        out.push('\n');
        out.push_str(&format!("fingerprint = {}\n", self.fingerprint));
        out.push_str(&format!("shards_done = {}\n", self.shards_done));
        out.push_str(&format!("rows_done = {}\n", self.rows_done));
        for (name, body) in &self.sections {
            out.push_str(&format!("begin {name}\n"));
            out.push_str(body);
            if !body.is_empty() && !body.ends_with('\n') {
                out.push('\n');
            }
            out.push_str(&format!("end {name}\n"));
        }
        let sum = fnv1a64(out.as_bytes());
        out.push_str(&format!("checksum = {sum:016x}\n"));
        out
    }

    /// Parses and checksum-verifies a serialized checkpoint.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::ChecksumMismatch`] on any single-bit damage or a
    /// torn (truncated) write; [`CheckpointError::BadHeader`] /
    /// [`CheckpointError::Malformed`] for structural problems.
    pub fn from_text(text: &str) -> Result<Self, CheckpointError> {
        // The checksum line covers every byte before it; verify first so
        // parse errors on damaged files surface as corruption, not syntax.
        let trimmed = text.trim_end_matches('\n');
        let (body, sum_line) = match trimmed.rfind('\n') {
            Some(pos) => (&text[..pos + 1], &trimmed[pos + 1..]),
            None => return Err(CheckpointError::ChecksumMismatch),
        };
        let sum = sum_line
            .strip_prefix("checksum = ")
            .and_then(|s| u64::from_str_radix(s.trim(), 16).ok())
            .ok_or(CheckpointError::ChecksumMismatch)?;
        if fnv1a64(body.as_bytes()) != sum {
            return Err(CheckpointError::ChecksumMismatch);
        }

        let mut lines = body.lines().enumerate();
        let header = lines.next().map(|(_, l)| l);
        if header != Some(CHECKPOINT_HEADER) {
            return Err(CheckpointError::BadHeader);
        }
        let mut cp = Self::new(0);
        let mut current: Option<(String, String)> = None;
        for (i, line) in lines {
            let lineno = i + 1;
            if current.is_some() {
                if let Some(name) = line.strip_prefix("end ") {
                    let (open_name, section_body) = current
                        .take()
                        .unwrap_or_else(|| (String::new(), String::new()));
                    if open_name != name {
                        return Err(CheckpointError::Malformed {
                            line: lineno,
                            msg: format!("'end {name}' closes section {open_name:?}"),
                        });
                    }
                    cp.sections.push((open_name, section_body));
                } else if let Some((_, section_body)) = &mut current {
                    section_body.push_str(line);
                    section_body.push('\n');
                }
                continue;
            }
            if let Some(name) = line.strip_prefix("begin ") {
                current = Some((name.to_string(), String::new()));
            } else if let Some((key, value)) = line.split_once(" = ") {
                let parsed: u64 = value
                    .trim()
                    .parse()
                    .map_err(|_| CheckpointError::Malformed {
                        line: lineno,
                        msg: format!("bad integer {value:?} for {key}"),
                    })?;
                match key {
                    "fingerprint" => cp.fingerprint = parsed,
                    "shards_done" => cp.shards_done = parsed,
                    "rows_done" => cp.rows_done = parsed,
                    other => {
                        return Err(CheckpointError::Malformed {
                            line: lineno,
                            msg: format!("unknown field {other:?}"),
                        })
                    }
                }
            } else if !line.trim().is_empty() {
                return Err(CheckpointError::Malformed {
                    line: lineno,
                    msg: format!("unrecognized line {line:?}"),
                });
            }
        }
        if let Some((name, _)) = current {
            return Err(CheckpointError::Malformed {
                line: 0,
                msg: format!("section {name:?} never closed"),
            });
        }
        Ok(cp)
    }
}

/// Parses `key=value` out of one whitespace token, for analyzer section
/// bodies (`site=3`, `count=17`).
pub(crate) fn field_u64(token: Option<&str>, key: &str) -> Result<u64, String> {
    let token = token.ok_or_else(|| format!("missing field {key}"))?;
    let value = token
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=..., found {token:?}"))?;
    value
        .parse()
        .map_err(|_| format!("bad integer {value:?} for {key}"))
}

/// Serializes an `f64` exactly (bit pattern as hex).
pub(crate) fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`f64_to_hex`].
pub(crate) fn f64_from_hex(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bits {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalysisCheckpoint {
        let mut cp = AnalysisCheckpoint::new(0xDEAD_BEEF);
        cp.shards_done = 7;
        cp.rows_done = 1_000_000;
        cp.set_section(
            "popularity",
            "site=0 object=1 class=V count=3\n".to_string(),
        );
        cp.set_section("sessions", "timeout = 600\n".to_string());
        cp
    }

    #[test]
    fn roundtrip() {
        let cp = sample();
        let text = cp.to_text();
        assert!(text.starts_with(CHECKPOINT_HEADER));
        let back = AnalysisCheckpoint::from_text(&text).expect("parses");
        assert_eq!(back, cp);
        assert_eq!(back.section("sessions"), Some("timeout = 600\n"));
        assert!(back.section("nope").is_none());
    }

    #[test]
    fn set_section_replaces() {
        let mut cp = sample();
        cp.set_section("sessions", "timeout = 60\n".to_string());
        assert_eq!(cp.sections.len(), 2);
        assert_eq!(cp.section("sessions"), Some("timeout = 60\n"));
    }

    #[test]
    fn any_flipped_byte_is_rejected() {
        let text = sample().to_text();
        // The final newline trails the checksum line and carries no
        // content — a flip there cannot alter what is restored.
        for i in 0..text.len() - 1 {
            let mut bad = text.clone().into_bytes();
            bad[i] ^= 0x01;
            let Ok(s) = String::from_utf8(bad) else {
                continue; // no longer text at all — cannot reach the parser
            };
            assert!(
                AnalysisCheckpoint::from_text(&s).is_err(),
                "flip at byte {i} was accepted"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let text = sample().to_text();
        for cut in [0, 1, text.len() / 2, text.len() - 2] {
            assert!(
                AnalysisCheckpoint::from_text(&text[..cut]).is_err(),
                "truncation at {cut} was accepted"
            );
        }
    }

    #[test]
    fn malformed_structures_are_rejected() {
        // Re-seal a structurally bad body with a valid checksum so the
        // structural error (not the checksum) is what trips.
        let seal = |body: &str| {
            let sum = oat_httplog::fnv1a64(body.as_bytes());
            format!("{body}checksum = {sum:016x}\n")
        };
        let bad_header = seal("not a checkpoint\n");
        assert!(matches!(
            AnalysisCheckpoint::from_text(&bad_header),
            Err(CheckpointError::BadHeader)
        ));
        let unclosed = seal(&format!("{CHECKPOINT_HEADER}\nbegin popularity\n"));
        assert!(AnalysisCheckpoint::from_text(&unclosed).is_err());
        let mismatched = seal(&format!("{CHECKPOINT_HEADER}\nbegin a\nend b\n"));
        assert!(AnalysisCheckpoint::from_text(&mismatched).is_err());
        let unknown = seal(&format!("{CHECKPOINT_HEADER}\nmystery = 3\n"));
        assert!(AnalysisCheckpoint::from_text(&unknown).is_err());
    }

    #[test]
    fn field_helpers() {
        assert_eq!(field_u64(Some("site=4"), "site"), Ok(4));
        assert!(field_u64(Some("site=x"), "site").is_err());
        assert!(field_u64(Some("user=4"), "site").is_err());
        assert!(field_u64(None, "site").is_err());
        let v = 1234.5678_f64;
        assert_eq!(f64_from_hex(&f64_to_hex(v)), Ok(v));
        assert!(f64_from_hex("zz").is_err());
    }
}
