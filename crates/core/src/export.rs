//! CSV export of every figure's plottable series.
//!
//! The text [report](crate::report) summarizes each figure; this module
//! writes the underlying *series* (CDF curves, hourly timeseries, scatter
//! points, cluster medoids) as one CSV per figure so the plots can be
//! regenerated with any plotting tool:
//!
//! ```text
//! fig01_objects.csv      fig05a_video_sizes.csv   fig09_medoids_<site>.csv
//! fig02a_requests.csv    fig05b_image_sizes.csv   fig11_iat.csv ...
//! ```

use crate::experiment::ExperimentResult;
use oat_httplog::{ContentClass, HttpStatus};
use std::io::{self, Write};
use std::path::Path;

/// Number of points sampled per CDF curve.
const CDF_POINTS: usize = 200;

/// Maximum scatter points exported per (site, class) for Fig 13.
const MAX_SCATTER: usize = 5_000;

/// Writes every figure's data series as CSV files under `dir`.
///
/// Returns the list of files written (relative names).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csvs(result: &ExperimentResult, dir: &Path) -> io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut emit = |name: &str, content: String| -> io::Result<()> {
        let mut f = std::fs::File::create(dir.join(name))?;
        f.write_all(content.as_bytes())?;
        written.push(name.to_string());
        Ok(())
    };

    // Fig 1 / 2a / 2b — composition.
    let mut comp = String::from("site,class,objects,requests,bytes\n");
    for s in &result.composition.sites {
        for (i, class) in ["video", "image", "other"].iter().enumerate() {
            comp.push_str(&format!(
                "{},{},{},{},{}\n",
                s.code, class, s.objects[i], s.requests[i], s.bytes[i]
            ));
        }
    }
    emit("fig01_02_composition.csv", comp)?;

    // Fig 3 — hourly shares.
    let mut temporal = String::from("site,local_hour,share_pct\n");
    for s in &result.temporal.sites {
        for (h, share) in s.share_pct.iter().enumerate() {
            temporal.push_str(&format!("{},{h},{share:.4}\n", s.code));
        }
    }
    emit("fig03_hourly.csv", temporal)?;

    // Fig 4 — device mix.
    let mut devices = String::from("site,desktop_pct,android_pct,ios_pct,misc_pct,users\n");
    for s in &result.devices.sites {
        let [desktop, android, ios, misc] = s.user_pct;
        devices.push_str(&format!(
            "{},{:.2},{:.2},{:.2},{:.2},{}\n",
            s.code, desktop, android, ios, misc, s.users
        ));
    }
    emit("fig04_devices.csv", devices)?;

    // Fig 5 — size CDFs (log-spaced).
    for (name, list) in [
        ("fig05a_video_sizes.csv", &result.sizes.video),
        ("fig05b_image_sizes.csv", &result.sizes.image),
    ] {
        let mut csv = String::from("site,size_bytes,cdf\n");
        for d in list {
            for (x, f) in d.ecdf.log_curve(CDF_POINTS) {
                csv.push_str(&format!("{},{x:.1},{f:.6}\n", d.code));
            }
        }
        emit(name, csv)?;
    }

    // Fig 6 — popularity CDFs.
    for (name, list) in [
        ("fig06a_video_popularity.csv", &result.popularity.video),
        ("fig06b_image_popularity.csv", &result.popularity.image),
    ] {
        let mut csv = String::from("site,requests_per_object,cdf\n");
        for d in list {
            for (x, f) in d.ecdf.log_curve(CDF_POINTS) {
                csv.push_str(&format!("{},{x:.2},{f:.6}\n", d.code));
            }
        }
        emit(name, csv)?;
    }

    // Fig 7 — aging curves.
    let mut aging = String::from("site,age_days,fraction_requested\n");
    for s in &result.aging.sites {
        for (d, f) in s.fraction_by_day.iter().enumerate() {
            aging.push_str(&format!("{},{},{f:.6}\n", s.code, d + 1));
        }
    }
    emit("fig07_aging.csv", aging)?;

    // Fig 8 — cluster inventory; Fig 9/10 — medoid series.
    for clustering in &result.clusterings {
        let tag = clustering.code.to_lowercase().replace('-', "");
        let mut summary = String::from("cluster,label,size,share\n");
        for (i, c) in clustering.clusters.iter().enumerate() {
            summary.push_str(&format!("{i},{},{},{:.4}\n", c.label, c.size, c.share));
        }
        emit(&format!("fig08_clusters_{tag}.csv"), summary)?;

        let mut medoids = String::from("cluster,label,hour,medoid,std_dev\n");
        for (i, c) in clustering.clusters.iter().enumerate() {
            for (h, (m, s)) in c.medoid.iter().zip(&c.std_dev).enumerate() {
                medoids.push_str(&format!("{i},{},{h},{m:.6},{s:.6}\n", c.label));
            }
        }
        emit(&format!("fig09_10_medoids_{tag}.csv"), medoids)?;
    }

    // Fig 11 — IAT CDFs.
    let mut iat = String::from("site,iat_secs,cdf\n");
    for s in &result.iat.sites {
        for (x, f) in s.ecdf.log_curve(CDF_POINTS) {
            iat.push_str(&format!("{},{x:.2},{f:.6}\n", s.code));
        }
    }
    emit("fig11_iat.csv", iat)?;

    // Fig 12 — session-length CDFs.
    let mut sessions = String::from("site,session_secs,cdf\n");
    for s in &result.sessions.sites {
        for (x, f) in s.ecdf.uniform_curve(CDF_POINTS) {
            sessions.push_str(&format!("{},{x:.2},{f:.6}\n", s.code));
        }
    }
    emit("fig12_sessions.csv", sessions)?;

    // Fig 13 — scatter points; Fig 14 — per-user CDFs.
    for (scatter_name, cdf_name, list) in [
        (
            "fig13_video_scatter.csv",
            "fig14_video_per_user.csv",
            &result.addiction.video,
        ),
        (
            "fig13_image_scatter.csv",
            "fig14_image_per_user.csv",
            &result.addiction.image,
        ),
    ] {
        let mut scatter = String::from("site,requests,users\n");
        for d in list {
            for p in d.points.iter().take(MAX_SCATTER) {
                scatter.push_str(&format!("{},{},{}\n", d.code, p.requests, p.users));
            }
        }
        emit(scatter_name, scatter)?;

        let mut cdf = String::from("site,max_requests_by_one_user,cdf\n");
        for d in list {
            for (x, f) in d.per_user_ecdf.log_curve(CDF_POINTS) {
                cdf.push_str(&format!("{},{x:.2},{f:.6}\n", d.code));
            }
        }
        emit(cdf_name, cdf)?;
    }

    // Fig 15 — hit-ratio CDFs + summaries.
    for (name, list) in [
        ("fig15_video_hit_ratio.csv", &result.cache.video),
        ("fig15_image_hit_ratio.csv", &result.cache.image),
    ] {
        let mut csv = String::from("site,hit_ratio,cdf\n");
        for d in list {
            for (x, f) in d.ecdf.uniform_curve(CDF_POINTS) {
                csv.push_str(&format!("{},{x:.4},{f:.6}\n", d.code));
            }
        }
        emit(name, csv)?;
    }
    let mut summary = String::from("site,overall_hit_ratio,popularity_correlation\n");
    for s in &result.cache.summaries {
        summary.push_str(&format!(
            "{},{},{}\n",
            s.code,
            s.overall_hit_ratio
                .map_or(String::new(), |r| format!("{r:.4}")),
            s.popularity_correlation
                .map_or(String::new(), |c| format!("{c:.4}")),
        ));
    }
    emit("fig15_summary.csv", summary)?;

    // Fig 16 — response-code counts.
    let mut responses = String::from("site,class,status,count\n");
    for (class, list) in [
        (ContentClass::Video, &result.responses.video),
        (ContentClass::Image, &result.responses.image),
    ] {
        for d in list {
            for status in HttpStatus::FIGURE_16 {
                responses.push_str(&format!(
                    "{},{},{},{}\n",
                    d.code,
                    class,
                    status.code(),
                    d.count(status)
                ));
            }
        }
    }
    emit("fig16_responses.csv", responses)?;

    // Availability — per-site graceful-degradation counters (not a paper
    // figure; all-healthy zeros without a fault plan).
    let mut availability = String::from(
        "site,requests,shed,failover,stale,retries,degraded_bytes,\
         availability,retry_amplification,degraded_byte_hit_rate\n",
    );
    for s in &result.availability.sites {
        availability.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            s.code,
            s.requests,
            s.shed,
            s.failover,
            s.stale,
            s.retries,
            s.degraded_bytes,
            s.availability()
                .map_or(String::new(), |v| format!("{v:.6}")),
            s.retry_amplification()
                .map_or(String::new(), |v| format!("{v:.6}")),
            s.degraded_byte_hit_rate()
                .map_or(String::new(), |v| format!("{v:.6}")),
        ));
    }
    emit("availability.csv", availability)?;

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run, ExperimentConfig};

    fn result() -> ExperimentResult {
        let mut config = ExperimentConfig::small();
        config.trace.scale = 0.002;
        config.trace.catalog_scale = 0.01;
        run(&config).expect("valid config")
    }

    #[test]
    fn writes_a_csv_per_figure() {
        let dir = std::env::temp_dir().join("oat-export-test");
        let _ = std::fs::remove_dir_all(&dir);
        let files = write_csvs(&result(), &dir).expect("export");
        // 16 figures + availability → at least 18 files (clusterings add
        // two each).
        assert!(files.len() >= 18, "got {files:?}");
        for prefix in [
            "fig01",
            "fig03",
            "fig04",
            "fig05a",
            "fig05b",
            "fig06a",
            "fig06b",
            "fig07",
            "fig08",
            "fig09_10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "availability",
        ] {
            assert!(
                files.iter().any(|f| f.starts_with(prefix)),
                "missing {prefix} in {files:?}"
            );
        }
        // Every file exists, has a header and at least one data row.
        for f in &files {
            let content = std::fs::read_to_string(dir.join(f)).expect("read back");
            let lines: Vec<&str> = content.lines().collect();
            assert!(lines.len() >= 2, "{f} has no data rows");
            assert!(lines[0].contains(','), "{f} header malformed");
            let columns = lines[0].split(',').count();
            for line in &lines[1..] {
                assert_eq!(line.split(',').count(), columns, "{f}: ragged row {line}");
            }
        }
    }

    #[test]
    fn cdf_columns_are_monotone() {
        let dir = std::env::temp_dir().join("oat-export-monotone");
        let _ = std::fs::remove_dir_all(&dir);
        write_csvs(&result(), &dir).expect("export");
        let content = std::fs::read_to_string(dir.join("fig11_iat.csv")).expect("read fig11");
        let mut last: std::collections::HashMap<String, f64> = Default::default();
        for line in content.lines().skip(1) {
            let mut parts = line.split(',');
            let site = parts.next().expect("site").to_string();
            let _x: f64 = parts.next().expect("x").parse().expect("x value");
            let f: f64 = parts.next().expect("cdf").parse().expect("cdf value");
            let prev = last.insert(site.clone(), f).unwrap_or(0.0);
            assert!(f >= prev - 1e-9, "{site}: CDF must be monotone");
        }
    }
}
