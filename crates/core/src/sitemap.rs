//! Publisher-id ↔ site-code mapping.

use oat_httplog::PublisherId;
use oat_workload::SiteProfile;
use serde::{Deserialize, Serialize};

/// Maps anonymized publisher ids to human-readable site codes
/// (`V-1`, `P-2`, …) and fixes the per-site reporting order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteMap {
    entries: Vec<(PublisherId, String)>,
}

impl SiteMap {
    /// Builds a map from site profiles, preserving their order.
    pub fn from_profiles(profiles: &[SiteProfile]) -> Self {
        Self {
            entries: profiles
                .iter()
                .map(|p| (p.publisher, p.code.clone()))
                .collect(),
        }
    }

    /// The paper's five sites.
    pub fn paper_five() -> Self {
        Self::from_profiles(&SiteProfile::paper_five())
    }

    /// Publisher ids in reporting order.
    pub fn publishers(&self) -> impl Iterator<Item = PublisherId> + '_ {
        self.entries.iter().map(|(id, _)| *id)
    }

    /// Site code for a publisher, if known.
    pub fn code(&self, publisher: PublisherId) -> Option<&str> {
        self.entries
            .iter()
            .find(|(id, _)| *id == publisher)
            .map(|(_, code)| code.as_str())
    }

    /// Dense index of a publisher in reporting order, if known.
    pub fn index(&self, publisher: PublisherId) -> Option<usize> {
        self.entries.iter().position(|(id, _)| *id == publisher)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_five_mapping() {
        let map = SiteMap::paper_five();
        assert_eq!(map.len(), 5);
        assert!(!map.is_empty());
        assert_eq!(map.code(PublisherId::new(1)), Some("V-1"));
        assert_eq!(map.code(PublisherId::new(5)), Some("S-1"));
        assert_eq!(map.code(PublisherId::new(99)), None);
        assert_eq!(map.index(PublisherId::new(3)), Some(2));
        assert_eq!(map.index(PublisherId::new(99)), None);
        let ids: Vec<u16> = map.publishers().map(|p| p.raw()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }
}
