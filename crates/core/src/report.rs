//! Text rendering of every figure's data series.
//!
//! The `repro` harness prints these tables; `EXPERIMENTS.md` embeds them
//! next to the paper's reported shapes.

use crate::analyzers::{
    addiction::AddictionReport, aging::AgingReport, availability::AvailabilityReport,
    cache::CacheReport, clustering::ClusteringReport, composition::CompositionReport,
    device::DeviceReport, iat::IatReport, popularity::PopularityReport, response::ResponseReport,
    sessions::SessionReport, sizes::SizeReport, temporal::TemporalReport,
};
use crate::experiment::ExperimentResult;
use oat_httplog::{ContentClass, HttpStatus};
use std::fmt::Write as _;

/// Formats a byte count with binary-ish engineering units.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1000.0 && unit + 1 < UNITS.len() {
        value /= 1000.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Formats a duration in seconds as `s` / `min` / `h`.
pub fn human_secs(secs: f64) -> String {
    if secs < 60.0 {
        format!("{secs:.0} s")
    } else if secs < 3600.0 {
        format!("{:.1} min", secs / 60.0)
    } else {
        format!("{:.1} h", secs / 3600.0)
    }
}

/// Figure 1 + 2: composition tables.
pub fn render_composition(report: &CompositionReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 1/2 — composition (objects | requests | bytes), per class [video image other]"
    );
    let _ = writeln!(
        out,
        "{:<5} {:>27} {:>27} {:>31}",
        "site", "objects v/i/o", "requests v/i/o", "bytes v/i/o"
    );
    for s in &report.sites {
        let [obj_v, obj_i, obj_o] = s.objects;
        let [req_v, req_i, req_o] = s.requests;
        let [bytes_v, bytes_i, bytes_o] = s.bytes;
        let _ = writeln!(
            out,
            "{:<5} {:>8} {:>8} {:>8}  {:>8} {:>8} {:>8}  {:>10} {:>9} {:>9}",
            s.code,
            obj_v,
            obj_i,
            obj_o,
            req_v,
            req_i,
            req_o,
            human_bytes(bytes_v),
            human_bytes(bytes_i),
            human_bytes(bytes_o),
        );
    }
    out
}

/// Figure 3: hourly traffic shares.
pub fn render_temporal(report: &TemporalReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 3 — hourly traffic share (% of site volume, local time)"
    );
    let _ = writeln!(
        out,
        "{:<5} {:>9} {:>11} {:>15} {:>11}",
        "site", "peak hour", "trough hour", "peak/trough", "late-night?"
    );
    for s in &report.sites {
        let _ = writeln!(
            out,
            "{:<5} {:>9} {:>11} {:>15} {:>11}",
            s.code,
            s.peak_hour(),
            s.trough_hour(),
            s.peak_to_trough()
                .map_or("-".to_string(), |r| format!("{r:.2}")),
            if s.peaks_late_night() { "yes" } else { "no" },
        );
    }
    out
}

/// Figure 4: device mixes.
pub fn render_devices(report: &DeviceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 4 — device mix (% of users)");
    let _ = writeln!(
        out,
        "{:<5} {:>8} {:>8} {:>6} {:>6} {:>8}",
        "site", "desktop", "android", "ios", "misc", "users"
    );
    for s in &report.sites {
        let [desktop, android, ios, misc] = s.user_pct;
        let _ = writeln!(
            out,
            "{:<5} {:>7.1}% {:>7.1}% {:>5.1}% {:>5.1}% {:>8}",
            s.code, desktop, android, ios, misc, s.users
        );
    }
    out
}

/// Figure 5: size distributions.
pub fn render_sizes(report: &SizeReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 5 — content sizes");
    for (label, list) in [("5a video", &report.video), ("5b image", &report.image)] {
        let _ = writeln!(out, "  [{label}]");
        let _ = writeln!(
            out,
            "  {:<5} {:>8} {:>12} {:>9} {:>7}",
            "site", "objects", "median", ">1MB", "modes"
        );
        for d in list {
            let _ = writeln!(
                out,
                "  {:<5} {:>8} {:>12} {:>8.1}% {:>7}",
                d.code,
                d.objects,
                d.median()
                    .map_or("-".to_string(), |m| human_bytes(m as u64)),
                100.0 * d.fraction_above_1mb(),
                d.modes,
            );
        }
    }
    out
}

/// Figure 6: popularity distributions.
pub fn render_popularity(report: &PopularityReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 6 — content popularity (requests per object)");
    for (label, list) in [("6a video", &report.video), ("6b image", &report.image)] {
        let _ = writeln!(out, "  [{label}]");
        let _ = writeln!(
            out,
            "  {:<5} {:>8} {:>9} {:>11} {:>9} {:>11} {:>7}",
            "site", "objects", "requests", "zipf alpha", "fit R2", "top10% req", "gini"
        );
        for d in list {
            let _ = writeln!(
                out,
                "  {:<5} {:>8} {:>9} {:>11} {:>9} {:>10.1}% {:>7}",
                d.code,
                d.objects,
                d.requests,
                d.zipf
                    .map_or("-".to_string(), |z| format!("{:.2}", z.alpha)),
                d.zipf
                    .map_or("-".to_string(), |z| format!("{:.3}", z.r_squared)),
                100.0 * d.top_decile_share.unwrap_or(0.0),
                d.gini.map_or("-".to_string(), |g| format!("{g:.2}")),
            );
        }
    }
    out
}

/// Figure 7: content aging.
pub fn render_aging(report: &AgingReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 7 — fraction of objects requested at age >= d days"
    );
    let days = report
        .sites
        .iter()
        .map(|s| s.fraction_by_day.len())
        .max()
        .unwrap_or(0);
    let header: String = (1..=days).map(|d| format!("{d:>6}")).collect();
    let _ = writeln!(out, "{:<5}{header}", "site");
    for s in &report.sites {
        let row: String = s
            .fraction_by_day
            .iter()
            .map(|f| format!("{f:>6.2}"))
            .collect();
        let _ = writeln!(out, "{:<5}{row}", s.code);
    }
    out
}

/// Figures 8–10: clustering summary.
pub fn render_clustering(report: &ClusteringReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 8-10 — {} {} popularity clusters ({} objects clustered)",
        report.code, report.class, report.clustered_objects
    );
    let _ = writeln!(out, "  {:<12} {:>6} {:>8}", "label", "size", "share");
    for c in &report.clusters {
        let _ = writeln!(
            out,
            "  {:<12} {:>6} {:>7.0}%",
            c.label.to_string(),
            c.size,
            100.0 * c.share
        );
    }
    if let Some(last) = report.merges.last() {
        let _ = writeln!(out, "  dendrogram root distance: {:.3}", last.distance);
    }
    if let Some(s) = report.silhouette {
        let _ = writeln!(out, "  silhouette: {s:.3}");
    }
    out
}

/// Figure 11: inter-arrival times.
pub fn render_iat(report: &IatReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 11 — user request inter-arrival times");
    let _ = writeln!(
        out,
        "{:<5} {:>10} {:>10} {:>10}",
        "site", "p25", "median", "p75"
    );
    for s in &report.sites {
        let q = |p: f64| s.ecdf.quantile(p).map_or("-".to_string(), human_secs);
        let _ = writeln!(
            out,
            "{:<5} {:>10} {:>10} {:>10}",
            s.code,
            q(0.25),
            q(0.5),
            q(0.75)
        );
    }
    out
}

/// Figure 12: session lengths.
pub fn render_sessions(report: &SessionReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 12 — session lengths ({}s idle timeout)",
        report.timeout_secs
    );
    let _ = writeln!(
        out,
        "{:<5} {:>10} {:>10} {:>10} {:>10}",
        "site", "sessions", "median", "p90", "req/sess"
    );
    for s in &report.sites {
        let q = |p: f64| s.ecdf.quantile(p).map_or("-".to_string(), human_secs);
        let _ = writeln!(
            out,
            "{:<5} {:>10} {:>10} {:>10} {:>10.2}",
            s.code,
            s.sessions,
            q(0.5),
            q(0.9),
            s.mean_requests
        );
    }
    out
}

/// Figures 13–14: addiction.
pub fn render_addiction(report: &AddictionReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 13/14 — repeated access by single users, per object"
    );
    for (label, list) in [("video", &report.video), ("image", &report.image)] {
        let _ = writeln!(out, "  [{label}]");
        let _ = writeln!(
            out,
            "  {:<5} {:>8} {:>13} {:>10} {:>10}",
            "site", "objects", ">10 by 1 user", "max/user", "max ratio"
        );
        for d in list {
            let _ = writeln!(
                out,
                "  {:<5} {:>8} {:>12.1}% {:>10} {:>10}",
                d.code,
                d.points.len(),
                100.0 * d.fraction_above(10.0),
                d.max_by_one_user()
                    .map_or("-".to_string(), |m| format!("{m:.0}")),
                d.max_ratio().map_or("-".to_string(), |m| format!("{m:.1}")),
            );
        }
    }
    out
}

/// Figure 15: cache hit ratios.
pub fn render_cache(report: &CacheReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 15 — CDN cache hit ratios");
    let _ = writeln!(
        out,
        "{:<5} {:>9} {:>12} {:>12} {:>10}",
        "site", "overall", "video mean", "image mean", "pop corr"
    );
    for s in &report.summaries {
        let video = report
            .site(&s.code, ContentClass::Video)
            .and_then(HitRatioMean::mean_of);
        let image = report
            .site(&s.code, ContentClass::Image)
            .and_then(HitRatioMean::mean_of);
        let _ = writeln!(
            out,
            "{:<5} {:>9} {:>12} {:>12} {:>10}",
            s.code,
            s.overall_hit_ratio
                .map_or("-".to_string(), |r| format!("{:.1}%", 100.0 * r)),
            video.map_or("-".to_string(), |r| format!("{:.2}", r)),
            image.map_or("-".to_string(), |r| format!("{:.2}", r)),
            s.popularity_correlation
                .map_or("-".to_string(), |c| format!("{c:.2}")),
        );
    }
    out
}

/// Helper trait-object-free adaptor for hit-ratio means.
struct HitRatioMean;

impl HitRatioMean {
    fn mean_of(d: &crate::analyzers::cache::HitRatioDistribution) -> Option<f64> {
        d.mean()
    }
}

/// Figure 16: response codes.
pub fn render_responses(report: &ResponseReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 16 — HTTP response codes");
    for (label, list) in [("16a video", &report.video), ("16b image", &report.image)] {
        let _ = writeln!(out, "  [{label}]");
        let mut header = format!("  {:<5}", "site");
        for s in HttpStatus::FIGURE_16 {
            let _ = write!(header, "{:>9}", s.code());
        }
        let _ = writeln!(out, "{header}");
        for d in list {
            let mut row = format!("  {:<5}", d.code);
            for s in HttpStatus::FIGURE_16 {
                let _ = write!(row, "{:>9}", d.count(s));
            }
            let _ = writeln!(out, "{row}");
        }
    }
    out
}

/// Availability & graceful degradation (fault-injection runs).
pub fn render_availability(report: &AvailabilityReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Availability — graceful degradation under the fault plan"
    );
    let _ = writeln!(
        out,
        "{:<5} {:>9} {:>8} {:>9} {:>7} {:>10} {:>12}",
        "site", "avail", "shed", "failover", "stale", "retry amp", "degr byte %"
    );
    for s in &report.sites {
        let _ = writeln!(
            out,
            "{:<5} {:>9} {:>8} {:>9} {:>7} {:>10} {:>12}",
            s.code,
            s.availability()
                .map_or("-".to_string(), |a| format!("{:.3}%", 100.0 * a)),
            s.shed,
            s.failover,
            s.stale,
            s.retry_amplification()
                .map_or("-".to_string(), |r| format!("{r:.3}")),
            s.degraded_byte_hit_rate()
                .map_or("-".to_string(), |r| format!("{:.2}%", 100.0 * r)),
        );
    }
    out
}

/// Renders every figure of an experiment, in paper order.
pub fn render_all(result: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== oat reproduction: {} records analyzed ===\n",
        result.records
    );
    out.push_str(&render_composition(&result.composition));
    out.push('\n');
    out.push_str(&render_temporal(&result.temporal));
    out.push('\n');
    out.push_str(&render_devices(&result.devices));
    out.push('\n');
    out.push_str(&render_sizes(&result.sizes));
    out.push('\n');
    out.push_str(&render_popularity(&result.popularity));
    out.push('\n');
    out.push_str(&render_aging(&result.aging));
    out.push('\n');
    for c in &result.clusterings {
        out.push_str(&render_clustering(c));
        out.push('\n');
    }
    out.push_str(&render_iat(&result.iat));
    out.push('\n');
    out.push_str(&render_sessions(&result.sessions));
    out.push('\n');
    out.push_str(&render_addiction(&result.addiction));
    out.push('\n');
    out.push_str(&render_cache(&result.cache));
    out.push('\n');
    out.push_str(&render_responses(&result.responses));
    out.push('\n');
    out.push_str(&render_availability(&result.availability));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_units() {
        assert_eq!(human_bytes(12), "12 B");
        assert_eq!(human_bytes(1_500), "1.5 KB");
        assert_eq!(human_bytes(258_000_000_000), "258.0 GB");
        assert_eq!(human_secs(30.0), "30 s");
        assert_eq!(human_secs(90.0), "1.5 min");
        assert_eq!(human_secs(7_200.0), "2.0 h");
    }

    #[test]
    fn render_all_mentions_every_figure() {
        let mut config = crate::experiment::ExperimentConfig::small();
        config.trace.scale = 0.002;
        config.trace.catalog_scale = 0.01;
        let result = crate::experiment::run(&config).unwrap();
        let text = render_all(&result);
        for needle in [
            "Fig 1/2",
            "Fig 3",
            "Fig 4",
            "Fig 5",
            "Fig 6",
            "Fig 7",
            "Fig 8-10",
            "Fig 11",
            "Fig 12",
            "Fig 13/14",
            "Fig 15",
            "Fig 16",
            "Availability",
            "V-1",
            "V-2",
            "P-1",
            "P-2",
            "S-1",
        ] {
            assert!(text.contains(needle), "missing {needle} in report:\n{text}");
        }
    }
}
