//! Regression test for end-to-end output determinism.
//!
//! Two independent runs of the same experiment config must produce
//! byte-identical serialized reports — this is the property the
//! `ordered-output` lint rule (see `crates/oat-lint`) exists to protect.
//! A `HashMap` iteration sneaking into any emission path shows up here as
//! a byte diff in one of the exported CSVs.

use oat_core::experiment::{self, ExperimentConfig};
use oat_core::export;
use std::path::PathBuf;

fn tiny_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::small().with_seed(0x0a7_1e57);
    // Shrink the trace so the double run stays in test-suite budget.
    config.trace = config.trace.with_scale(0.1);
    config
}

fn export_run(tag: &str) -> (PathBuf, Vec<String>) {
    let result = experiment::run(&tiny_config()).expect("config is valid");
    let dir = std::env::temp_dir().join(format!("oat-determinism-{}-{tag}", std::process::id()));
    let files = export::write_csvs(&result, &dir).expect("export succeeds");
    (dir, files)
}

#[test]
fn repeated_runs_serialize_byte_identically() {
    let (dir_a, files_a) = export_run("a");
    let (dir_b, files_b) = export_run("b");

    assert_eq!(files_a, files_b, "runs must export the same file set");
    assert!(!files_a.is_empty(), "export produced no files");
    for name in &files_a {
        let a = std::fs::read(dir_a.join(name)).expect("file a readable");
        let b = std::fs::read(dir_b.join(name)).expect("file b readable");
        assert!(
            a == b,
            "{name} differs between two runs of the same config \
             ({} vs {} bytes) — some emission path is order-dependent",
            a.len(),
            b.len()
        );
    }

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
