//! Regression test for end-to-end output determinism.
//!
//! Two independent runs of the same experiment config must produce
//! byte-identical serialized reports — this is the property the
//! `ordered-output` lint rule (see `crates/oat-lint`) exists to protect.
//! A `HashMap` iteration sneaking into any emission path shows up here as
//! a byte diff in one of the exported CSVs.

use oat_cdnsim::FaultPlan;
use oat_core::experiment::{self, ExperimentConfig, StreamOptions};
use oat_core::export;
use std::path::PathBuf;

fn tiny_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::small().with_seed(0x0a7_1e57);
    // Shrink the trace so the double run stays in test-suite budget.
    config.trace = config.trace.with_scale(0.1);
    config
}

fn export_run(tag: &str) -> (PathBuf, Vec<String>) {
    let result = experiment::run(&tiny_config()).expect("config is valid");
    let dir = std::env::temp_dir().join(format!("oat-determinism-{}-{tag}", std::process::id()));
    let files = export::write_csvs(&result, &dir).expect("export succeeds");
    (dir, files)
}

#[test]
fn repeated_runs_serialize_byte_identically() {
    let (dir_a, files_a) = export_run("a");
    let (dir_b, files_b) = export_run("b");

    assert_eq!(files_a, files_b, "runs must export the same file set");
    assert!(!files_a.is_empty(), "export produced no files");
    for name in &files_a {
        let a = std::fs::read(dir_a.join(name)).expect("file a readable");
        let b = std::fs::read(dir_b.join(name)).expect("file b readable");
        assert!(
            a == b,
            "{name} differs between two runs of the same config \
             ({} vs {} bytes) — some emission path is order-dependent",
            a.len(),
            b.len()
        );
    }

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// A fault-injecting streaming run exports byte-identical CSVs at any
/// thread count: every fault decision is a pure function of the plan seed
/// and the request identity, never of scheduling.
#[test]
fn faulted_exports_are_byte_identical_across_thread_counts() {
    let mut config = tiny_config();
    let pops = (config.sim.pops_per_region * 4) as u16;
    config.faults = Some(
        FaultPlan::sample(0xFA_0175, config.trace.duration_secs, pops)
            .shifted(config.trace.start_unix),
    );

    let mut baseline: Option<(PathBuf, Vec<String>)> = None;
    for threads in [1usize, 4, 8] {
        let opts = StreamOptions {
            threads,
            shard_size: 53,
            batch_size: 2_048,
            ..StreamOptions::default()
        };
        let result = experiment::run_streaming(&config, &opts).expect("config is valid");
        assert!(
            !result.availability.is_healthy(),
            "the sampled fault plan must visibly degrade the run"
        );
        let dir = std::env::temp_dir().join(format!(
            "oat-fault-determinism-{}-t{threads}",
            std::process::id()
        ));
        let files = export::write_csvs(&result, &dir).expect("export succeeds");
        assert!(
            files.iter().any(|f| f == "availability.csv"),
            "availability series missing from {files:?}"
        );
        match &baseline {
            None => baseline = Some((dir, files)),
            Some((base_dir, base_files)) => {
                assert_eq!(
                    base_files, &files,
                    "file set changed with {threads} threads"
                );
                for name in base_files {
                    let a = std::fs::read(base_dir.join(name)).expect("baseline readable");
                    let b = std::fs::read(dir.join(name)).expect("file readable");
                    assert!(
                        a == b,
                        "{name} differs between 1 and {threads} generation threads \
                         under the same fault plan"
                    );
                }
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
    if let Some((dir, _)) = baseline {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
