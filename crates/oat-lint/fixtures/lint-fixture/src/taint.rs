//! determinism-taint: a protected entry point (`Analyzer::observe` in the
//! fixture config) transitively reaching nondeterminism. The token scanner
//! flags `jitter`'s body; only the call-graph pass can flag the clean call
//! chain `observe -> record -> jitter` and the unordered iteration in
//! `emit`.

use std::collections::HashMap;

pub trait Analyzer {
    fn observe(&mut self, x: u64);
}

pub struct Histogram {
    counts: HashMap<u64, u64>,
}

impl Analyzer for Histogram {
    fn observe(&mut self, x: u64) {
        let _ = record(x);
        let _ = self.emit();
    }
}

impl Histogram {
    /// Direct: unordered `HashMap` iteration inside a protected fn.
    fn emit(&self) -> u64 {
        let mut sum = 0;
        for (_k, v) in self.counts.iter() {
            sum += v;
        }
        sum
    }
}

/// Protected entry by type/prefix (`Replayer::replay*` in the config).
pub struct Replayer;

impl Replayer {
    pub fn replay_all(&self) -> u64 {
        record(7)
    }
}

/// Clean body: tainted only transitively. The token scanner sees nothing
/// here; the frontier finding fires at the `jitter()` call below.
fn record(x: u64) -> u64 {
    jitter().wrapping_add(x)
}

fn jitter() -> u64 {
    rand::random()
}
