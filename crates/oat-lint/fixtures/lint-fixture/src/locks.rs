//! lock-order: an acquisition-order cycle between two mutexes, a guard
//! held across `.await`, and mutable / interior-mutable statics.

use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

pub static mut GLOBAL_HITS: u64 = 0;

pub static LAST_SEEN: AtomicU64 = AtomicU64::new(0);

pub struct Shared {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Shared {
    /// Acquires `a` then `b`.
    pub fn ab(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop((ga, gb));
        0
    }

    /// Acquires `b` then `a` — the opposite order: deadlock-capable.
    pub fn ba(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop((ga, gb));
        0
    }
}

/// Holds a sync guard across a suspension point.
pub async fn poll_shared(s: &Shared) {
    let g = s.a.lock();
    tick().await;
    drop(g);
}

async fn tick() {}
