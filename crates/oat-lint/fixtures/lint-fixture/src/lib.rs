//! Seeded-violation fixture for oat-lint's unit tests (see the tests in
//! `oat-lint/src/engine.rs`). Each rule must fire somewhere in this crate.

pub mod allowed;
pub mod bounds;
pub mod locks;
pub mod report;
pub mod taint;
pub mod testonly;

use std::time::Instant;

/// determinism: wall-clock read in library code.
pub fn elapsed_marker() -> Instant {
    Instant::now()
}

/// float-ordering: NaN panics the comparator mid-sort. The `unwrap` also
/// counts against the zero panic budget (panic-freedom).
pub fn sort_scores(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

/// unsafe-confinement: raw-pointer code outside the audited allowlist.
pub fn first_byte(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
