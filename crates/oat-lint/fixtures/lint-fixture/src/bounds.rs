//! bounded-memory: unbounded growth of `self` state in streaming scopes —
//! methods of `StreamAnalyzer` implementors, and everything reachable from
//! the `scan_lossy` entry point.

pub trait StreamAnalyzer {}

pub struct Window {
    buf: Vec<u64>,
}

impl StreamAnalyzer for Window {}

impl Window {
    /// In scope because `Window` implements the streaming trait.
    pub fn observe_rec(&mut self, x: u64) {
        self.buf.push(x);
    }
}

pub struct Acc {
    items: Vec<u64>,
}

impl Acc {
    /// In scope because `scan_lossy` reaches it.
    fn grow(&mut self, x: u64) {
        self.items.push(x);
    }
}

pub fn scan_lossy(acc: &mut Acc, xs: &[u64]) {
    for &x in xs {
        acc.grow(x);
    }
}
