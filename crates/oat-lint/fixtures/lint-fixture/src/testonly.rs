//! Violations that appear only inside `#[cfg(test)]` — the linter must
//! ignore every one of them, including the call-graph passes.

pub fn touched() -> u32 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    static mut TEST_COUNTER: u64 = 0;

    /// Unordered iteration in a test helper: never a taint seed.
    fn wander(m: &HashMap<u32, u32>) -> u32 {
        let mut s = 0;
        for v in m.values() {
            s += v;
        }
        s
    }

    struct Sink {
        all: Vec<u64>,
    }

    impl Sink {
        /// Growth on self state, but test-only: not a bounds finding.
        fn keep(&mut self, x: u64) {
            self.all.push(x);
        }
    }

    #[test]
    fn entropy_and_panics_are_fine_in_tests() {
        let t = std::time::Instant::now();
        let v = vec![1.0_f64, 2.0];
        let first = v[0];
        let max = v
            .iter()
            .copied()
            .max_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap();
        let mut sink = Sink { all: Vec::new() };
        sink.keep(first as u64);
        let _ = wander(&HashMap::new());
        assert!(t.elapsed().as_secs() < 3600);
        assert!(first <= max);
    }
}
