//! Violations that appear only inside `#[cfg(test)]` — the linter must
//! ignore every one of them.

pub fn touched() -> u32 {
    7
}

#[cfg(test)]
mod tests {
    #[test]
    fn entropy_and_panics_are_fine_in_tests() {
        let t = std::time::Instant::now();
        let v = vec![1.0_f64, 2.0];
        let first = v[0];
        let max = v
            .iter()
            .copied()
            .max_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap();
        assert!(t.elapsed().as_secs() < 3600);
        assert!(first <= max);
    }
}
