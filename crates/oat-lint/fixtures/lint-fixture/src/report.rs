//! ordered-output: `HashMap` iteration feeding serialized output — the
//! emitted line order changes run to run.

use std::collections::HashMap;

pub fn emit(counts: &HashMap<u32, u64>) -> String {
    let mut out = String::new();
    for (k, v) in counts {
        out.push_str(&format!("{k},{v}\n"));
    }
    out
}
