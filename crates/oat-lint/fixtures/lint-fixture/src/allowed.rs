//! Every violation here is waived by an allow directive (or covered by a
//! configured allowlist); the engine tests assert that none of them
//! surface.

use std::collections::HashMap; // oat-lint: allow(ordered-output)

pub fn waived() -> usize {
    // oat-lint: allow(determinism, determinism-taint)
    let t = std::time::Instant::now();
    let mut m: HashMap<u32, u32> = HashMap::new(); // oat-lint: allow(ordered-output)
    m.insert(1, 1);
    let mut v = vec![0.5_f64, 0.25];
    // oat-lint: allow(float-ordering, panic-freedom)
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let first = v[0]; // oat-lint: allow(panic-freedom)
    // oat-lint: allow(unsafe-confinement)
    let head = unsafe { *v.as_ptr() };
    let _ = t;
    m.len() + (first + head) as usize
}

// oat-lint: allow(static-mut) -- test shim, never read on library paths
pub static mut WAIVED_GLOBAL: u64 = 0;

/// Interior-mutable, but this file is in the fixture's
/// `static_allowed_paths` allowlist — no waiver needed.
pub static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A justified nondeterminism source: the `determinism` waiver silences
/// the token rule but the value still taints callers, so the protected
/// caller below waives the crossing at the call site.
fn quiet_entropy() -> u64 {
    // oat-lint: allow(determinism) -- diagnostic timing, see observe below
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub struct Quiet;

impl Analyzer for Quiet {
    fn observe(&mut self, _x: u64) {
        // oat-lint: allow(determinism-taint) -- value is discarded, never emitted
        let _ = quiet_entropy();
    }
}

pub struct Keeper {
    kept: Vec<u64>,
}

impl StreamAnalyzer for Keeper {}

impl Keeper {
    pub fn observe_rec(&mut self, x: u64) {
        // oat-lint: allow(bounded-memory) -- drained by the caller every batch
        self.kept.push(x);
    }
}

pub struct Pair {
    m: std::sync::Mutex<u64>,
}

/// Guard across `.await`, waived with an audit note.
pub async fn quiet_poll(p: &Pair) {
    let g = p.m.lock();
    // oat-lint: allow(lock-order) -- single-threaded executor in this harness
    pause().await;
    drop(g);
}

async fn pause() {}
