//! Every violation here is waived by an allow directive; the engine tests
//! assert that none of them surface.

use std::collections::HashMap; // oat-lint: allow(ordered-output)

pub fn waived() -> usize {
    // oat-lint: allow(determinism)
    let t = std::time::Instant::now();
    let mut m: HashMap<u32, u32> = HashMap::new(); // oat-lint: allow(ordered-output)
    m.insert(1, 1);
    let mut v = vec![0.5_f64, 0.25];
    // oat-lint: allow(float-ordering, panic-freedom)
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let first = v[0]; // oat-lint: allow(panic-freedom)
    // oat-lint: allow(unsafe-confinement)
    let head = unsafe { *v.as_ptr() };
    let _ = t;
    m.len() + (first + head) as usize
}
