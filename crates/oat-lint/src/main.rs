//! `oat-lint` — workspace determinism & soundness linter.
//!
//! The paper's figures must be a pure function of the workload seed; this
//! binary machine-checks the invariants that guarantee it (see DESIGN.md,
//! "Invariants & static analysis"):
//!
//! * `determinism`    — no unseeded entropy or wall-clock reads in library
//!   or example code (`thread_rng`, `from_entropy`, `SystemTime::now`,
//!   `Instant::now`, `random()`).
//! * `ordered-output` — no `HashMap`/`HashSet` in report/serialization
//!   modules; iteration order must not leak into emitted bytes.
//! * `panic-freedom`  — `unwrap`/`expect`/`panic!`/indexing-by-literal in
//!   the pipeline crates' library code, ratcheted downward by the
//!   `oat-lint.budget` file.
//! * `float-ordering` — `partial_cmp(..).unwrap()` on float sort keys.
//! * `unsafe-confinement` — `unsafe` anywhere outside the audited
//!   zero-copy columnar codec (`httplog/src/codec/columnar.rs`).
//!
//! Waive a justified occurrence with `// oat-lint: allow(<rule>)` on or
//! directly above the line, or `// oat-lint: allow-file(<rule>)` for a
//! whole file. `--deny-all` (the CI mode) promotes every advisory finding
//! to an error.

mod engine;
mod lexer;
mod rules;

use std::path::PathBuf;
use std::process::ExitCode;

use engine::{check, Options};
use rules::Rule;

struct Cli {
    root: PathBuf,
    deny_all: bool,
    verbose: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        deny_all: false,
        verbose: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => cli.deny_all = true,
            "--verbose" | "-v" => cli.verbose = true,
            "--root" => {
                cli.root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "oat-lint: workspace determinism & soundness linter\n\n\
                     USAGE: oat-lint [--root <dir>] [--deny-all] [--verbose]\n\n\
                     Rules: determinism, ordered-output, panic-freedom, float-ordering,\n\
                     unsafe-confinement.\n\
                     Waive with `// oat-lint: allow(<rule>)`; `--deny-all` is the CI mode."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("oat-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let report = match check(&Options::for_repo(cli.root.clone())) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("oat-lint: scan failed: {err}");
            return ExitCode::from(2);
        }
    };

    // A wrong --root (typo, moved checkout) must not green-light CI.
    if report.files_scanned == 0 {
        eprintln!(
            "oat-lint: no Rust sources found under `{}`; is --root correct?",
            cli.root.display()
        );
        return ExitCode::from(2);
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;

    for finding in &report.findings {
        // `determinism` violations always break replayability and stray
        // `unsafe` voids the soundness audit; the two ordering rules are
        // advisory by default and errors under CI.
        let is_error = cli.deny_all
            || finding.rule == Rule::Determinism
            || finding.rule == Rule::UnsafeConfinement;
        let level = if is_error { "error" } else { "warning" };
        eprintln!("{level}{finding}");
        if is_error {
            errors += 1;
        } else {
            warnings += 1;
        }
    }

    match report.panic_budget {
        Some(budget) if report.budget_exceeded() => {
            for finding in &report.panic_findings {
                eprintln!("error{finding}");
            }
            eprintln!(
                "error[panic-freedom]: {} panicking occurrences in pipeline library code \
                 exceed the budget of {budget} (oat-lint.budget); remove the new ones \
                 or justify them with `// oat-lint: allow(panic-freedom)`",
                report.panic_count()
            );
            errors += report.panic_count() + 1;
        }
        Some(budget) if report.budget_stale() => {
            eprintln!(
                "warning[panic-freedom]: budget is stale: {} occurrences remain but the \
                 budget allows {budget}; ratchet oat-lint.budget down to {}",
                report.panic_count(),
                report.panic_count()
            );
            warnings += 1;
        }
        Some(_) => {}
        None => {
            eprintln!(
                "warning[panic-freedom]: no oat-lint.budget file found; the panic \
                 ratchet is not enforced"
            );
            warnings += 1;
        }
    }

    if cli.verbose || errors > 0 || warnings > 0 {
        eprintln!(
            "oat-lint: {} files scanned, {} errors, {} warnings, panic count {}{}",
            report.files_scanned,
            errors,
            warnings,
            report.panic_count(),
            match report.panic_budget {
                Some(b) => format!(" (budget {b})"),
                None => String::new(),
            }
        );
    }

    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
