//! `oat-lint` — workspace determinism & soundness linter.
//!
//! The paper's figures must be a pure function of the workload seed; this
//! binary machine-checks the invariants that guarantee it (see DESIGN.md,
//! "Invariants & static analysis"):
//!
//! Token rules (single-file):
//!
//! * `determinism`    — no unseeded entropy or wall-clock reads in library
//!   or example code (`thread_rng`, `from_entropy`, `SystemTime::now`,
//!   `Instant::now`, `random()`).
//! * `ordered-output` — no `HashMap`/`HashSet` in report/serialization
//!   modules; iteration order must not leak into emitted bytes.
//! * `panic-freedom`  — `unwrap`/`expect`/`panic!`/indexing-by-literal in
//!   the pipeline crates' library code, ratcheted downward by the
//!   `oat-lint.budgets` file.
//! * `float-ordering` — `partial_cmp(..).unwrap()` on float sort keys.
//! * `unsafe-confinement` — `unsafe` anywhere outside the audited
//!   zero-copy columnar codec (`httplog/src/codec/columnar.rs`).
//!
//! Call-graph passes (workspace-wide, see DESIGN.md for the approximation
//! model):
//!
//! * `determinism-taint` — functions reachable from protected entry points
//!   (`Analyzer::observe*`, `Simulator::replay*`, `Sweep`, codec and
//!   report paths) must not transitively reach a nondeterminism source,
//!   including unordered `HashMap`/`HashSet` iteration.
//! * `bounded-memory` — streaming hot paths (`StreamAnalyzer` impls and
//!   everything reachable from `scan_lossy`/`replay_stream`) must not grow
//!   `self` state per record without a waiver stating the bound.
//! * `lock-order` — no cycles in the lock-acquisition graph, no `.await`
//!   while a guard is held.
//! * `static-mut` — no `static mut` or interior-mutable statics outside
//!   the allowlist.
//!
//! Waive a justified occurrence with `// oat-lint: allow(<rule>)` on or
//! directly above the line (line comments only), or
//! `// oat-lint: allow-file(<rule>)` for a whole file. Rules listed in
//! `oat-lint.budgets` are enforced as monotonic ratchets instead:
//! exceeding a budget is an error, head-room is a stale-budget warning.
//! `--deny-all` (the CI mode) promotes every advisory finding to an error.

mod bounds;
mod engine;
mod graph;
mod lexer;
mod locks;
mod parser;
mod rules;
mod sarif;
mod taint;

use std::path::PathBuf;
use std::process::ExitCode;

use engine::{check, Options};
use rules::Rule;

#[derive(PartialEq)]
enum EmitGraph {
    Dot,
    Json,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Sarif,
}

struct Cli {
    root: PathBuf,
    deny_all: bool,
    verbose: bool,
    emit_graph: Option<EmitGraph>,
    format: Format,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        deny_all: false,
        verbose: false,
        emit_graph: None,
        format: Format::Text,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => cli.deny_all = true,
            "--verbose" | "-v" => cli.verbose = true,
            "--root" => {
                cli.root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--emit-graph" => {
                cli.emit_graph = Some(match args.next().as_deref() {
                    Some("dot") => EmitGraph::Dot,
                    Some("json") => EmitGraph::Json,
                    other => {
                        return Err(format!(
                            "--emit-graph needs `dot` or `json`, got {:?}",
                            other.unwrap_or("nothing")
                        ))
                    }
                });
            }
            "--format" => {
                cli.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("sarif") => Format::Sarif,
                    other => {
                        return Err(format!(
                            "--format needs `text` or `sarif`, got {:?}",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "oat-lint: workspace determinism & soundness linter\n\n\
                     USAGE: oat-lint [--root <dir>] [--deny-all] [--verbose]\n\
                            [--emit-graph dot|json] [--format text|sarif]\n\n\
                     Token rules: determinism, ordered-output, panic-freedom,\n\
                     float-ordering, unsafe-confinement.\n\
                     Call-graph passes: determinism-taint, bounded-memory, lock-order,\n\
                     static-mut.\n\
                     Waive with `// oat-lint: allow(<rule>)` (line comments only);\n\
                     ratchet per-rule budgets in oat-lint.budgets; `--deny-all` is the\n\
                     CI mode; `--emit-graph` dumps the call graph and exits."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(cli)
}

/// Rules whose findings break replayability or the soundness audit
/// outright; always errors, even without `--deny-all`.
const ALWAYS_ERROR: [Rule; 4] = [
    Rule::Determinism,
    Rule::UnsafeConfinement,
    Rule::DeterminismTaint,
    Rule::LockOrder,
];

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("oat-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let report = match check(&Options::for_repo(cli.root.clone())) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("oat-lint: scan failed: {err}");
            return ExitCode::from(2);
        }
    };

    // A wrong --root (typo, moved checkout) must not green-light CI.
    if report.files_scanned == 0 {
        eprintln!(
            "oat-lint: no Rust sources found under `{}`; is --root correct?",
            cli.root.display()
        );
        return ExitCode::from(2);
    }

    if let Some(kind) = &cli.emit_graph {
        print!(
            "{}",
            match kind {
                EmitGraph::Dot => report.graph.to_dot(),
                EmitGraph::Json => report.graph.to_json(),
            }
        );
        return ExitCode::SUCCESS;
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    // (finding, level) pairs for SARIF; levels follow the text severity.
    let mut entries: Vec<(&rules::Finding, &'static str)> = Vec::new();

    for finding in &report.findings {
        let level = if report.budget(finding.rule).is_some() {
            // Budgeted rule: individual findings are accepted debt unless
            // the ratchet is exceeded, in which case each one is an error.
            if report.exceeded(finding.rule) {
                "error"
            } else {
                "note"
            }
        } else if cli.deny_all || ALWAYS_ERROR.contains(&finding.rule) {
            "error"
        } else {
            "warning"
        };
        entries.push((finding, level));
        match level {
            "error" => {
                errors += 1;
                if cli.format == Format::Text {
                    eprintln!("error{finding}");
                }
            }
            "warning" => {
                warnings += 1;
                if cli.format == Format::Text {
                    eprintln!("warning{finding}");
                }
            }
            _ => {
                if cli.format == Format::Text && cli.verbose {
                    eprintln!("note{finding}");
                }
            }
        }
    }

    // Ratchet state per budgeted rule.
    match &report.budgets {
        Some(budgets) => {
            for (&rule, &budget) in budgets {
                let count = report.count(rule);
                if report.exceeded(rule) {
                    eprintln!(
                        "error[{rule}]: {count} occurrences exceed the budget of {budget} \
                         (oat-lint.budgets); remove the new ones or justify them with \
                         `// oat-lint: allow({rule})`"
                    );
                    errors += 1;
                } else if report.stale(rule) {
                    eprintln!(
                        "warning[{rule}]: budget is stale: {count} occurrences remain but the \
                         budget allows {budget}; ratchet oat-lint.budgets down to {count}"
                    );
                    warnings += 1;
                }
            }
        }
        None => {
            eprintln!(
                "warning: no oat-lint.budgets file found; the per-rule ratchets are \
                 not enforced"
            );
            warnings += 1;
        }
    }

    if cli.format == Format::Sarif {
        print!("{}", sarif::render(&entries));
    }

    if cli.verbose || errors > 0 || warnings > 0 {
        let budget_note = match report.budget(Rule::PanicFreedom) {
            Some(b) => format!(" (budget {b})"),
            None => String::new(),
        };
        eprintln!(
            "oat-lint: {} files scanned, {} errors, {} warnings, panic count {}{}",
            report.files_scanned,
            errors,
            warnings,
            report.count(Rule::PanicFreedom),
            budget_note,
        );
    }

    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
