//! Lint rules and their matchers.
//!
//! All matchers run over scrubbed source (see [`crate::lexer`]), so string
//! literals and comments can never produce findings.

use std::fmt;
use std::path::PathBuf;

use crate::lexer::{line_of, line_starts};

/// The repo invariants `oat-lint` enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unseeded entropy / wall-clock reads outside bench and test code.
    Determinism,
    /// `HashMap`/`HashSet` in modules that feed serialized report output.
    OrderedOutput,
    /// `unwrap`/`expect`/`panic!`/indexing-by-literal in library code of the
    /// pipeline crates, ratcheted by the panic budget file.
    PanicFreedom,
    /// `partial_cmp(..).unwrap()` on float sort keys (NaN-unsound).
    FloatOrdering,
    /// `unsafe` outside the audited allowlist (the columnar codec's
    /// mmap/zero-copy module).
    UnsafeConfinement,
    /// A function on a protected output path (analyzers, replay, codec,
    /// report) transitively calls into nondeterminism (call-graph pass).
    DeterminismTaint,
    /// Unbounded growth of `self` state inside streaming hot paths
    /// (call-graph pass).
    BoundedMemory,
    /// Lock-acquisition-order cycles and guards held across `.await`
    /// (call-graph pass).
    LockOrder,
    /// `static mut` or interior-mutable statics outside the allowlist.
    StaticMut,
}

impl Rule {
    pub const ALL: [Rule; 9] = [
        Rule::Determinism,
        Rule::OrderedOutput,
        Rule::PanicFreedom,
        Rule::FloatOrdering,
        Rule::UnsafeConfinement,
        Rule::DeterminismTaint,
        Rule::BoundedMemory,
        Rule::LockOrder,
        Rule::StaticMut,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::OrderedOutput => "ordered-output",
            Rule::PanicFreedom => "panic-freedom",
            Rule::FloatOrdering => "float-ordering",
            Rule::UnsafeConfinement => "unsafe-confinement",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::BoundedMemory => "bounded-memory",
            Rule::LockOrder => "lock-order",
            Rule::StaticMut => "static-mut",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: a rule violated at a location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub path: PathBuf,
    pub line: usize,
    pub column: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}:{}: {}",
            self.rule,
            self.path.display(),
            self.line,
            self.column,
            self.message
        )
    }
}

/// A pattern occurrence inside one file: 1-based line/column plus a message.
pub struct RawHit {
    pub line: usize,
    pub column: usize,
    pub message: String,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Occurrences of `needle` in `text` at identifier boundaries (the bytes
/// just before and after must not be identifier characters).
fn ident_occurrences(text: &str, needle: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let nb = needle.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0usize;
    while from + nb.len() <= bytes.len() {
        match bytes[from..]
            .windows(nb.len())
            .position(|w| w == nb)
            .map(|p| from + p)
        {
            Some(p) => {
                let before_ok = p == 0 || !is_ident(bytes[p - 1]);
                let after = p + nb.len();
                let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
                if before_ok && after_ok {
                    hits.push(p);
                }
                from = p + 1;
            }
            None => break,
        }
    }
    hits
}

fn to_hits(text: &str, offsets: &[usize], message: impl Fn(usize) -> String) -> Vec<RawHit> {
    let starts = line_starts(text);
    offsets
        .iter()
        .map(|&p| {
            let line = line_of(&starts, p);
            RawHit {
                line,
                column: p - starts[line - 1] + 1,
                message: message(p),
            }
        })
        .collect()
}

/// Rule 1: entropy and wall-clock sources that break replayability.
pub fn determinism_hits(text: &str) -> Vec<RawHit> {
    const BANNED: [(&str, &str); 5] = [
        ("thread_rng", "unseeded `thread_rng` breaks trace replayability; derive the RNG from the experiment seed"),
        ("from_entropy", "`from_entropy` seeds from the OS; derive the seed from the experiment config instead"),
        ("SystemTime::now", "`SystemTime::now` makes output depend on wall-clock time; thread a logical clock through instead"),
        ("Instant::now", "`Instant::now` makes output depend on wall-clock time; restrict timing to bench code"),
        ("random", "`random()` draws from thread-local entropy; derive the value from the experiment seed"),
    ];
    let mut hits = Vec::new();
    for (needle, why) in BANNED {
        for p in ident_occurrences(text, needle) {
            // `random` only counts as the nullary entry point `random(...)`.
            if needle == "random" {
                let after = p + needle.len();
                if text.as_bytes().get(after) != Some(&b'(') {
                    continue;
                }
            }
            hits.extend(to_hits(text, &[p], |_| why.to_string()));
        }
    }
    hits.sort_by_key(|h| (h.line, h.column));
    hits
}

/// Rule 2: unordered-map types anywhere in report-emitting modules.
pub fn ordered_output_hits(text: &str) -> Vec<RawHit> {
    let mut hits = Vec::new();
    for needle in ["HashMap", "HashSet"] {
        for p in ident_occurrences(text, needle) {
            hits.extend(to_hits(text, &[p], |_| {
                format!(
                    "`{needle}` in a report path: iteration order is nondeterministic; \
                     use `BTreeMap`/`BTreeSet` or sort before emission"
                )
            }));
        }
    }
    hits.sort_by_key(|h| (h.line, h.column));
    hits
}

/// Rule 3: panicking constructs in library code of the pipeline crates.
pub fn panic_freedom_hits(text: &str) -> Vec<RawHit> {
    let bytes = text.as_bytes();
    let mut offsets: Vec<(usize, String)> = Vec::new();

    for (needle, label) in [
        (".unwrap()", "`unwrap` panics on the error path"),
        (".expect(", "`expect` panics on the error path"),
    ] {
        let nb = needle.as_bytes();
        let mut from = 0usize;
        while let Some(p) = bytes[from..]
            .windows(nb.len())
            .position(|w| w == nb)
            .map(|p| from + p)
        {
            offsets.push((p + 1, label.to_string()));
            from = p + nb.len();
        }
    }

    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for p in ident_occurrences(text, mac) {
            let after = p + mac.len();
            if bytes.get(after) == Some(&b'!') {
                offsets.push((p, format!("`{mac}!` aborts the pipeline")));
            }
        }
    }

    // Indexing by integer literal: `expr[0]` where expr ends in an
    // identifier char, `)` or `]`. Array types/literals (`[u8; 4]`,
    // `[0; N]`) and attributes (`#[...]`) never match the prefix test.
    let mut j = 1usize;
    while j < bytes.len() {
        if bytes[j] == b'['
            && (is_ident(bytes[j - 1]) || bytes[j - 1] == b')' || bytes[j - 1] == b']')
        {
            let mut k = j + 1;
            while k < bytes.len() && bytes[k].is_ascii_digit() {
                k += 1;
            }
            if k > j + 1 && bytes.get(k) == Some(&b']') {
                offsets.push((
                    j,
                    "indexing by literal panics when out of bounds".to_string(),
                ));
            }
        }
        j += 1;
    }

    offsets.sort();
    let starts = line_starts(text);
    offsets
        .into_iter()
        .map(|(p, message)| {
            let line = line_of(&starts, p);
            RawHit {
                line,
                column: p - starts[line - 1] + 1,
                message,
            }
        })
        .collect()
}

/// Rule 4: `.partial_cmp(..)` chained into `unwrap`/`expect` within the
/// following two lines — NaN turns the `None` into a panic mid-sort.
pub fn float_ordering_hits(text: &str) -> Vec<RawHit> {
    let bytes = text.as_bytes();
    let starts = line_starts(text);
    let mut hits = Vec::new();
    for p in ident_occurrences(text, "partial_cmp") {
        if p == 0 || bytes[p - 1] != b'.' {
            continue; // `fn partial_cmp` definitions are fine.
        }
        let line = line_of(&starts, p);
        let window_end = starts
            .get(line + 2) // end of line+2 == start of line+3
            .copied()
            .unwrap_or(bytes.len());
        let window = &text[p..window_end];
        if window.contains(".unwrap()") || window.contains(".expect(") {
            hits.push(RawHit {
                line,
                column: p - starts[line - 1] + 1,
                message: "`partial_cmp(..).unwrap()` panics on NaN; use `total_cmp` \
                          (or an explicit NaN policy) for float sort keys"
                    .to_string(),
            });
        }
    }
    hits
}

/// Rule 5: the `unsafe` keyword anywhere outside the audited allowlist.
/// Matched post-scrub, so `unsafe` in comments/strings and identifiers
/// like `unsafe_code` (the `#![deny(unsafe_code)]` attribute) never trip.
pub fn unsafe_confinement_hits(text: &str) -> Vec<RawHit> {
    let offsets = ident_occurrences(text, "unsafe");
    to_hits(text, &offsets, |_| {
        "`unsafe` outside the audited columnar codec; keep raw-pointer and mmap \
         code confined to `httplog/src/codec/columnar.rs`"
            .to_string()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_matches_entropy_sources() {
        let src = "let r = rand::thread_rng();\nlet t = std::time::Instant::now();\nlet s = SystemTime::now();\nlet x: u8 = rand::random();\nlet rng = SmallRng::from_entropy();\n";
        let hits = determinism_hits(src);
        assert_eq!(hits.len(), 5);
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 2);
    }

    #[test]
    fn determinism_ignores_lookalikes() {
        let src = "let a = my_thread_rng_cache;\nfn randomize() {}\nlet r = randomize();\nlet now = instant_now_cached;\n";
        assert!(determinism_hits(src).is_empty());
    }

    #[test]
    fn ordered_output_flags_hash_collections() {
        let src = "use std::collections::HashMap;\nlet s: HashSet<u32> = HashSet::new();\n";
        let hits = ordered_output_hits(src);
        assert_eq!(hits.len(), 3);
        assert!(hits[0].message.contains("BTreeMap"));
    }

    #[test]
    fn panic_freedom_catches_all_forms() {
        let src = "x.unwrap();\ny.expect( );\npanic!( );\nunreachable!();\nv[0];\nf()[12];\n";
        let hits = panic_freedom_hits(src);
        assert_eq!(hits.len(), 6);
        assert_eq!(hits[4].line, 5);
    }

    #[test]
    fn panic_freedom_skips_array_types_and_attrs() {
        let src =
            "#[derive(Debug)]\nlet a: [u8; 4] = [0; 4];\nlet b = &xs[i];\nlet c = xs[n - 1];\n";
        assert!(panic_freedom_hits(src).is_empty());
    }

    #[test]
    fn float_ordering_flags_chained_unwrap() {
        let src = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        let hits = float_ordering_hits(src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("total_cmp"));
    }

    #[test]
    fn float_ordering_flags_multiline_chain() {
        let src = "v.sort_by(|a, b| {\n    a.score\n        .partial_cmp(&b.score)\n        .unwrap()\n});\n";
        assert_eq!(float_ordering_hits(src).len(), 1);
    }

    #[test]
    fn unsafe_confinement_matches_keyword_only() {
        let src = "let p = unsafe { &*ptr };\nunsafe fn wild() {}\n";
        let hits = unsafe_confinement_hits(src);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].message.contains("columnar"));
    }

    #[test]
    fn unsafe_confinement_ignores_identifiers() {
        let src = "#![deny(unsafe_code)]\nlet unsafety = 1;\nlet not_unsafe = 2;\n";
        assert!(unsafe_confinement_hits(src).is_empty());
    }

    #[test]
    fn float_ordering_ignores_impls_and_fallbacks() {
        let src = "fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n    self.0.partial_cmp(&other.0)\n}\nlet o = a.partial_cmp(&b).unwrap_or(Ordering::Equal);\n";
        assert!(float_ordering_hits(src).is_empty());
    }
}
