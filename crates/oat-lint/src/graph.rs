//! Cross-crate call graph with approximate name resolution.
//!
//! Nodes are every `fn` item the parser extracted across the workspace;
//! edges come from call sites, resolved by path-suffix + method-name
//! matching (no type inference — see DESIGN.md for the false-positive /
//! false-negative classes this implies):
//!
//! * `a::b::name(..)` / `Type::name(..)` — the last segment names the
//!   function; the second-to-last, when present, must match the callee's
//!   impl type, its file stem, or its crate.
//! * `.name(..)` — matches every workspace method of that name *except*
//!   names that collide with the std prelude (`push`, `iter`, `len`, …),
//!   which would otherwise connect the graph through std calls.
//! * bare `name(..)` — matches free functions of that name in the calling
//!   crate, or cross-crate through a `use` mapping for the leaf.
//!
//! Ambiguity resolves to *all* candidates (sound over-approximation for
//! the taint/lock passes; the dump is deterministic either way).

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::parser::{CallSite, ParsedFile};

/// Method names whose bare `.name(..)` call is overwhelmingly a std-type
/// method; resolving them to same-named workspace methods would connect
/// the graph through every `Vec::push`. Qualified calls (`Type::name`)
/// bypass this list.
const STD_COLLISIONS: &[&str] = &[
    "abs",
    "all",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "ceil",
    "chain",
    "chars",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "default",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "into_keys",
    "into_values",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "nth",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "peek",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "remove",
    "resize",
    "retain",
    "rev",
    "round",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "sqrt",
    "starts_with",
    "step_by",
    "sum",
    "take",
    "then",
    "then_with",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_into",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "write",
    "zip",
];

/// One function in the workspace.
#[derive(Debug)]
pub struct FnNode {
    pub crate_name: String,
    /// Normalized path relative to the workspace root.
    pub file: String,
    pub qual: Option<String>,
    pub trait_name: Option<String>,
    pub name: String,
    pub has_self: bool,
    pub line: usize,
    /// Body byte span in the file's scrubbed text.
    pub body: Range<usize>,
    /// Inside a `#[cfg(test)]` region: kept as a node (so the dump shows
    /// it) but ignored by every pass.
    pub is_test: bool,
}

impl FnNode {
    /// `crate::Qual::name` — the display id used in graph dumps.
    pub fn display(&self) -> String {
        match &self.qual {
            Some(q) if !q.is_empty() => format!("{}::{}::{}", self.crate_name, q, self.name),
            _ => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// A resolved call edge: `from` calls `to` at `line` (in `from`'s file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CallEdge {
    pub from: usize,
    pub to: usize,
    pub line: usize,
}

#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    pub edges: Vec<CallEdge>,
    /// Adjacency: callees[i] lists (node, call-site line) pairs.
    pub callees: Vec<Vec<(usize, usize)>>,
    /// Reverse adjacency, for [`CallGraph::reaching`].
    #[cfg_attr(not(test), allow(dead_code))]
    pub callers: Vec<Vec<usize>>,
}

/// Per-file input to graph construction.
pub struct FileFns<'a> {
    pub rel: &'a str,
    pub crate_name: &'a str,
    pub parsed: &'a ParsedFile,
    /// Per-line test-region marks from the lexer.
    pub is_test: &'a [bool],
}

pub fn crate_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        ["examples", ..] => "examples".to_string(),
        _ => "oat".to_string(),
    }
}

fn file_stem(rel: &str) -> &str {
    let base = rel.rsplit('/').next().unwrap_or(rel);
    base.strip_suffix(".rs").unwrap_or(base)
}

/// `SizeAnalyzer` -> `size_analyzer`, for matching a qualifier against a
/// module file stem.
fn to_snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

impl CallGraph {
    pub fn build(files: &[FileFns<'_>]) -> CallGraph {
        let mut nodes = Vec::new();
        // (file index, fn index) per node, to re-walk call sites after
        // the name index exists.
        let mut origins = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, item) in f.parsed.fns.iter().enumerate() {
                nodes.push(FnNode {
                    crate_name: f.crate_name.to_string(),
                    file: f.rel.to_string(),
                    qual: item.qual.clone().filter(|q| !q.is_empty()),
                    trait_name: item.trait_name.clone(),
                    name: item.name.clone(),
                    has_self: item.has_self,
                    line: item.line,
                    body: item.body.clone(),
                    is_test: f.is_test.get(item.line).copied().unwrap_or(false),
                });
                origins.push((fi, gi));
            }
        }

        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(&n.name).or_default().push(i);
        }

        let mut edges = BTreeSet::new();
        for (i, &(fi, gi)) in origins.iter().enumerate() {
            let f = &files[fi];
            let uses: BTreeMap<&str, &[String]> = f
                .parsed
                .uses
                .iter()
                .map(|u| (u.leaf.as_str(), u.path.as_slice()))
                .collect();
            for call in &f.parsed.fns[gi].calls {
                for target in resolve(call, &nodes[i], &nodes, &by_name, &uses) {
                    if target != i {
                        edges.insert(CallEdge {
                            from: i,
                            to: target,
                            line: call.line,
                        });
                    }
                }
            }
        }

        let edges: Vec<CallEdge> = edges.into_iter().collect();
        let mut callees = vec![Vec::new(); nodes.len()];
        let mut callers = vec![Vec::new(); nodes.len()];
        for e in &edges {
            callees[e.from].push((e.to, e.line));
            if !callers[e.to].contains(&e.from) {
                callers[e.to].push(e.from);
            }
        }
        CallGraph {
            nodes,
            edges,
            callees,
            callers,
        }
    }

    /// Nodes forward-reachable from `seeds` (inclusive), skipping test fns.
    pub fn reachable_from(&self, seeds: impl IntoIterator<Item = usize>) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = seeds.into_iter().collect();
        while let Some(n) = stack.pop() {
            if seen[n] || self.nodes[n].is_test {
                continue;
            }
            seen[n] = true;
            for &(c, _) in &self.callees[n] {
                if !seen[c] {
                    stack.push(c);
                }
            }
        }
        seen
    }

    /// Nodes from which any of `seeds` is reachable (callers closure,
    /// inclusive), skipping test fns. The backward counterpart of
    /// [`CallGraph::reachable`]; kept as public API for passes that walk
    /// from sinks instead of entries.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn reaching(&self, seeds: impl IntoIterator<Item = usize>) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = seeds.into_iter().collect();
        while let Some(n) = stack.pop() {
            if seen[n] || self.nodes[n].is_test {
                continue;
            }
            seen[n] = true;
            for &c in &self.callers[n] {
                if !seen[c] {
                    stack.push(c);
                }
            }
        }
        seen
    }

    /// Deterministic DOT dump (nodes and edges sorted by display id).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph oat {\n");
        let mut labels: Vec<String> = self
            .nodes
            .iter()
            .map(|n| format!("  \"{}\" [file=\"{}:{}\"];\n", n.display(), n.file, n.line))
            .collect();
        labels.sort();
        for l in labels {
            out.push_str(&l);
        }
        let mut lines: Vec<String> = self
            .edges
            .iter()
            .map(|e| {
                format!(
                    "  \"{}\" -> \"{}\";\n",
                    self.nodes[e.from].display(),
                    self.nodes[e.to].display()
                )
            })
            .collect();
        lines.sort();
        lines.dedup();
        for l in lines {
            out.push_str(&l);
        }
        out.push_str("}\n");
        out
    }

    /// Deterministic JSON dump: `{"nodes": [...], "edges": [[from, to]]}`
    /// with node indices referring to the nodes array.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {i}, \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \"test\": {}}}{}\n",
                n.display(),
                n.file,
                n.line,
                n.is_test,
                if i + 1 < self.nodes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"edges\": [\n");
        for (i, e) in self.edges.iter().enumerate() {
            out.push_str(&format!(
                "    [{}, {}]{}\n",
                e.from,
                e.to,
                if i + 1 < self.edges.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn resolve(
    call: &CallSite,
    caller: &FnNode,
    nodes: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    uses: &BTreeMap<&str, &[String]>,
) -> Vec<usize> {
    let leaf = match call.path.last() {
        Some(l) => l.as_str(),
        None => return Vec::new(),
    };
    let candidates = match by_name.get(leaf) {
        Some(c) => c.as_slice(),
        None => return Vec::new(),
    };

    if call.path.len() >= 2 {
        // Qualified: `Qual::leaf`. `Self` maps to the caller's impl type.
        let mut qual = call.path[call.path.len() - 2].as_str();
        if qual == "Self" || qual == "self" {
            match &caller.qual {
                Some(q) => qual = q,
                None => return Vec::new(),
            }
        }
        let qual_snake = to_snake(qual);
        let crate_hint = qual.strip_prefix("oat_").unwrap_or(qual);
        return candidates
            .iter()
            .copied()
            .filter(|&c| {
                let n = &nodes[c];
                n.qual.as_deref() == Some(qual)
                    || file_stem(&n.file) == qual_snake
                    || (n.qual.is_none() && n.crate_name == crate_hint)
            })
            .collect();
    }

    if call.is_method {
        if STD_COLLISIONS.contains(&leaf) {
            return Vec::new();
        }
        return candidates
            .iter()
            .copied()
            .filter(|&c| nodes[c].has_self)
            .collect();
    }

    // Bare call: a `use` mapping resolves cross-crate; otherwise free fns
    // in the calling crate (closures and locals shadowing a fn name are a
    // documented false-positive class).
    if let Some(path) = uses.get(leaf) {
        if path.len() >= 2 {
            let qual = path[path.len() - 2].as_str();
            let qual_snake = to_snake(qual);
            let crate_hint = qual.strip_prefix("oat_").unwrap_or(qual);
            return candidates
                .iter()
                .copied()
                .filter(|&c| {
                    let n = &nodes[c];
                    n.qual.as_deref() == Some(qual)
                        || file_stem(&n.file) == qual_snake
                        || (n.qual.is_none() && n.crate_name == crate_hint)
                })
                .collect();
        }
    }
    candidates
        .iter()
        .copied()
        .filter(|&c| {
            let n = &nodes[c];
            n.qual.is_none() && n.crate_name == caller.crate_name
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;
    use crate::parser::parse_file;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(_, src)| parse_file(&scrub(src).text))
            .collect();
        let marks: Vec<Vec<bool>> = files
            .iter()
            .map(|(_, src)| crate::lexer::test_region_lines(&scrub(src).text))
            .collect();
        let inputs: Vec<FileFns> = files
            .iter()
            .zip(&parsed)
            .zip(&marks)
            .map(|(((rel, _), parsed), is_test)| FileFns {
                rel,
                crate_name: Box::leak(crate_of(rel).into_boxed_str()),
                parsed,
                is_test,
            })
            .collect();
        CallGraph::build(&inputs)
    }

    fn find(g: &CallGraph, display: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.display() == display)
            .unwrap_or_else(|| panic!("no node {display}"))
    }

    #[test]
    fn free_fn_edges_within_crate() {
        let g = graph_of(&[(
            "crates/workload/src/lib.rs",
            "pub fn a() { b(); }\nfn b() {}\n",
        )]);
        let a = find(&g, "workload::a");
        let b = find(&g, "workload::b");
        assert!(g.callees[a].iter().any(|&(t, _)| t == b));
    }

    #[test]
    fn method_edges_cross_crates_unless_std_collision() {
        let g = graph_of(&[
            (
                "crates/core/src/lib.rs",
                "pub fn run(s: &S) { s.observe(); s.push(1); }",
            ),
            (
                "crates/cdnsim/src/lib.rs",
                "impl S { pub fn observe(&self) {} pub fn push(&self, x: u32) {} }",
            ),
        ]);
        let run = find(&g, "core::run");
        let observe = find(&g, "cdnsim::S::observe");
        assert!(g.callees[run].iter().any(|&(t, _)| t == observe));
        // `.push` collides with Vec::push: no edge.
        let push = find(&g, "cdnsim::S::push");
        assert!(!g.callees[run].iter().any(|&(t, _)| t == push));
    }

    #[test]
    fn qualified_calls_match_type_module_or_crate() {
        let g = graph_of(&[
            (
                "crates/core/src/experiment.rs",
                "pub fn run() { Simulator::new_sim(); merge::fold_runs(); oat_workload::spawn_gen(); }",
            ),
            (
                "crates/cdnsim/src/simulator.rs",
                "impl Simulator { pub fn new_sim() {} }",
            ),
            ("crates/workload/src/merge.rs", "pub fn fold_runs() {}"),
            ("crates/workload/src/lib.rs", "pub fn spawn_gen() {}"),
        ]);
        let run = find(&g, "core::run");
        for target in [
            "cdnsim::Simulator::new_sim",
            "workload::fold_runs",
            "workload::spawn_gen",
        ] {
            let t = find(&g, target);
            assert!(
                g.callees[run].iter().any(|&(c, _)| c == t),
                "missing edge to {target}"
            );
        }
    }

    #[test]
    fn use_mapping_resolves_bare_cross_crate_calls() {
        let g = graph_of(&[
            (
                "crates/core/src/lib.rs",
                "use oat_workload::generate_trace;\npub fn run() { generate_trace(); }",
            ),
            ("crates/workload/src/lib.rs", "pub fn generate_trace() {}"),
        ]);
        let run = find(&g, "core::run");
        let gen = find(&g, "workload::generate_trace");
        assert!(g.callees[run].iter().any(|&(t, _)| t == gen));
    }

    #[test]
    fn self_qualified_calls_resolve_to_impl_type() {
        let g = graph_of(&[(
            "crates/cdnsim/src/simulator.rs",
            "impl Simulator { pub fn serve(&self) { Self::serve_local(); } fn serve_local() {} }",
        )]);
        let serve = find(&g, "cdnsim::Simulator::serve");
        let local = find(&g, "cdnsim::Simulator::serve_local");
        assert!(g.callees[serve].iter().any(|&(t, _)| t == local));
    }

    #[test]
    fn reachability_both_directions() {
        let g = graph_of(&[(
            "crates/core/src/lib.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lone() {}\n",
        )]);
        let (a, c, lone) = (
            find(&g, "core::a"),
            find(&g, "core::c"),
            find(&g, "core::lone"),
        );
        let fwd = g.reachable_from([a]);
        assert!(fwd[c] && !fwd[lone]);
        let up = g.reaching([c]);
        assert!(up[a] && !up[lone]);
    }

    #[test]
    fn dumps_are_deterministic_and_well_formed() {
        let files = [("crates/core/src/lib.rs", "pub fn a() { b(); }\nfn b() {}\n")];
        let g1 = graph_of(&files);
        let g2 = graph_of(&files);
        assert_eq!(g1.to_dot(), g2.to_dot());
        assert_eq!(g1.to_json(), g2.to_json());
        assert!(g1.to_dot().contains("\"core::a\" -> \"core::b\";"));
        assert!(g1.to_json().contains("\"name\": \"core::a\""));
    }

    #[test]
    fn test_region_fns_are_flagged() {
        let g = graph_of(&[(
            "crates/core/src/lib.rs",
            "pub fn lib_fn() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { super::lib_fn(); }\n}\n",
        )]);
        let helper = find(&g, "core::helper");
        assert!(g.nodes[helper].is_test);
        let lib = find(&g, "core::lib_fn");
        assert!(!g.nodes[lib].is_test);
    }
}
