//! Workspace walker: applies each rule to the files in its scope, honours
//! allow directives and `#[cfg(test)]` regions, and checks the panic budget.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{scrub, test_region_lines};
use crate::rules::{
    determinism_hits, float_ordering_hits, ordered_output_hits, panic_freedom_hits,
    unsafe_confinement_hits, Finding, RawHit, Rule,
};

/// What to lint and where. `Options::for_repo` encodes this repository's
/// layout; tests override the scopes to point at fixture crates.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root; all reported paths are relative to it.
    pub root: PathBuf,
    /// Directories (relative to root) whose `.rs` files are scanned.
    pub scan_roots: Vec<String>,
    /// Path fragments (on `/`-normalized relative paths) excluded from every
    /// rule: bench crate, test/bench directories, lint fixtures.
    pub exclude_contains: Vec<String>,
    /// Files whose `/`-normalized relative path contains one of these run
    /// the `ordered-output` rule (report/serialization modules).
    pub report_paths: Vec<String>,
    /// Files under one of these prefixes run the `panic-freedom` rule
    /// (library code of the pipeline crates).
    pub panic_paths: Vec<String>,
    /// Files whose `/`-normalized relative path contains one of these are
    /// exempt from `unsafe-confinement` (the audited zero-copy modules).
    pub unsafe_allowed_paths: Vec<String>,
    /// Panic budget file, relative to root.
    pub budget_file: String,
}

impl Options {
    pub fn for_repo(root: impl Into<PathBuf>) -> Self {
        Options {
            root: root.into(),
            scan_roots: vec!["src".into(), "crates".into(), "examples".into()],
            exclude_contains: vec![
                "crates/bench/".into(),
                "oat-lint/fixtures/".into(),
                "/tests/".into(),
                "/benches/".into(),
                "/target/".into(),
            ],
            report_paths: vec![
                "cdnsim/src/stats.rs".into(),
                "cdnsim/src/push.rs".into(),
                "core/src/report.rs".into(),
                "core/src/export.rs".into(),
                "core/src/analyzers/".into(),
            ],
            panic_paths: vec![
                "crates/httplog/src/".into(),
                "crates/workload/src/".into(),
                "crates/cdnsim/src/".into(),
                "crates/core/src/".into(),
            ],
            unsafe_allowed_paths: vec!["httplog/src/codec/columnar.rs".into()],
            budget_file: "oat-lint.budget".into(),
        }
    }
}

/// Everything one run of the linter learned.
#[derive(Debug)]
pub struct Report {
    /// Findings for `determinism`, `ordered-output` and `float-ordering`.
    pub findings: Vec<Finding>,
    /// Every unsuppressed `panic-freedom` occurrence in scope. These are
    /// enforced through the budget ratchet, not individually.
    pub panic_findings: Vec<Finding>,
    /// Parsed budget, if the budget file exists.
    pub panic_budget: Option<usize>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    pub fn panic_count(&self) -> usize {
        self.panic_findings.len()
    }

    /// True when the panic count exceeds the ratchet.
    pub fn budget_exceeded(&self) -> bool {
        matches!(self.panic_budget, Some(b) if self.panic_count() > b)
    }

    /// True when the ratchet can be tightened (actual count below budget).
    pub fn budget_stale(&self) -> bool {
        matches!(self.panic_budget, Some(b) if self.panic_count() < b)
    }
}

/// Per-file allow state parsed from `// oat-lint: allow(...)` directives.
struct Allows {
    file_wide: BTreeSet<Rule>,
    /// Lines on which each rule is waived (directive line and the next).
    by_line: Vec<BTreeSet<Rule>>,
}

impl Allows {
    fn parse(comments: &[(usize, String)], n_lines: usize) -> Allows {
        let mut file_wide = BTreeSet::new();
        let mut by_line = vec![BTreeSet::new(); n_lines + 2];
        for (line, text) in comments {
            let Some(at) = text.find("oat-lint:") else {
                continue;
            };
            let directive = text[at + "oat-lint:".len()..].trim();
            let (rules, whole_file) = if let Some(rest) = directive.strip_prefix("allow-file(") {
                (rest, true)
            } else if let Some(rest) = directive.strip_prefix("allow(") {
                (rest, false)
            } else {
                continue;
            };
            let Some(close) = rules.find(')') else {
                continue;
            };
            for name in rules[..close].split(',') {
                let Some(rule) = Rule::from_name(name.trim()) else {
                    continue;
                };
                if whole_file {
                    file_wide.insert(rule);
                } else {
                    for l in [*line, line + 1] {
                        if l < by_line.len() {
                            by_line[l].insert(rule);
                        }
                    }
                }
            }
        }
        Allows { file_wide, by_line }
    }

    fn allows(&self, rule: Rule, line: usize) -> bool {
        self.file_wide.contains(&rule) || self.by_line.get(line).is_some_and(|s| s.contains(&rule))
    }
}

/// Runs every rule over the workspace described by `opts`.
pub fn check(opts: &Options) -> io::Result<Report> {
    let mut files = Vec::new();
    for scan_root in &opts.scan_roots {
        let dir = opts.root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report {
        findings: Vec::new(),
        panic_findings: Vec::new(),
        panic_budget: read_budget(&opts.root.join(&opts.budget_file))?,
        files_scanned: 0,
    };

    for path in files {
        let rel = normalized_rel(&path, &opts.root);
        if opts.exclude_contains.iter().any(|e| rel.contains(e)) {
            continue;
        }
        report.files_scanned += 1;

        let source = fs::read_to_string(&path)?;
        let scrubbed = scrub(&source);
        let is_test = test_region_lines(&scrubbed.text);
        let n_lines = is_test.len();
        let allows = Allows::parse(&scrubbed.comments, n_lines);

        let rel_path = PathBuf::from(&rel);
        let push = |out: &mut Vec<Finding>, rule: Rule, hits: Vec<RawHit>| {
            for hit in hits {
                if is_test.get(hit.line).copied().unwrap_or(false) {
                    continue;
                }
                if allows.allows(rule, hit.line) {
                    continue;
                }
                out.push(Finding {
                    rule,
                    path: rel_path.clone(),
                    line: hit.line,
                    column: hit.column,
                    message: hit.message,
                });
            }
        };

        push(
            &mut report.findings,
            Rule::Determinism,
            determinism_hits(&scrubbed.text),
        );
        push(
            &mut report.findings,
            Rule::FloatOrdering,
            float_ordering_hits(&scrubbed.text),
        );
        if !opts.unsafe_allowed_paths.iter().any(|p| rel.contains(p)) {
            push(
                &mut report.findings,
                Rule::UnsafeConfinement,
                unsafe_confinement_hits(&scrubbed.text),
            );
        }
        if opts.report_paths.iter().any(|p| rel.contains(p)) {
            push(
                &mut report.findings,
                Rule::OrderedOutput,
                ordered_output_hits(&scrubbed.text),
            );
        }
        if opts.panic_paths.iter().any(|p| rel.starts_with(p)) {
            push(
                &mut report.panic_findings,
                Rule::PanicFreedom,
                panic_freedom_hits(&scrubbed.text),
            );
        }
    }

    report.findings.sort_by(|a, b| {
        (a.rule, &a.path, a.line, a.column).cmp(&(b.rule, &b.path, b.line, b.column))
    });
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn normalized_rel(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Budget file format: a line `panic-freedom = <count>` (comments with `#`).
fn read_budget(path: &Path) -> io::Result<Option<usize>> {
    if !path.is_file() {
        return Ok(None);
    }
    let text = fs::read_to_string(path)?;
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if let Some(value) = line.strip_prefix("panic-freedom") {
            if let Some(n) = value.trim().strip_prefix('=') {
                return n.trim().parse::<usize>().map(Some).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: bad panic-freedom budget: {e}", path.display()),
                    )
                });
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seeded-violation fixture crate lives inside this crate's tree but
    /// is excluded from the cargo workspace. Resolve it both under cargo and
    /// under a bare `rustc --test` run from the repo root.
    fn fixture_root() -> PathBuf {
        let mut candidates = Vec::new();
        if let Some(dir) = option_env!("CARGO_MANIFEST_DIR") {
            candidates.push(PathBuf::from(dir).join("fixtures/lint-fixture"));
        }
        candidates.push(PathBuf::from("crates/oat-lint/fixtures/lint-fixture"));
        candidates.push(PathBuf::from("fixtures/lint-fixture"));
        candidates
            .into_iter()
            .find(|p| p.is_dir())
            .expect("lint-fixture crate not found")
    }

    fn fixture_options() -> Options {
        let root = fixture_root();
        Options {
            root,
            scan_roots: vec!["src".into()],
            exclude_contains: vec![],
            report_paths: vec!["src/report.rs".into(), "src/allowed.rs".into()],
            panic_paths: vec!["src/".into()],
            unsafe_allowed_paths: vec![],
            budget_file: "oat-lint.budget".into(),
        }
    }

    #[test]
    fn fixture_trips_every_rule_with_location() {
        let report = check(&fixture_options()).expect("fixture scan");

        for rule in [
            Rule::Determinism,
            Rule::OrderedOutput,
            Rule::FloatOrdering,
            Rule::UnsafeConfinement,
        ] {
            let hits: Vec<_> = report.findings.iter().filter(|f| f.rule == rule).collect();
            assert!(!hits.is_empty(), "fixture must trip {rule}");
            for f in &hits {
                assert!(f.line > 0 && f.column > 0, "diagnostic has a location: {f}");
                let text = f.to_string();
                assert!(
                    text.contains(rule.name()) && text.contains(".rs:"),
                    "{text}"
                );
            }
        }

        assert!(
            !report.panic_findings.is_empty(),
            "fixture must contain panic-freedom occurrences"
        );
        assert_eq!(report.panic_budget, Some(0), "fixture budget pins zero");
        assert!(report.budget_exceeded(), "one unwrap over a zero budget");
    }

    #[test]
    fn fixture_allow_comments_suppress() {
        let report = check(&fixture_options()).expect("fixture scan");
        // allowed.rs seeds one violation per rule, each under an allow
        // directive; none may surface.
        assert!(
            !report
                .findings
                .iter()
                .chain(&report.panic_findings)
                .any(|f| f.path.ends_with("allowed.rs")),
            "allow() directives must suppress findings"
        );
    }

    #[test]
    fn fixture_test_module_is_exempt() {
        let report = check(&fixture_options()).expect("fixture scan");
        // testonly.rs seeds violations exclusively inside `#[cfg(test)]`.
        assert!(
            !report
                .findings
                .iter()
                .chain(&report.panic_findings)
                .any(|f| f.path.ends_with("testonly.rs")),
            "cfg(test) regions are exempt"
        );
    }

    #[test]
    fn budget_parsing_and_ratchet() {
        let report = check(&fixture_options()).expect("fixture scan");
        assert!(report.panic_count() > 0);
        let relaxed = Report {
            panic_budget: Some(report.panic_count() + 5),
            ..report
        };
        assert!(!relaxed.budget_exceeded());
        assert!(relaxed.budget_stale(), "loose budget reported as stale");
    }
}
