//! Workspace walker: parses every file once, runs the token rules and the
//! call-graph passes (taint, bounds, locks), honours allow directives and
//! `#[cfg(test)]` regions, and checks the per-rule budget ratchets.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::bounds::{self, BoundsConfig};
use crate::graph::{crate_of, CallGraph, FileFns};
use crate::lexer::{scrub, test_region_lines, Comment};
use crate::locks::{self, LocksConfig};
use crate::parser::{parse_file, ParsedFile};
use crate::rules::{
    determinism_hits, float_ordering_hits, ordered_output_hits, panic_freedom_hits,
    unsafe_confinement_hits, Finding, RawHit, Rule,
};
use crate::taint::{self, TaintConfig};

/// What to lint and where. `Options::for_repo` encodes this repository's
/// layout; tests override the scopes to point at fixture crates.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root; all reported paths are relative to it.
    pub root: PathBuf,
    /// Directories (relative to root) whose `.rs` files are scanned.
    pub scan_roots: Vec<String>,
    /// Path fragments (on `/`-normalized relative paths) excluded from every
    /// rule: bench crate, test/bench directories, lint fixtures.
    pub exclude_contains: Vec<String>,
    /// Files whose `/`-normalized relative path contains one of these run
    /// the `ordered-output` rule (report/serialization modules).
    pub report_paths: Vec<String>,
    /// Files under one of these prefixes run the `panic-freedom` rule
    /// (library code of the pipeline crates).
    pub panic_paths: Vec<String>,
    /// Files whose `/`-normalized relative path contains one of these are
    /// exempt from `unsafe-confinement` (the audited zero-copy modules).
    pub unsafe_allowed_paths: Vec<String>,
    /// Per-rule budget file, relative to root.
    pub budgets_file: String,
    /// Protected entry points for the determinism-taint pass.
    pub taint: TaintConfig,
    /// Scope of the bounded-memory pass.
    pub bounds: BoundsConfig,
    /// Allowlist for the static-mut half of the lock pass.
    pub locks: LocksConfig,
}

impl Options {
    pub fn for_repo(root: impl Into<PathBuf>) -> Self {
        Options {
            root: root.into(),
            scan_roots: vec!["src".into(), "crates".into(), "examples".into()],
            exclude_contains: vec![
                "crates/bench/".into(),
                "oat-lint/fixtures/".into(),
                "/tests/".into(),
                "/benches/".into(),
                "/target/".into(),
            ],
            report_paths: vec![
                "cdnsim/src/stats.rs".into(),
                "cdnsim/src/push.rs".into(),
                "core/src/report.rs".into(),
                "core/src/export.rs".into(),
                "core/src/analyzers/".into(),
            ],
            panic_paths: vec![
                "crates/httplog/src/".into(),
                "crates/workload/src/".into(),
                "crates/cdnsim/src/".into(),
                "crates/core/src/".into(),
            ],
            unsafe_allowed_paths: vec!["httplog/src/codec/columnar.rs".into()],
            budgets_file: "oat-lint.budgets".into(),
            taint: TaintConfig {
                trait_methods: vec![(
                    "Analyzer".into(),
                    vec!["observe".into(), "observe_batch".into()],
                )],
                type_method_prefixes: vec![
                    ("Simulator".into(), "replay".into()),
                    ("Sweep".into(), String::new()),
                ],
                protected_path_contains: vec![
                    "core/src/report.rs".into(),
                    "core/src/export.rs".into(),
                    "httplog/src/codec/".into(),
                ],
            },
            bounds: BoundsConfig {
                stream_traits: vec!["StreamAnalyzer".into()],
                entry_fns: vec!["scan_lossy".into(), "replay_stream".into()],
            },
            locks: LocksConfig {
                static_allowed_paths: vec![],
            },
        }
    }
}

/// One scanned file: scrubbed text, parse tree, waivers, test regions.
/// The pass modules receive these read-only.
pub struct FileCtx {
    /// `/`-normalized path relative to the workspace root.
    pub rel: String,
    pub crate_name: String,
    /// Scrubbed source (comments and literal contents blanked).
    pub text: String,
    /// Per-line `#[cfg(test)]` marks, 1-based index.
    pub is_test: Vec<bool>,
    pub parsed: ParsedFile,
    waivers: Allows,
}

impl FileCtx {
    /// True when `rule` is waived on `line` by an allow directive.
    pub fn allows(&self, rule: Rule, line: usize) -> bool {
        self.waivers.allows(rule, line)
    }
}

/// Everything one run of the linter learned.
pub struct Report {
    /// Every unwaived finding, all rules, sorted.
    pub findings: Vec<Finding>,
    /// Parsed per-rule budgets, if the budgets file exists. Rules listed
    /// here are enforced through the ratchet (count vs budget) instead of
    /// per-finding severity.
    pub budgets: Option<BTreeMap<Rule, usize>>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// The workspace call graph (for `--emit-graph`).
    pub graph: CallGraph,
}

impl Report {
    pub fn count(&self, rule: Rule) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// All findings for one rule, in report order (test assertions key on
    /// the `file:line` each diagnostic carries).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn findings_for(&self, rule: Rule) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    pub fn budget(&self, rule: Rule) -> Option<usize> {
        self.budgets.as_ref()?.get(&rule).copied()
    }

    /// True when `rule`'s count exceeds its ratchet.
    pub fn exceeded(&self, rule: Rule) -> bool {
        matches!(self.budget(rule), Some(b) if self.count(rule) > b)
    }

    /// True when `rule`'s ratchet can be tightened (count below budget).
    pub fn stale(&self, rule: Rule) -> bool {
        matches!(self.budget(rule), Some(b) if self.count(rule) < b)
    }
}

/// Per-file allow state parsed from `// oat-lint: allow(...)` directives.
/// Only *line* comments carry directives — the same text inside a block
/// comment (or a string, which scrubbing already blanks) is prose.
#[derive(Debug)]
struct Allows {
    file_wide: BTreeSet<Rule>,
    /// Lines on which each rule is waived (directive line and the next).
    by_line: Vec<BTreeSet<Rule>>,
}

impl Allows {
    fn parse(comments: &[Comment], n_lines: usize) -> Allows {
        let mut file_wide = BTreeSet::new();
        let mut by_line = vec![BTreeSet::new(); n_lines + 2];
        for c in comments {
            if c.block {
                continue;
            }
            let Some(at) = c.text.find("oat-lint:") else {
                continue;
            };
            let directive = c.text[at + "oat-lint:".len()..].trim();
            let (rules, whole_file) = if let Some(rest) = directive.strip_prefix("allow-file(") {
                (rest, true)
            } else if let Some(rest) = directive.strip_prefix("allow(") {
                (rest, false)
            } else {
                continue;
            };
            let Some(close) = rules.find(')') else {
                continue;
            };
            for name in rules[..close].split(',') {
                let Some(rule) = Rule::from_name(name.trim()) else {
                    continue;
                };
                if whole_file {
                    file_wide.insert(rule);
                } else {
                    for l in [c.line, c.line + 1] {
                        if l < by_line.len() {
                            by_line[l].insert(rule);
                        }
                    }
                }
            }
        }
        Allows { file_wide, by_line }
    }

    fn allows(&self, rule: Rule, line: usize) -> bool {
        self.file_wide.contains(&rule) || self.by_line.get(line).is_some_and(|s| s.contains(&rule))
    }
}

/// Runs every rule and pass over the workspace described by `opts`.
pub fn check(opts: &Options) -> io::Result<Report> {
    let mut paths = Vec::new();
    for scan_root in &opts.scan_roots {
        let dir = opts.root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut paths)?;
        }
    }
    paths.sort();

    // Pass 1: read, scrub and parse every in-scope file.
    let mut ctxs: Vec<FileCtx> = Vec::new();
    for path in &paths {
        let rel = normalized_rel(path, &opts.root);
        if opts.exclude_contains.iter().any(|e| rel.contains(e)) {
            continue;
        }
        let source = fs::read_to_string(path)?;
        let scrubbed = scrub(&source);
        let is_test = test_region_lines(&scrubbed.text);
        let waivers = Allows::parse(&scrubbed.comments, is_test.len());
        let parsed = parse_file(&scrubbed.text);
        ctxs.push(FileCtx {
            crate_name: crate_of(&rel),
            rel,
            text: scrubbed.text,
            is_test,
            parsed,
            waivers,
        });
    }

    // Pass 2: token-level rules.
    let mut findings: Vec<Finding> = Vec::new();
    for f in &ctxs {
        let rel_path = PathBuf::from(&f.rel);
        let mut push = |rule: Rule, hits: Vec<RawHit>| {
            for hit in hits {
                if f.is_test.get(hit.line).copied().unwrap_or(false) {
                    continue;
                }
                if f.allows(rule, hit.line) {
                    continue;
                }
                findings.push(Finding {
                    rule,
                    path: rel_path.clone(),
                    line: hit.line,
                    column: hit.column,
                    message: hit.message,
                });
            }
        };

        push(Rule::Determinism, determinism_hits(&f.text));
        push(Rule::FloatOrdering, float_ordering_hits(&f.text));
        if !opts.unsafe_allowed_paths.iter().any(|p| f.rel.contains(p)) {
            push(Rule::UnsafeConfinement, unsafe_confinement_hits(&f.text));
        }
        if opts.report_paths.iter().any(|p| f.rel.contains(p)) {
            push(Rule::OrderedOutput, ordered_output_hits(&f.text));
        }
        if opts.panic_paths.iter().any(|p| f.rel.starts_with(p)) {
            push(Rule::PanicFreedom, panic_freedom_hits(&f.text));
        }
    }

    // Pass 3: the call graph and the graph passes.
    let inputs: Vec<FileFns> = ctxs
        .iter()
        .map(|c| FileFns {
            rel: &c.rel,
            crate_name: &c.crate_name,
            parsed: &c.parsed,
            is_test: &c.is_test,
        })
        .collect();
    let graph = CallGraph::build(&inputs);

    findings.extend(taint::run(&graph, &ctxs, &opts.taint));
    findings.extend(bounds::run(&graph, &ctxs, &opts.bounds));
    let (lock_findings, static_findings) = locks::run(&graph, &ctxs, &opts.locks);
    findings.extend(lock_findings);
    findings.extend(static_findings);

    findings.sort_by(|a, b| {
        (a.rule, &a.path, a.line, a.column, &a.message)
            .cmp(&(b.rule, &b.path, b.line, b.column, &b.message))
    });

    Ok(Report {
        findings,
        budgets: read_budgets(&opts.root.join(&opts.budgets_file))?,
        files_scanned: ctxs.len(),
        graph,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn normalized_rel(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Budgets file format: one `rule-name = <count>` per line, `#` comments.
/// Unknown rule names are an error — a typo must not silently disable a
/// ratchet.
fn read_budgets(path: &Path) -> io::Result<Option<BTreeMap<Rule, usize>>> {
    if !path.is_file() {
        return Ok(None);
    }
    let text = fs::read_to_string(path)?;
    let mut budgets = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: {what}: `{line}`", path.display(), i + 1),
            )
        };
        let Some((name, value)) = line.split_once('=') else {
            return Err(bad("expected `rule = count`"));
        };
        let Some(rule) = Rule::from_name(name.trim()) else {
            return Err(bad("unknown rule"));
        };
        let count = value
            .trim()
            .parse::<usize>()
            .map_err(|_| bad("bad budget count"))?;
        if budgets.insert(rule, count).is_some() {
            return Err(bad("duplicate rule"));
        }
    }
    Ok(Some(budgets))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allows_of(src: &str) -> Allows {
        let scrubbed = crate::lexer::scrub(src);
        let n_lines = crate::lexer::line_starts(&scrubbed.text).len();
        Allows::parse(&scrubbed.comments, n_lines)
    }

    #[test]
    fn waiver_in_block_comment_is_prose() {
        let src = "/* oat-lint: allow(determinism) */\nInstant::now();\n";
        let a = allows_of(src);
        assert!(!a.allows(Rule::Determinism, 1));
        assert!(!a.allows(Rule::Determinism, 2));
    }

    #[test]
    fn waiver_in_nested_block_comment_is_prose() {
        let src = "/* outer /* // oat-lint: allow(determinism) */ still */\nInstant::now();\n";
        let scrubbed = crate::lexer::scrub(src);
        // The nested line comment is swallowed by the enclosing block comment,
        // so only one (block) comment is captured — and it must not waive.
        assert_eq!(scrubbed.comments.len(), 1);
        assert!(scrubbed.comments[0].block);
        let a = allows_of(src);
        assert!(!a.allows(Rule::Determinism, 1));
        assert!(!a.allows(Rule::Determinism, 2));
    }

    #[test]
    fn waiver_in_raw_string_is_data() {
        let src = "let s = r#\"// oat-lint: allow(determinism)\"#;\nInstant::now();\n";
        let scrubbed = crate::lexer::scrub(src);
        // Raw-string contents are blanked before comment capture: nothing to
        // mistake for a directive.
        assert!(scrubbed.comments.is_empty());
        let a = allows_of(src);
        assert!(!a.allows(Rule::Determinism, 1));
        assert!(!a.allows(Rule::Determinism, 2));
    }

    #[test]
    fn waiver_on_last_line_without_trailing_newline() {
        let src = "let t = Instant::now(); // oat-lint: allow(determinism)";
        let a = allows_of(src);
        assert!(a.allows(Rule::Determinism, 1));
        assert!(!a.allows(Rule::OrderedOutput, 1));
    }

    /// The seeded-violation fixture crate lives inside this crate's tree but
    /// is excluded from the cargo workspace. Resolve it both under cargo and
    /// under a bare `rustc --test` run from the repo root.
    fn fixture_root() -> PathBuf {
        let mut candidates = Vec::new();
        if let Some(dir) = option_env!("CARGO_MANIFEST_DIR") {
            candidates.push(PathBuf::from(dir).join("fixtures/lint-fixture"));
        }
        candidates.push(PathBuf::from("crates/oat-lint/fixtures/lint-fixture"));
        candidates.push(PathBuf::from("fixtures/lint-fixture"));
        candidates
            .into_iter()
            .find(|p| p.is_dir())
            .expect("lint-fixture crate not found")
    }

    fn fixture_options() -> Options {
        let root = fixture_root();
        Options {
            root,
            scan_roots: vec!["src".into()],
            exclude_contains: vec![],
            report_paths: vec!["src/report.rs".into(), "src/allowed.rs".into()],
            panic_paths: vec!["src/".into()],
            unsafe_allowed_paths: vec![],
            budgets_file: "oat-lint.budgets".into(),
            taint: TaintConfig {
                trait_methods: vec![("Analyzer".into(), vec!["observe".into()])],
                type_method_prefixes: vec![("Replayer".into(), "replay".into())],
                protected_path_contains: vec![],
            },
            bounds: BoundsConfig {
                stream_traits: vec!["StreamAnalyzer".into()],
                entry_fns: vec!["scan_lossy".into()],
            },
            locks: LocksConfig {
                static_allowed_paths: vec!["src/allowed.rs".into()],
            },
        }
    }

    fn fixture_report() -> Report {
        check(&fixture_options()).expect("fixture scan")
    }

    #[test]
    fn fixture_trips_every_rule_with_location() {
        let report = fixture_report();

        for rule in Rule::ALL {
            let hits: Vec<_> = report.findings_for(rule).collect();
            assert!(!hits.is_empty(), "fixture must trip {rule}");
            for f in &hits {
                assert!(f.line > 0 && f.column > 0, "diagnostic has a location: {f}");
                let text = f.to_string();
                assert!(
                    text.contains(rule.name()) && text.contains(".rs:"),
                    "{text}"
                );
            }
        }
        assert!(
            report.findings.len() >= 12,
            "fixture seeds at least 12 violations, got {}",
            report.findings.len()
        );
    }

    #[test]
    fn fixture_allow_comments_suppress() {
        let report = fixture_report();
        // allowed.rs seeds one violation per rule, each under an allow
        // directive; none may surface.
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.path.ends_with("allowed.rs")),
            "allow() directives must suppress findings"
        );
    }

    #[test]
    fn fixture_test_module_is_exempt() {
        let report = fixture_report();
        // testonly.rs seeds violations exclusively inside `#[cfg(test)]`.
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.path.ends_with("testonly.rs")),
            "cfg(test) regions are exempt"
        );
    }

    #[test]
    fn budgets_parse_and_ratchet() {
        let report = fixture_report();
        let budgets = report.budgets.as_ref().expect("fixture budgets file");
        assert_eq!(budgets.get(&Rule::PanicFreedom), Some(&0));
        assert!(report.count(Rule::PanicFreedom) > 0);
        assert!(report.exceeded(Rule::PanicFreedom));
        assert!(!report.stale(Rule::PanicFreedom));
        // A rule with headroom reads as stale, not exceeded.
        assert_eq!(budgets.get(&Rule::FloatOrdering), Some(&9));
        assert!(report.stale(Rule::FloatOrdering));
        assert!(!report.exceeded(Rule::FloatOrdering));
        // Unbudgeted rules have no ratchet state.
        assert_eq!(report.budget(Rule::Determinism), None);
        assert!(!report.exceeded(Rule::Determinism) && !report.stale(Rule::Determinism));
    }

    #[test]
    fn budgets_reject_unknown_rules_and_duplicates() {
        let dir = std::env::temp_dir().join("oat-lint-budgets-test");
        fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("bad-rule");
        fs::write(&path, "panik-freedom = 3\n").expect("write");
        assert!(read_budgets(&path).is_err(), "unknown rule must error");
        let path = dir.join("dup-rule");
        fs::write(&path, "determinism = 0\ndeterminism = 1\n").expect("write");
        assert!(read_budgets(&path).is_err(), "duplicate rule must error");
        let path = dir.join("good");
        fs::write(&path, "# comment\npanic-freedom = 50\nlock-order = 0\n").expect("write");
        let budgets = read_budgets(&path).expect("parse").expect("some");
        assert_eq!(budgets.get(&Rule::PanicFreedom), Some(&50));
        assert_eq!(budgets.get(&Rule::LockOrder), Some(&0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fixture_taint_direct_and_indirect() {
        let report = fixture_report();
        let taint: Vec<String> = report
            .findings_for(Rule::DeterminismTaint)
            .map(|f| f.to_string())
            .collect();
        // Direct: unordered iteration inside a protected fn.
        assert!(
            taint.iter().any(|t| t.contains("unordered iteration")),
            "missing direct unordered-iteration finding: {taint:?}"
        );
        // Indirect (>= 1 hop): a frontier call-site finding naming both the
        // protected caller and the seed-carrying callee. The old token
        // scanner cannot produce this: the call site itself contains no
        // banned needle.
        assert!(
            taint
                .iter()
                .any(|t| t.contains("calls") && t.contains("src/taint.rs:")),
            "missing indirect frontier finding: {taint:?}"
        );
    }

    #[test]
    fn fixture_lock_cycle_and_static_mut() {
        let report = fixture_report();
        let locks: Vec<String> = report
            .findings_for(Rule::LockOrder)
            .map(|f| f.to_string())
            .collect();
        assert!(
            locks.iter().any(|t| t.contains("lock-order cycle")),
            "missing cycle finding: {locks:?}"
        );
        assert!(
            locks.iter().any(|t| t.contains(".await")),
            "missing await-across-guard finding: {locks:?}"
        );
        assert!(
            report.count(Rule::StaticMut) >= 2,
            "missing static-mut findings"
        );
    }

    #[test]
    fn fixture_bounded_memory() {
        let report = fixture_report();
        let bounds: Vec<String> = report
            .findings_for(Rule::BoundedMemory)
            .map(|f| f.to_string())
            .collect();
        assert!(
            bounds
                .iter()
                .any(|t| t.contains("streaming-analyzer trait")),
            "missing stream-type growth finding: {bounds:?}"
        );
        assert!(
            bounds
                .iter()
                .any(|t| t.contains("bounded-memory entry point")),
            "missing entry-reachable growth finding: {bounds:?}"
        );
    }
}
