//! Lock-order pass.
//!
//! Builds a lock-acquisition graph over `Mutex`/`RwLock` guard scopes:
//! nodes are lock identities (impl-type-qualified field paths like
//! `Simulator::pops`, or bare receiver paths for locals), edges mean
//! "acquired while the other is held" — both by direct nesting inside one
//! function and by calling (transitively) into a function that locks.
//! Errors on cycles in that graph, on `.await` inside a guard scope
//! (a sync guard held across a suspension point deadlocks the executor
//! once the edge tier lands), and on `static mut` / interior-mutable
//! statics outside the configured allowlist.
//!
//! Guard scopes are approximated syntactically: a `let`-bound guard lives
//! to the end of its enclosing block, a temporary to the end of its
//! statement. Guards moved across functions and locals aliasing a lock
//! field under another name are documented false-negative classes.

use std::collections::{BTreeMap, BTreeSet};

use crate::engine::FileCtx;
use crate::graph::CallGraph;
use crate::lexer::{line_of, line_starts};
use crate::parser::{canonical_receiver, tokenize, Spanned, Tok};
use crate::rules::{Finding, Rule};

#[derive(Debug, Clone)]
pub struct LocksConfig {
    /// Path fragments where interior-mutable statics are permitted
    /// (audited global state, e.g. a process-local sequence counter).
    pub static_allowed_paths: Vec<String>,
}

/// One acquisition inside a function body: lock id + token scope.
#[derive(Debug)]
struct Acquisition {
    id: String,
    /// Token index of the method name.
    at: usize,
    /// Token index one past the guard's last live token.
    scope_end: usize,
    line: usize,
}

pub fn run(
    graph: &CallGraph,
    files: &[FileCtx],
    config: &LocksConfig,
) -> (Vec<Finding>, Vec<Finding>) {
    let mut lock_findings = Vec::new();
    let mut static_findings = Vec::new();

    // --- interior-mutable / mut statics ----------------------------------
    const INTERIOR_MUTABLE: &[&str] =
        &["Cell", "Mutex", "RwLock", "OnceLock", "LazyLock", "Atomic"];
    for f in files {
        let allowed = config
            .static_allowed_paths
            .iter()
            .any(|p| f.rel.contains(p));
        for s in &f.parsed.statics {
            if f.is_test.get(s.line).copied().unwrap_or(false) || f.allows(Rule::StaticMut, s.line)
            {
                continue;
            }
            if s.is_mut {
                static_findings.push(Finding {
                    rule: Rule::StaticMut,
                    path: f.rel.clone().into(),
                    line: s.line,
                    column: 1,
                    message: format!(
                        "`static mut {}` is unsynchronized global state; use an atomic, a lock, \
                         or thread the value through explicitly",
                        s.name
                    ),
                });
            } else if !allowed && INTERIOR_MUTABLE.iter().any(|n| s.ty.contains(n)) {
                static_findings.push(Finding {
                    rule: Rule::StaticMut,
                    path: f.rel.clone().into(),
                    line: s.line,
                    column: 1,
                    message: format!(
                        "interior-mutable static `{}: {}` outside the allowlist; global mutable \
                         state undermines replay determinism — waive with \
                         `// oat-lint: allow(static-mut)` stating why it cannot reach output",
                        s.name, s.ty
                    ),
                });
            }
        }
    }

    // --- per-function acquisitions ----------------------------------------
    // node -> acquisitions; plus the line span of each scope for matching
    // call edges (line granularity).
    let mut acqs: Vec<Vec<Acquisition>> = Vec::with_capacity(graph.nodes.len());
    for n in &graph.nodes {
        if n.is_test || n.body.is_empty() {
            acqs.push(Vec::new());
            continue;
        }
        let Some(f) = files.iter().find(|f| f.rel == n.file) else {
            acqs.push(Vec::new());
            continue;
        };
        acqs.push(acquisitions(f, n.body.clone(), n.qual.as_deref()));
    }

    // --- await-across-guard ----------------------------------------------
    for (i, n) in graph.nodes.iter().enumerate() {
        if acqs[i].is_empty() {
            continue;
        }
        let Some(f) = files.iter().find(|f| f.rel == n.file) else {
            continue;
        };
        let starts = line_starts(&f.text);
        let body = &f.text[n.body.clone()];
        let toks = tokenize(body);
        for (t, tok) in toks.iter().enumerate() {
            if tok.tok != Tok::Ident("await")
                || t == 0
                || !matches!(toks[t - 1].tok, Tok::Punct(b'.'))
            {
                continue;
            }
            for a in &acqs[i] {
                if t > a.at && t < a.scope_end {
                    let line = line_of(&starts, n.body.start + tok.at);
                    if f.allows(Rule::LockOrder, line) {
                        continue;
                    }
                    lock_findings.push(Finding {
                        rule: Rule::LockOrder,
                        path: n.file.clone().into(),
                        line,
                        column: 1,
                        message: format!(
                            "`.await` while the `{}` guard is held: a sync guard across a \
                             suspension point can deadlock the async executor; drop the guard \
                             first or use an async-aware lock",
                            a.id
                        ),
                    });
                    break;
                }
            }
        }
    }

    // --- transitive lock summaries ----------------------------------------
    // locks_held[i] = lock ids fn i may acquire (directly or transitively).
    let mut held: Vec<BTreeSet<String>> = acqs
        .iter()
        .map(|a| a.iter().map(|x| x.id.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..graph.nodes.len() {
            for &(callee, _) in &graph.callees[i] {
                if held[callee].is_empty() {
                    continue;
                }
                let add: Vec<String> = held[callee]
                    .iter()
                    .filter(|id| !held[i].contains(*id))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    held[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- acquisition-order edges ------------------------------------------
    // (from, to) -> first (file, line) observed, deterministic by node order.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        if acqs[i].is_empty() {
            continue;
        }
        let Some(f) = files.iter().find(|f| f.rel == n.file) else {
            continue;
        };
        let starts = line_starts(&f.text);
        let body = &f.text[n.body.clone()];
        let toks = tokenize(body);
        // Direct nesting.
        for a in &acqs[i] {
            for b in &acqs[i] {
                if a.id != b.id && b.at > a.at && b.at < a.scope_end {
                    edges
                        .entry((a.id.clone(), b.id.clone()))
                        .or_insert((n.file.clone(), b.line));
                }
            }
        }
        // Held across a call into code that locks. Call sites are matched
        // by line against the guard scope's line span.
        for a in &acqs[i] {
            let scope_lines = a.line
                ..=line_of(
                    &starts,
                    n.body.start
                        + toks
                            .get(a.scope_end.saturating_sub(1))
                            .map_or(body.len().saturating_sub(1), |t| t.at),
                );
            for &(callee, call_line) in &graph.callees[i] {
                if !scope_lines.contains(&call_line) {
                    continue;
                }
                for id in &held[callee] {
                    if *id != a.id {
                        edges
                            .entry((a.id.clone(), id.clone()))
                            .or_insert((n.file.clone(), call_line));
                    }
                }
            }
        }
    }

    // --- cycle detection ---------------------------------------------------
    // An edge participates in a cycle iff its target can reach its source.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if !seen.insert(x.to_string()) {
                continue;
            }
            if let Some(next) = adj.get(x) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    for ((from, to), (file, line)) in &edges {
        if !reaches(to, from) {
            continue;
        }
        let Some(f) = files.iter().find(|f| &f.rel == file) else {
            continue;
        };
        if f.allows(Rule::LockOrder, *line) {
            continue;
        }
        lock_findings.push(Finding {
            rule: Rule::LockOrder,
            path: file.clone().into(),
            line: *line,
            column: 1,
            message: format!(
                "lock-order cycle: `{to}` is acquired while `{from}` is held, but another path \
                 acquires `{from}` while holding `{to}`; pick one global order"
            ),
        });
    }

    lock_findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    lock_findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    static_findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    (lock_findings, static_findings)
}

/// Lock acquisitions in one function body with their guard scopes.
fn acquisitions(
    f: &FileCtx,
    body_span: std::ops::Range<usize>,
    qual: Option<&str>,
) -> Vec<Acquisition> {
    let starts = line_starts(&f.text);
    let body = &f.text[body_span.clone()];
    let toks = tokenize(body);
    let close_of = brace_matches(&toks);
    let mut out = Vec::new();

    for t in 0..toks.len() {
        let Tok::Ident(name) = toks[t].tok else {
            continue;
        };
        if name != "lock" && name != "read" && name != "write" {
            continue;
        }
        // Nullary method call only: `.lock()` — `file.write(buf)` is io.
        let dotted = t > 0 && matches!(toks[t - 1].tok, Tok::Punct(b'.'));
        let nullary = matches!(toks.get(t + 1).map(|x| x.tok), Some(Tok::Punct(b'(')))
            && matches!(toks.get(t + 2).map(|x| x.tok), Some(Tok::Punct(b')')));
        if !dotted || !nullary {
            continue;
        }
        let Some(recv) = canonical_receiver(&toks, t - 1) else {
            continue;
        };
        let line = line_of(&starts, body_span.start + toks[t].at);
        if f.is_test.get(line).copied().unwrap_or(false) {
            continue;
        }
        let id = match (recv.strip_prefix("self."), qual) {
            (Some(rest), Some(q)) => format!("{q}::{rest}"),
            _ => recv.clone(),
        };
        out.push(Acquisition {
            id,
            at: t,
            scope_end: guard_scope_end(&toks, t, &close_of),
            line,
        });
    }
    out
}

/// For each `{` token index, the index of its matching `}` (or the end).
fn brace_matches(toks: &[Spanned]) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.tok {
            Tok::Punct(b'{') => stack.push(i),
            Tok::Punct(b'}') => {
                if let Some(open) = stack.pop() {
                    map.insert(open, i);
                }
            }
            _ => {}
        }
    }
    for open in stack {
        map.insert(open, toks.len());
    }
    map
}

/// Scope end for the guard produced at token `t`: end of the enclosing
/// block for `let`-bound guards, end of the statement for temporaries.
fn guard_scope_end(toks: &[Spanned], t: usize, close_of: &BTreeMap<usize, usize>) -> usize {
    // Statement start: walk back to the nearest `;`, `{` or `}` at the
    // same brace depth (treat block starts as statement starts).
    let mut depth = 0isize;
    let mut stmt_start = 0usize;
    let mut i = t;
    while i > 0 {
        i -= 1;
        match toks[i].tok {
            Tok::Punct(b')') | Tok::Punct(b']') | Tok::Punct(b'}') => depth += 1,
            Tok::Punct(b'(') | Tok::Punct(b'[') => depth -= 1,
            Tok::Punct(b'{') => {
                if depth == 0 {
                    stmt_start = i + 1;
                    break;
                }
                depth -= 1;
            }
            Tok::Punct(b';') if depth == 0 => {
                stmt_start = i + 1;
                break;
            }
            _ => {}
        }
    }
    let is_let = matches!(toks.get(stmt_start).map(|x| x.tok), Some(Tok::Ident("let")));

    if is_let {
        // To the end of the enclosing block: innermost `{` still open at
        // `t`.
        let mut best = toks.len();
        for (&open, &close) in close_of {
            if open < t && close > t && close < best {
                best = close;
            }
        }
        best
    } else {
        // To the end of the statement.
        let mut depth = 0isize;
        let mut j = t;
        while j < toks.len() {
            match toks[j].tok {
                Tok::Punct(b'(') | Tok::Punct(b'[') | Tok::Punct(b'{') => depth += 1,
                Tok::Punct(b')') | Tok::Punct(b']') | Tok::Punct(b'}') => {
                    if depth == 0 {
                        return j;
                    }
                    depth -= 1;
                }
                Tok::Punct(b';') if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        toks.len()
    }
}
