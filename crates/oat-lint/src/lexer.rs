//! Token-level source scanner.
//!
//! `oat-lint` deliberately avoids a full AST parser (no `syn`, no
//! dependencies at all) so it builds anywhere the toolchain does. Instead,
//! every rule matches against a *scrubbed* view of the source in which
//! comment bodies and string/char-literal contents are replaced by spaces —
//! byte positions and line structure are preserved, so diagnostics can point
//! at the original `file:line:column` while pattern matching never trips
//! over `"Instant::now"` inside a string or a commented-out `unwrap()`.

/// One comment captured during scrubbing.
#[derive(Debug)]
pub struct Comment {
    /// 1-based line on which the comment starts.
    pub line: usize,
    /// Raw comment text, markers included.
    pub text: String,
    /// True for `/* .. */` comments (possibly nested). Waiver directives
    /// are only honoured in *line* comments: a `// oat-lint: allow(..)`
    /// quoted inside a block comment is prose, not a directive.
    pub block: bool,
}

/// A source file after scrubbing.
#[derive(Debug)]
pub struct Scrubbed {
    /// Source text with comments and literal contents blanked to spaces.
    /// Identical byte length and line structure to the input.
    pub text: String,
    /// Each comment's 1-based start line and raw text (markers included).
    pub comments: Vec<Comment>,
}

/// Blanks comments and string/char-literal contents out of `source`.
pub fn scrub(source: &str) -> Scrubbed {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Appends `bytes[from..to]` to `out` as spaces, preserving newlines.
    let blank = |out: &mut Vec<u8>, line: &mut usize, slice: &[u8]| {
        for &b in slice {
            if b == b'\n' {
                out.push(b'\n');
                *line += 1;
            } else {
                out.push(b' ');
            }
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        let rest = &bytes[i..];

        // Line comment (also doc comments `///` and `//!`).
        if rest.starts_with(b"//") {
            let start_line = line;
            let end = memchr_newline(bytes, i);
            comments.push(Comment {
                line: start_line,
                text: String::from_utf8_lossy(&bytes[i..end]).into_owned(),
                block: false,
            });
            blank(&mut out, &mut line, &bytes[i..end]);
            i = end;
            continue;
        }

        // Block comment, possibly nested.
        if rest.starts_with(b"/*") {
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j..].starts_with(b"/*") {
                    depth += 1;
                    j += 2;
                } else if bytes[j..].starts_with(b"*/") {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                text: String::from_utf8_lossy(&bytes[i..j]).into_owned(),
                block: true,
            });
            blank(&mut out, &mut line, &bytes[i..j]);
            i = j;
            continue;
        }

        // Raw / byte string prefixes: r", r#", b", br", br#" — only when not
        // part of a longer identifier.
        let prev_is_ident = i > 0 && is_ident_byte(bytes[i - 1]);
        if !prev_is_ident && (b == b'r' || b == b'b') {
            if let Some(end) = raw_or_byte_string_end(bytes, i) {
                blank(&mut out, &mut line, &bytes[i..end]);
                i = end;
                continue;
            }
        }

        // Ordinary string literal.
        if b == b'"' {
            let end = quoted_end(bytes, i, b'"');
            blank(&mut out, &mut line, &bytes[i..end]);
            i = end;
            continue;
        }

        // Char literal vs lifetime.
        if b == b'\'' {
            if let Some(end) = char_literal_end(bytes, i) {
                blank(&mut out, &mut line, &bytes[i..end]);
                i = end;
                continue;
            }
            // A lifetime: keep the quote, scanning continues normally.
        }

        if b == b'\n' {
            line += 1;
        }
        out.push(b);
        i += 1;
    }

    Scrubbed {
        text: String::from_utf8_lossy(&out).into_owned(),
        comments,
    }
}

fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    bytes[from..]
        .iter()
        .position(|&b| b == b'\n')
        .map_or(bytes.len(), |p| from + p)
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// End (exclusive) of a `"`-delimited literal starting at `open`, honouring
/// backslash escapes. Unterminated literals run to end of input.
fn quoted_end(bytes: &[u8], open: usize, quote: u8) -> usize {
    let mut j = open + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b if b == quote => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// If `bytes[i..]` starts a raw or byte string (`r"`, `r#…#"`, `b"`, `br…`),
/// returns its end; `None` when `r`/`b` is just an identifier head.
fn raw_or_byte_string_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j < bytes.len() && bytes[j] == b'\'' {
            // Byte char literal b'x'.
            return Some(quoted_end(bytes, j, b'\''));
        }
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < bytes.len() && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'"' {
            // Raw string: ends at `"` followed by `hashes` `#`s.
            let mut k = j + 1;
            while k < bytes.len() {
                if bytes[k] == b'"'
                    && bytes[k + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&b| b == b'#')
                        .count()
                        == hashes
                {
                    return Some(k + 1 + hashes);
                }
                k += 1;
            }
            return Some(bytes.len());
        }
        return None;
    }
    if j < bytes.len() && bytes[j] == b'"' {
        // Plain byte string b"…".
        return Some(quoted_end(bytes, j, b'"'));
    }
    None
}

/// If `bytes[i]` (a `'`) opens a char literal, returns its end; `None` for
/// lifetimes like `'a` / `'static`.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        return Some(quoted_end(bytes, i, b'\''));
    }
    // 'x' is a char literal only if a closing quote follows one char
    // (multi-byte UTF-8 chars also end in a quote within a few bytes).
    for k in 2..=5 {
        match bytes.get(i + k) {
            Some(b'\'') => return Some(i + k + 1),
            Some(&b) if !is_ident_byte(b) && b & 0x80 == 0 => return None,
            Some(_) => {}
            None => return None,
        }
    }
    None
}

/// 1-based line number of byte offset `pos` given precomputed line starts.
pub fn line_of(line_starts: &[usize], pos: usize) -> usize {
    match line_starts.binary_search(&pos) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Byte offsets at which each line starts (line 1 starts at 0).
pub fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Marks lines belonging to `#[cfg(test)]` regions (the attribute's line
/// through the close of the braced item it gates).
pub fn test_region_lines(scrubbed: &str) -> Vec<bool> {
    let starts = line_starts(scrubbed);
    let n_lines = starts.len();
    let mut is_test = vec![false; n_lines + 2];
    let bytes = scrubbed.as_bytes();
    let needle = b"#[cfg(test)]";
    let mut i = 0usize;
    while let Some(p) = find_from(bytes, needle, i) {
        let attr_line = line_of(&starts, p);
        let mut j = p + needle.len();
        // Skip whitespace and any further attributes.
        loop {
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            if bytes[j..].starts_with(b"#[") {
                j = skip_balanced(bytes, j + 1, b'[', b']');
            } else {
                break;
            }
        }
        // Only treat braced items (`mod`, `fn`, `impl`, `pub …`) as regions.
        let gate_is_item = [&b"mod"[..], b"fn", b"pub", b"impl", b"struct", b"enum"]
            .iter()
            .any(|kw| bytes[j..].starts_with(kw));
        if gate_is_item {
            if let Some(open) = bytes[j..].iter().position(|&b| b == b'{' || b == b';') {
                let open = j + open;
                let end = if bytes[open] == b'{' {
                    skip_balanced(bytes, open + 1, b'{', b'}')
                } else {
                    open + 1
                };
                let end_line = line_of(&starts, end.min(bytes.len().saturating_sub(1)));
                for mark in is_test
                    .iter_mut()
                    .take(end_line.min(n_lines) + 1)
                    .skip(attr_line)
                {
                    *mark = true;
                }
                i = end;
                continue;
            }
        }
        is_test[attr_line] = true;
        i = p + needle.len();
    }
    is_test.truncate(n_lines + 1);
    is_test
}

fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| from + p)
}

/// Given `bytes[from]` just *past* an opener, returns the offset just past
/// the matching closer.
fn skip_balanced(bytes: &[u8], from: usize, open: u8, close: u8) -> usize {
    let mut depth = 1usize;
    let mut j = from;
    while j < bytes.len() && depth > 0 {
        if bytes[j] == open {
            depth += 1;
        } else if bytes[j] == close {
            depth -= 1;
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_blanked() {
        let src = "let a = \"Instant::now()\"; // thread_rng here\nlet b = 1;";
        let s = scrub(src);
        assert!(!s.text.contains("Instant::now"));
        assert!(!s.text.contains("thread_rng"));
        assert!(s.text.contains("let b = 1;"));
        assert_eq!(s.text.len(), src.len());
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("thread_rng"));
        assert!(!s.comments[0].block);
    }

    #[test]
    fn block_comments_are_tagged() {
        let src = "/* one */ code // two\n/* three /* nested */ */";
        let s = scrub(src);
        let blocks: Vec<bool> = s.comments.iter().map(|c| c.block).collect();
        assert_eq!(blocks, vec![true, false, true]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still */ b";
        let s = scrub(src);
        assert!(s.text.starts_with('a'));
        assert!(s.text.ends_with('b'));
        assert!(!s.text.contains("inner"));
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let src = r###"let x = r#"unwrap() "quoted""#; let y = b"panic!"; z"###;
        let s = scrub(src);
        assert!(!s.text.contains("unwrap"));
        assert!(!s.text.contains("panic"));
        assert!(s.text.ends_with('z'));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\n'; let d = 'x'; g::<'static>() }";
        let s = scrub(src);
        assert!(s.text.contains("'a str"));
        assert!(s.text.contains("'static"));
        assert!(!s.text.contains("'x'"));
    }

    #[test]
    fn multiline_string_preserves_lines() {
        let src = "let s = \"line one\nline two\";\nnext";
        let s = scrub(src);
        assert_eq!(s.text.matches('\n').count(), src.matches('\n').count());
        assert!(s.text.contains("next"));
    }

    #[test]
    fn test_regions_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let s = scrub(src);
        let marks = test_region_lines(&s.text);
        assert!(!marks[1], "lib line is not test code");
        assert!(marks[2], "attribute line");
        assert!(marks[3] && marks[4] && marks[5], "module body");
        assert!(!marks[6], "code after the module");
    }

    #[test]
    fn line_helpers() {
        let starts = line_starts("ab\ncd\nef");
        assert_eq!(starts, vec![0, 3, 6]);
        assert_eq!(line_of(&starts, 0), 1);
        assert_eq!(line_of(&starts, 4), 2);
        assert_eq!(line_of(&starts, 7), 3);
    }
}
