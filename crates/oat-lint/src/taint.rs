//! Determinism-taint pass.
//!
//! Seeds taint at nondeterminism *sources* — the token-level determinism
//! needles (`thread_rng`, `from_entropy`, `SystemTime::now`,
//! `Instant::now`, nullary `random()`) plus unordered `HashMap`/`HashSet`
//! iteration — and propagates it transitively through the call graph. A
//! finding fires at the *frontier*: the last edge of a chain from a
//! protected entry point (`Analyzer::observe`/`observe_batch`,
//! `Simulator::replay*`, `Sweep`, codec and report/export paths) to a
//! source — the call site invoking the function that contains the seed.
//!
//! Waiver semantics (documented in DESIGN.md):
//! * `// oat-lint: allow(determinism)` on a source line waives the
//!   token-level error only — the justification is local, so the source
//!   still taints callers on protected paths.
//! * `// oat-lint: allow(determinism-taint)` on the source line stops
//!   seeding (asserts the value cannot reach emitted bytes); on a
//!   frontier call site it waives that one crossing.

use crate::engine::FileCtx;
use crate::graph::CallGraph;
use crate::lexer::{line_of, line_starts};
use crate::parser::{tokenize, Spanned, Tok};
use crate::rules::{determinism_hits, Finding, Rule};

/// Selects the protected entry points of the workspace.
#[derive(Debug, Clone)]
pub struct TaintConfig {
    /// (trait name, method names): methods of `impl Trait for T` blocks.
    pub trait_methods: Vec<(String, Vec<String>)>,
    /// (impl type, method-name prefix): `("Simulator", "replay")` marks
    /// every `Simulator::replay*`; an empty prefix marks every method.
    pub type_method_prefixes: Vec<(String, String)>,
    /// Every fn defined in a file whose path contains one of these.
    pub protected_path_contains: Vec<String>,
}

/// One taint seed: a nondeterminism source inside a function body.
struct Seed {
    node: usize,
    line: usize,
    what: String,
}

pub fn run(graph: &CallGraph, files: &[FileCtx], config: &TaintConfig) -> Vec<Finding> {
    let ctx_of = |rel: &str| files.iter().find(|f| f.rel == rel);

    // --- Seeds -----------------------------------------------------------
    let mut seeds: Vec<Seed> = Vec::new();
    for f in files {
        let starts = line_starts(&f.text);
        // Token-level sources, attributed to the enclosing fn by line.
        for hit in determinism_hits(&f.text) {
            if f.is_test.get(hit.line).copied().unwrap_or(false) {
                continue;
            }
            // `allow(determinism)` is deliberately NOT honoured here: it
            // justifies the read locally but the value still taints
            // protected callers. Only `allow(determinism-taint)` on the
            // source asserts the value cannot reach emitted bytes.
            if f.allows(Rule::DeterminismTaint, hit.line) {
                continue;
            }
            if let Some(node) = node_at(graph, f, &starts, hit.line) {
                seeds.push(Seed {
                    node,
                    line: hit.line,
                    what: source_name(&hit.message),
                });
            }
        }
        // Unordered-iteration sources.
        for (line, recv) in unordered_iteration_sites(&f.text) {
            if f.is_test.get(line).copied().unwrap_or(false) {
                continue;
            }
            if f.allows(Rule::DeterminismTaint, line) {
                continue;
            }
            if let Some(node) = node_at(graph, f, &starts, line) {
                seeds.push(Seed {
                    node,
                    line,
                    what: format!("unordered iteration over `{recv}`"),
                });
            }
        }
    }

    // --- Protected set ---------------------------------------------------
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| is_entry(graph, i, config))
        .collect();
    let protected = graph.reachable_from(entries.iter().copied());

    // A witness entry per protected node (multi-source BFS, deterministic
    // by entry order), for actionable messages.
    let witness = {
        let mut w: Vec<Option<usize>> = vec![None; graph.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &e in &entries {
            if w[e].is_none() && !graph.nodes[e].is_test {
                w[e] = Some(e);
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &(c, _) in &graph.callees[n] {
                if w[c].is_none() && !graph.nodes[c].is_test {
                    w[c] = w[n];
                    queue.push_back(c);
                }
            }
        }
        w
    };

    // --- Frontier findings ------------------------------------------------
    // Because `protected` is a forward closure, every function on a chain
    // from an entry to a seed is itself protected; the meaningful frontier
    // is therefore the *last* edge of the chain — a protected caller
    // invoking the function that contains the seed. Waiving that call site
    // (`allow(determinism-taint)`) waives the crossing only.
    let mut findings = Vec::new();

    // Seeds sitting directly inside protected code: the token-level
    // determinism rule already errors on wall-clock/entropy reads, so only
    // the unordered-iteration seeds (invisible to it) are reported here.
    for seed in &seeds {
        if !protected[seed.node] || !seed.what.starts_with("unordered") {
            continue;
        }
        let n = &graph.nodes[seed.node];
        findings.push(Finding {
            rule: Rule::DeterminismTaint,
            path: n.file.clone().into(),
            line: seed.line,
            column: 1,
            message: format!(
                "{} inside `{}`, which is reachable from a protected entry point; \
                 sort before iterating or waive with `// oat-lint: allow(determinism-taint)`",
                seed.what,
                n.display()
            ),
        });
    }

    // Seeds grouped by containing node.
    let mut seeds_at: std::collections::BTreeMap<usize, Vec<&Seed>> =
        std::collections::BTreeMap::new();
    for s in &seeds {
        seeds_at.entry(s.node).or_default().push(s);
    }

    for e in &graph.edges {
        if !protected[e.from] {
            continue;
        }
        let Some(node_seeds) = seeds_at.get(&e.to) else {
            continue;
        };
        let caller = &graph.nodes[e.from];
        let callee = &graph.nodes[e.to];
        if caller.is_test || callee.is_test {
            continue;
        }
        let Some(f) = ctx_of(&caller.file) else {
            continue;
        };
        if f.allows(Rule::DeterminismTaint, e.line) {
            continue;
        }
        let via = witness[e.from]
            .map(|w| graph.nodes[w].display())
            .unwrap_or_else(|| "a protected entry point".to_string());
        let seed = node_seeds[0];
        findings.push(Finding {
            rule: Rule::DeterminismTaint,
            path: caller.file.clone().into(),
            line: e.line,
            column: 1,
            message: format!(
                "`{}` (reachable from protected entry `{via}`) calls `{}`, which contains {} \
                 ({}:{}); make the callee deterministic or waive this call site with \
                 `// oat-lint: allow(determinism-taint)`",
                caller.display(),
                callee.display(),
                seed.what,
                graph.nodes[seed.node].file,
                seed.line,
            ),
        });
    }

    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    findings
}

fn is_entry(graph: &CallGraph, i: usize, config: &TaintConfig) -> bool {
    let n = &graph.nodes[i];
    if n.is_test {
        return false;
    }
    for (tr, methods) in &config.trait_methods {
        if n.trait_name.as_deref() == Some(tr) && methods.iter().any(|m| m == &n.name) {
            return true;
        }
    }
    for (ty, prefix) in &config.type_method_prefixes {
        if n.qual.as_deref() == Some(ty) && n.name.starts_with(prefix.as_str()) {
            return true;
        }
    }
    config
        .protected_path_contains
        .iter()
        .any(|p| n.file.contains(p))
}

/// The graph node whose body spans `line` in file `f` (innermost wins:
/// with opaque nested items there is exactly one).
fn node_at(graph: &CallGraph, f: &FileCtx, starts: &[usize], line: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, n) in graph.nodes.iter().enumerate() {
        if n.file != f.rel || n.body.is_empty() {
            continue;
        }
        let lo = line_of(starts, n.body.start);
        let hi = line_of(starts, n.body.end.min(f.text.len().saturating_sub(1)));
        if line >= lo && line <= hi {
            best = match best {
                Some(b) if graph.nodes[b].body.len() <= n.body.len() => Some(b),
                _ => Some(i),
            };
        }
    }
    best
}

fn source_name(message: &str) -> String {
    // The determinism rule's messages lead with the backticked source.
    match message.split('`').nth(1) {
        Some(src) => format!("`{src}`"),
        None => "a nondeterminism source".to_string(),
    }
}

/// (line, receiver) pairs where an iteration method is called on a name
/// declared with a `HashMap`/`HashSet` type somewhere in this file, or a
/// `for` loop iterates one directly. Name-based: a local shadowing a hash
/// field with an ordered type is a documented false-positive class.
pub fn unordered_iteration_sites(text: &str) -> Vec<(usize, String)> {
    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "into_iter",
        "into_keys",
        "into_values",
        "retain",
    ];
    let toks = tokenize(text);
    let starts = line_starts(text);
    let hash_names = hash_typed_names(&toks);
    if hash_names.is_empty() {
        return Vec::new();
    }
    let mut sites = Vec::new();

    for i in 0..toks.len() {
        // `.method(` on a hash-typed receiver.
        if let Tok::Ident(name) = toks[i].tok {
            let dotted = i > 0 && matches!(toks[i - 1].tok, Tok::Punct(b'.'));
            let called = matches!(toks.get(i + 1).map(|t| t.tok), Some(Tok::Punct(b'(')));
            if dotted && called && ITER_METHODS.contains(&name) {
                if let Some(recv) = crate::parser::canonical_receiver(&toks, i - 1) {
                    if hash_names.contains(&last_segment(&recv).to_string()) {
                        sites.push((line_of(&starts, toks[i].at), recv));
                    }
                }
            }
            // `for x in [&]recv {` over a hash-typed name.
            if name == "in" && i > 0 {
                // Walk forward over `&`/`mut` and a simple path expression.
                let mut j = i + 1;
                while matches!(
                    toks.get(j).map(|t| t.tok),
                    Some(Tok::Punct(b'&')) | Some(Tok::Ident("mut"))
                ) {
                    j += 1;
                }
                let expr_start = j;
                let mut last_ident_end = None;
                while j < toks.len() {
                    match toks[j].tok {
                        Tok::Ident(_) => {
                            last_ident_end = Some(j);
                            j += 1;
                        }
                        Tok::Punct(b'.') | Tok::Punct(b':') => j += 1,
                        Tok::Punct(b'[') => j = crate::parser::skip_group_fwd(&toks, j, b'[', b']'),
                        _ => break,
                    }
                }
                // Only a *bare* path directly followed by the loop body:
                // method chains were handled above.
                if matches!(toks.get(j).map(|t| t.tok), Some(Tok::Punct(b'{'))) {
                    if let Some(endi) = last_ident_end {
                        if let Some(recv) = crate::parser::canonical_receiver(&toks, endi + 1) {
                            if hash_names.contains(&last_segment(&recv).to_string())
                                && toks[expr_start].at <= toks[endi].at
                            {
                                sites.push((line_of(&starts, toks[endi].at), recv));
                            }
                        }
                    }
                }
            }
        }
    }
    sites.sort();
    sites.dedup();
    sites
}

fn last_segment(recv: &str) -> &str {
    recv.rsplit('.').next().unwrap_or(recv)
}

/// Names declared with a type mentioning `HashMap`/`HashSet` in this file
/// (struct fields, lets, params): `counts: Vec<HashMap<K, V>>` records
/// `counts`.
fn hash_typed_names(toks: &[Spanned]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // `name :` not followed by another `:` (that would be a path).
        let is_decl = matches!(toks[i].tok, Tok::Ident(_))
            && matches!(toks.get(i + 1).map(|t| t.tok), Some(Tok::Punct(b':')))
            && !matches!(toks.get(i + 2).map(|t| t.tok), Some(Tok::Punct(b':')))
            && !matches!(
                toks.get(i.wrapping_sub(1)).map(|t| t.tok),
                Some(Tok::Punct(b':'))
            );
        if !is_decl {
            i += 1;
            continue;
        }
        let Tok::Ident(name) = toks[i].tok else {
            unreachable!()
        };
        // Type text runs to `,` `;` `=` `)` `{` `>` at angle/paren depth 0.
        let mut j = i + 2;
        let mut angle = 0isize;
        let mut paren = 0isize;
        let mut has_hash = false;
        while j < toks.len() {
            match toks[j].tok {
                Tok::Ident("HashMap") | Tok::Ident("HashSet") => has_hash = true,
                Tok::Punct(b'<') => angle += 1,
                Tok::Punct(b'>') => {
                    if angle == 0 {
                        break;
                    }
                    angle -= 1;
                }
                Tok::Punct(b'(') | Tok::Punct(b'[') => paren += 1,
                Tok::Punct(b')') | Tok::Punct(b']') => {
                    if paren == 0 {
                        break;
                    }
                    paren -= 1;
                }
                Tok::Punct(b',')
                | Tok::Punct(b';')
                | Tok::Punct(b'=')
                | Tok::Punct(b'{')
                | Tok::Punct(b'}')
                    if angle == 0 && paren == 0 =>
                {
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if has_hash {
            names.push(name.to_string());
        }
        i += 1;
    }
    names.sort();
    names.dedup();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_typed_names_found() {
        let src = "struct A { counts: Vec<HashMap<u32, u64>>, tidy: BTreeMap<u32, u64> }\nfn f(m: &HashSet<u32>) { let x: HashMap<u8, u8> = HashMap::new(); }";
        let names = hash_typed_names(&tokenize(src));
        assert_eq!(names, vec!["counts", "m", "x"]);
    }

    #[test]
    fn iteration_sites_on_hash_names_only() {
        let src = "struct A { counts: HashMap<u32, u64>, tidy: BTreeMap<u32, u64> }\nimpl A {\n  fn f(&self) {\n    for k in self.counts.keys() {}\n    for v in &self.tidy {}\n    self.tidy.iter();\n  }\n}\n";
        let sites = unordered_iteration_sites(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].0, 4);
        assert_eq!(sites[0].1, "self.counts");
    }

    #[test]
    fn for_loop_over_hash_field() {
        let src = "struct A { seen: HashSet<u32> }\nimpl A {\n  fn f(&self) {\n    for k in &self.seen {\n    }\n  }\n}\n";
        let sites = unordered_iteration_sites(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].0, 4);
    }

    #[test]
    fn indexed_hash_fields_canonicalize() {
        let src = "struct A { per: Vec<HashMap<u32, u64>> }\nimpl A {\n  fn f(&self, i: usize) {\n    self.per[i].values();\n  }\n}\n";
        let sites = unordered_iteration_sites(src);
        assert_eq!(sites, vec![(4, "self.per".to_string())]);
    }
}
