//! SARIF 2.1.0 output, hand-rolled (no serde in this crate).
//!
//! One run, one result per finding. `level` is decided by the caller
//! (severity policy lives in `main`): `error`, `warning`, or `note` for
//! budgeted occurrences inside their ratchet.

use crate::rules::{Finding, Rule};

const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn rule_help(rule: Rule) -> &'static str {
    match rule {
        Rule::Determinism => "No unseeded entropy or wall-clock reads in library code.",
        Rule::OrderedOutput => "No HashMap/HashSet in report/serialization modules.",
        Rule::PanicFreedom => "No unwrap/expect/panic!/literal indexing in pipeline library code.",
        Rule::FloatOrdering => "No partial_cmp(..).unwrap() on float sort keys.",
        Rule::UnsafeConfinement => "No `unsafe` outside the audited columnar codec.",
        Rule::DeterminismTaint => {
            "Protected output paths must not transitively reach nondeterminism."
        }
        Rule::BoundedMemory => "Streaming hot paths must not grow per-record state unbounded.",
        Rule::LockOrder => "No lock-acquisition cycles or guards held across .await.",
        Rule::StaticMut => "No static mut or interior-mutable statics outside the allowlist.",
    }
}

/// Renders `(finding, level)` pairs as a complete SARIF log.
pub fn render(entries: &[(&Finding, &'static str)]) -> String {
    let mut out = String::with_capacity(4096 + entries.len() * 256);
    out.push_str("{\n");
    out.push_str(&format!("  \"$schema\": \"{SCHEMA}\",\n"));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"oat-lint\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            rule.name(),
            esc(rule_help(*rule)),
            if i + 1 < Rule::ALL.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, (f, level)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"{level}\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \
             \"startColumn\": {}}}}}}}]}}{}\n",
            f.rule.name(),
            esc(&f.message),
            esc(&f.path.display().to_string()),
            f.line,
            f.column,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn renders_escaped_results() {
        let f = Finding {
            rule: Rule::Determinism,
            path: PathBuf::from("crates/core/src/lib.rs"),
            line: 12,
            column: 3,
            message: "uses `thread_rng`\nbreaks \"replay\"".to_string(),
        };
        let sarif = render(&[(&f, "error")]);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"ruleId\": \"determinism\""));
        assert!(sarif.contains("\\nbreaks \\\"replay\\\""));
        assert!(sarif.contains("\"startLine\": 12"));
        // Every rule id is declared in the driver metadata.
        for rule in Rule::ALL {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", rule.name())));
        }
    }

    #[test]
    fn empty_run_is_well_formed() {
        let sarif = render(&[]);
        assert!(sarif.contains("\"results\": [\n      ]"));
    }
}
