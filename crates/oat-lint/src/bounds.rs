//! Bounded-memory pass.
//!
//! The streaming pipeline's contract (PRs 6–7) is that RSS stays bounded
//! by shard/batch size, not trace length. This pass makes the static half
//! of that promise: inside the streaming hot paths — methods of types
//! implementing `StreamAnalyzer`, and every function reachable from
//! `scan_lossy` / `replay_stream` — growth calls on `self` state
//! (`push`, `extend`, `push_str`, `insert`) are flagged unless waived.
//!
//! A waiver (`// oat-lint: allow(bounded-memory)`) documents *why* the
//! growth is bounded (keyed by catalog/site cardinality, drained per
//! batch, …). Growth hidden behind `entry().or_default()`, `resize`, or
//! helper methods on the field's type is a documented false-negative
//! class (DESIGN.md).

use crate::engine::FileCtx;
use crate::graph::CallGraph;
use crate::lexer::{line_of, line_starts};
use crate::parser::{canonical_receiver, tokenize, Tok};
use crate::rules::{Finding, Rule};

/// Selects the bounded-memory scope.
#[derive(Debug, Clone)]
pub struct BoundsConfig {
    /// Traits whose implementing types' methods are in scope.
    pub stream_traits: Vec<String>,
    /// Function names whose forward call closure is in scope.
    pub entry_fns: Vec<String>,
}

const GROWTH_METHODS: &[&str] = &["push", "extend", "push_str", "insert"];

pub fn run(graph: &CallGraph, files: &[FileCtx], config: &BoundsConfig) -> Vec<Finding> {
    // Types implementing any of the stream traits, workspace-wide.
    let mut stream_types: Vec<&str> = Vec::new();
    for f in files {
        for (tr, ty) in &f.parsed.trait_impls {
            if config.stream_traits.iter().any(|t| t == tr) {
                stream_types.push(ty);
            }
        }
    }
    stream_types.sort();
    stream_types.dedup();

    // Forward closure of the entry functions.
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| config.entry_fns.iter().any(|e| e == &graph.nodes[i].name))
        .collect();
    let reachable = graph.reachable_from(entries);

    let mut findings = Vec::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        if n.is_test || n.body.is_empty() {
            continue;
        }
        let in_stream_type = n
            .qual
            .as_deref()
            .is_some_and(|q| stream_types.binary_search(&q).is_ok());
        if !in_stream_type && !reachable[i] {
            continue;
        }
        let Some(f) = files.iter().find(|f| f.rel == n.file) else {
            continue;
        };
        let starts = line_starts(&f.text);
        let body = &f.text[n.body.clone()];
        let toks = tokenize(body);
        for t in 0..toks.len() {
            let Tok::Ident(name) = toks[t].tok else {
                continue;
            };
            if !GROWTH_METHODS.contains(&name) {
                continue;
            }
            let dotted = t > 0 && matches!(toks[t - 1].tok, Tok::Punct(b'.'));
            let called = matches!(toks.get(t + 1).map(|x| x.tok), Some(Tok::Punct(b'(')));
            if !dotted || !called {
                continue;
            }
            let Some(recv) = canonical_receiver(&toks, t - 1) else {
                continue;
            };
            if !recv.starts_with("self.") {
                continue;
            }
            let line = line_of(&starts, n.body.start + toks[t].at);
            if f.is_test.get(line).copied().unwrap_or(false) || f.allows(Rule::BoundedMemory, line)
            {
                continue;
            }
            let why = if in_stream_type {
                format!("`{}` implements a streaming-analyzer trait", n.display())
            } else {
                format!(
                    "`{}` is reachable from a bounded-memory entry point",
                    n.display()
                )
            };
            findings.push(Finding {
                rule: Rule::BoundedMemory,
                path: n.file.clone().into(),
                line,
                column: 1,
                message: format!(
                    "`{recv}.{name}(..)` grows per-record state while {why}; bound or drain it, \
                     or waive with `// oat-lint: allow(bounded-memory)` stating the bound"
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    findings
}
