//! Lightweight item-tree parser over the scrubbed token stream.
//!
//! This is *not* a Rust parser: it recovers just enough structure for the
//! whole-program passes — `fn` items with their impl/trait context,
//! receiver presence, body spans and called paths; `impl` headers; `use`
//! declarations; `static` items. The approximation model (what it can and
//! cannot see) is documented in DESIGN.md, "Call-graph approximation".
//!
//! Key simplifications, all deliberate:
//! * Function bodies are opaque: nested `fn`/`impl` items inside a body
//!   are not lifted — their calls are attributed to the enclosing
//!   function (sound for taint: the outer fn can reach them).
//! * Name resolution happens later, in [`crate::graph`], by path-suffix
//!   and method-name matching; the parser only records the called path
//!   text as written.
//! * Generics are skipped wholesale; trait bounds never produce edges.

use crate::lexer::{line_of, line_starts};

/// One token of scrubbed source: identifiers and single punctuation bytes.
/// String/char literals and comments are already blanked, so the stream
/// contains only code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok<'a> {
    Ident(&'a str),
    Punct(u8),
}

/// A token plus its byte offset in the scrubbed text.
#[derive(Debug, Clone, Copy)]
pub struct Spanned<'a> {
    pub tok: Tok<'a>,
    pub at: usize,
}

/// A called path as written at a call site: `["merge", "merge_runs"]` for
/// `merge::merge_runs(..)`, `["observe"]` for `.observe(..)`.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub path: Vec<String>,
    /// True for `.name(..)` method-call syntax.
    pub is_method: bool,
    /// 1-based line of the call.
    pub line: usize,
}

/// A `fn` item (free function, impl method, or trait default method).
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl` type (or trait name for trait default methods).
    pub qual: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// Whether the parameter list contains a `self` receiver.
    pub has_self: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte span of the body (inside the braces), empty for `fn ..;`.
    pub body: std::ops::Range<usize>,
    pub calls: Vec<CallSite>,
}

/// A `use` declaration mapping its leaf name (or `as` alias) to the full
/// path as written. Grouped imports (`use a::{b, c}`) record one entry per
/// leaf.
#[derive(Debug)]
pub struct UseItem {
    pub leaf: String,
    pub path: Vec<String>,
}

/// A `static` item (module level or function local).
#[derive(Debug)]
pub struct StaticItem {
    pub name: String,
    pub is_mut: bool,
    /// Type text, whitespace-normalized (e.g. `RefCell<u32>`).
    pub ty: String,
    pub line: usize,
}

/// The item tree of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseItem>,
    pub statics: Vec<StaticItem>,
    /// `impl Trait for Type` pairs seen in this file (trait, type).
    pub trait_impls: Vec<(String, String)>,
}

pub fn tokenize(text: &str) -> Vec<Spanned<'_>> {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b.is_ascii_alphanumeric() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Spanned {
                tok: Tok::Ident(&text[start..i]),
                at: start,
            });
            continue;
        }
        // Multi-byte UTF-8 in identifiers is not used in this workspace;
        // skip stray non-ASCII bytes rather than mis-tokenizing.
        if b & 0x80 != 0 {
            i += 1;
            continue;
        }
        toks.push(Spanned {
            tok: Tok::Punct(b),
            at: i,
        });
        i += 1;
    }
    toks
}

fn ident<'a>(toks: &[Spanned<'a>], i: usize) -> Option<&'a str> {
    match toks.get(i)?.tok {
        Tok::Ident(s) => Some(s),
        Tok::Punct(_) => None,
    }
}

fn punct(toks: &[Spanned], i: usize) -> Option<u8> {
    match toks.get(i)?.tok {
        Tok::Punct(b) => Some(b),
        Tok::Ident(_) => None,
    }
}

/// Index just past the token closing the group opened at `toks[open]`.
fn skip_group(toks: &[Spanned], open: usize, open_b: u8, close_b: u8) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Punct(b) if b == open_b => depth += 1,
            Tok::Punct(b) if b == close_b => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Index just past a balanced `<..>` generics group starting at `toks[open]`
/// (which must be `<`). Tracks only angle brackets; shift operators do not
/// appear inside item headers, which is the only place this is used.
fn skip_angles(toks: &[Spanned], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Punct(b'<') => depth += 1,
            Tok::Punct(b'>') => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            // `->` inside `Fn(..) -> T` bounds: the `>` is part of the
            // arrow, not a closer.
            Tok::Punct(b'-') if punct(toks, i + 1) == Some(b'>') => i += 1,
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// The last path segment of a type expression given as tokens, with
/// generics stripped: `oat_cdnsim::Simulator<'a>` -> `Simulator`.
fn type_leaf(toks: &[Spanned]) -> Option<String> {
    let mut leaf = None;
    let mut i = 0usize;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Ident(s) => {
                leaf = Some(s.to_string());
                i += 1;
            }
            Tok::Punct(b'<') => i = skip_angles(toks, i),
            Tok::Punct(_) => i += 1,
        }
    }
    leaf
}

const KEYWORDS: [&str; 24] = [
    "if", "else", "for", "while", "loop", "match", "return", "break", "continue", "let", "mut",
    "ref", "move", "in", "as", "fn", "impl", "trait", "struct", "enum", "use", "mod", "where",
    "dyn",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parses one file's scrubbed text into its item tree.
pub fn parse_file(text: &str) -> ParsedFile {
    let starts = line_starts(text);
    let toks = tokenize(text);
    let mut out = ParsedFile::default();

    // Stack of open braces; `Some((ty, trait))` marks an impl/trait body.
    let mut ctx: Vec<Option<(String, Option<String>)>> = Vec::new();
    let mut i = 0usize;

    while i < toks.len() {
        match toks[i].tok {
            Tok::Ident("impl") if item_position(&toks, i) => {
                // Header: everything up to the body `{` (or a terminating
                // `;` for `impl Trait for Type;` which cannot occur).
                let mut j = i + 1;
                if punct(&toks, j) == Some(b'<') {
                    j = skip_angles(&toks, j);
                }
                let header_start = j;
                let mut for_at = None;
                while j < toks.len() {
                    match toks[j].tok {
                        Tok::Punct(b'{') => break,
                        Tok::Punct(b'<') => {
                            j = skip_angles(&toks, j);
                            continue;
                        }
                        Tok::Ident("where") => break,
                        Tok::Ident("for") if for_at.is_none() => for_at = Some(j),
                        _ => {}
                    }
                    j += 1;
                }
                let header_end = j;
                // Skip a `where` clause to the body.
                while j < toks.len() && punct(&toks, j) != Some(b'{') {
                    j += 1;
                }
                let (ty, trait_name) = match for_at {
                    Some(f) => (
                        type_leaf(&toks[f + 1..header_end]),
                        type_leaf(&toks[header_start..f]),
                    ),
                    None => (type_leaf(&toks[header_start..header_end]), None),
                };
                if let (Some(ty), Some(tr)) = (&ty, &trait_name) {
                    out.trait_impls.push((tr.clone(), ty.clone()));
                }
                if j < toks.len() {
                    ctx.push(Some((ty.unwrap_or_default(), trait_name)));
                    i = j + 1; // past the `{`
                } else {
                    i = j;
                }
            }
            Tok::Ident("trait") if item_position(&toks, i) => {
                let name = ident(&toks, i + 1).unwrap_or("").to_string();
                let mut j = i + 2;
                while j < toks.len()
                    && punct(&toks, j) != Some(b'{')
                    && punct(&toks, j) != Some(b';')
                {
                    if punct(&toks, j) == Some(b'<') {
                        j = skip_angles(&toks, j);
                    } else {
                        j += 1;
                    }
                }
                if punct(&toks, j) == Some(b'{') {
                    let trait_name = Some(name.clone());
                    ctx.push(Some((name, trait_name)));
                    i = j + 1;
                } else {
                    i = j + 1;
                }
            }
            Tok::Ident("fn") => {
                let (item, next) = parse_fn(text, &toks, i, &starts, ctx.last());
                if let Some(item) = item {
                    out.fns.push(item);
                }
                i = next;
            }
            Tok::Ident("use") if item_position(&toks, i) => {
                let (uses, next) = parse_use(&toks, i);
                out.uses.extend(uses);
                i = next;
            }
            Tok::Ident("static") => {
                if let Some((item, next)) = parse_static(text, &toks, i, &starts) {
                    out.statics.push(item);
                    i = next;
                } else {
                    i += 1;
                }
            }
            Tok::Punct(b'{') => {
                ctx.push(None);
                i += 1;
            }
            Tok::Punct(b'}') => {
                ctx.pop();
                i += 1;
            }
            _ => i += 1,
        }
    }

    out.fns.sort_by_key(|f| f.line);
    out
}

/// True when the token at `i` starts an item rather than appearing inside
/// a type or expression (`-> impl Iterator`, `&dyn Trait`, `use` in a
/// path). Checks the preceding significant token.
fn item_position(toks: &[Spanned], i: usize) -> bool {
    let Some(j) = i.checked_sub(1) else {
        return true; // start of file
    };
    match toks[j].tok {
        // After an item boundary or visibility/safety qualifiers.
        Tok::Punct(b'{') | Tok::Punct(b'}') | Tok::Punct(b';') | Tok::Punct(b']') => true,
        Tok::Ident("pub") | Tok::Ident("unsafe") | Tok::Ident("const") | Tok::Ident("async") => {
            item_position(toks, j)
        }
        Tok::Punct(b')') => {
            // `pub(crate)` visibility: skip the group and keep looking.
            let mut depth = 1isize;
            let mut k = j;
            while k > 0 && depth > 0 {
                k -= 1;
                match toks[k].tok {
                    Tok::Punct(b')') => depth += 1,
                    Tok::Punct(b'(') => depth -= 1,
                    _ => {}
                }
            }
            k > 0 && ident(toks, k - 1) == Some("pub") && item_position(toks, k - 1)
        }
        _ => false,
    }
}

fn parse_fn(
    text: &str,
    toks: &[Spanned],
    at: usize,
    starts: &[usize],
    ctx: Option<&Option<(String, Option<String>)>>,
) -> (Option<FnItem>, usize) {
    let Some(name) = ident(toks, at + 1) else {
        // `fn` in a function-pointer type (`fn(u32) -> u32`); skip it.
        return (None, at + 1);
    };
    let line = line_of(starts, toks[at].at);
    let mut j = at + 2;
    if punct(toks, j) == Some(b'<') {
        j = skip_angles(toks, j);
    }
    if punct(toks, j) != Some(b'(') {
        return (None, at + 1);
    }
    let params_end = skip_group(toks, j, b'(', b')');
    let has_self = toks[j..params_end]
        .iter()
        .any(|t| t.tok == Tok::Ident("self"));
    // Scan to the body `{` or a `;` (trait method declaration). The return
    // type may contain braces only inside `impl Trait` bounds' generics,
    // which `skip_angles` steps over.
    let mut k = params_end;
    while k < toks.len() {
        match toks[k].tok {
            Tok::Punct(b'{') => break,
            Tok::Punct(b';') => {
                return (
                    Some(FnItem {
                        name: name.to_string(),
                        qual: ctx.and_then(|c| c.as_ref()).map(|(t, _)| t.clone()),
                        trait_name: ctx.and_then(|c| c.as_ref()).and_then(|(_, tr)| tr.clone()),
                        has_self,
                        line,
                        body: 0..0,
                        calls: Vec::new(),
                    }),
                    k + 1,
                );
            }
            Tok::Punct(b'<') => {
                k = skip_angles(toks, k);
                continue;
            }
            _ => {}
        }
        k += 1;
    }
    if k >= toks.len() {
        return (None, toks.len());
    }
    let body_end = skip_group(toks, k, b'{', b'}');
    let body_span = toks[k].at + 1..toks.get(body_end - 1).map_or(text.len(), |t| t.at);
    let calls = extract_calls(&toks[k + 1..body_end.saturating_sub(1)], starts);
    (
        Some(FnItem {
            name: name.to_string(),
            qual: ctx.and_then(|c| c.as_ref()).map(|(t, _)| t.clone()),
            trait_name: ctx.and_then(|c| c.as_ref()).and_then(|(_, tr)| tr.clone()),
            has_self,
            line,
            body: body_span,
            calls,
        }),
        body_end,
    )
}

/// Call sites within a body token slice. Nested closures and items are
/// scanned as part of the enclosing function (see module docs).
fn extract_calls(body: &[Spanned], starts: &[usize]) -> Vec<CallSite> {
    let mut calls = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let Tok::Ident(name) = body[i].tok else {
            i += 1;
            continue;
        };
        if is_keyword(name) {
            i += 1;
            continue;
        }
        // Skip nested `fn` declarations' names.
        if i > 0 && ident(body, i - 1) == Some("fn") {
            i += 1;
            continue;
        }
        // Macro invocation `name!(..)` is not a call.
        let mut j = i + 1;
        if punct(body, j) == Some(b'!') {
            i += 1;
            continue;
        }
        // Optional turbofish between name and args.
        if punct(body, j) == Some(b':') && punct(body, j + 1) == Some(b':') {
            if punct(body, j + 2) == Some(b'<') {
                j = skip_angles(body, j + 2);
            } else {
                // Path continues (`a::b`); the leaf will be visited later.
                i += 1;
                continue;
            }
        }
        if punct(body, j) != Some(b'(') {
            i += 1;
            continue;
        }
        // Build the path backwards: `a::b::name(` and detect `.name(`.
        let mut path = vec![name.to_string()];
        let mut k = i;
        while k >= 2 && punct(body, k - 1) == Some(b':') && punct(body, k - 2) == Some(b':') {
            // A `>::name` suffix (`<T as Trait>::name`) stops the walk.
            let Some(seg) = ident(body, k.wrapping_sub(3)) else {
                break;
            };
            if is_keyword(seg) {
                break;
            }
            path.insert(0, seg.to_string());
            k -= 3;
        }
        let is_method = k >= 1 && punct(body, k - 1) == Some(b'.');
        calls.push(CallSite {
            path,
            is_method,
            line: line_of(starts, body[i].at),
        });
        i += 1;
    }
    calls
}

/// Index just past the token closing the group opened at `toks[open]`,
/// scanning forward. Public for the passes' receiver/scope scans.
pub fn skip_group_fwd(toks: &[Spanned], open: usize, open_b: u8, close_b: u8) -> usize {
    skip_group(toks, open, open_b, close_b)
}

/// The canonical receiver of a postfix expression ending just before
/// `end`: for `self.pops[pop_id.raw() as usize].lock()` with `end` at the
/// final `.`, returns `"self.pops"`. Index groups (`[..]`) and call
/// parentheses are dropped; path separators normalize to `.`.
pub fn canonical_receiver(toks: &[Spanned], end: usize) -> Option<String> {
    let mut segs: Vec<&str> = Vec::new();
    let mut i = end;
    loop {
        if i == 0 {
            break;
        }
        i -= 1;
        match toks[i].tok {
            Tok::Punct(b']') => {
                // Skip back over the index group.
                let mut depth = 1isize;
                while i > 0 && depth > 0 {
                    i -= 1;
                    match toks[i].tok {
                        Tok::Punct(b']') => depth += 1,
                        Tok::Punct(b'[') => depth -= 1,
                        _ => {}
                    }
                }
                if depth > 0 {
                    break;
                }
                // `i` is at `[`; continue with the token before it.
                continue;
            }
            Tok::Punct(b')') => {
                // Skip back over call args / a parenthesized expr.
                let mut depth = 1isize;
                while i > 0 && depth > 0 {
                    i -= 1;
                    match toks[i].tok {
                        Tok::Punct(b')') => depth += 1,
                        Tok::Punct(b'(') => depth -= 1,
                        _ => {}
                    }
                }
                if depth > 0 {
                    break;
                }
                continue;
            }
            Tok::Ident(s) => {
                if is_keyword(s) && s != "self" {
                    break;
                }
                segs.push(s);
                // Continue only through `.` or `::` connectors.
                if i >= 1 {
                    match toks[i - 1].tok {
                        Tok::Punct(b'.') => {
                            i -= 1;
                            continue;
                        }
                        Tok::Punct(b':') if i >= 2 && punct(toks, i - 2) == Some(b':') => {
                            i -= 1;
                            continue;
                        }
                        _ => break,
                    }
                }
                break;
            }
            Tok::Punct(b'.') | Tok::Punct(b':') => continue,
            _ => break,
        }
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    Some(segs.join("."))
}

fn parse_use(toks: &[Spanned], at: usize) -> (Vec<UseItem>, usize) {
    // Collect tokens to the terminating `;`.
    let mut j = at + 1;
    let mut prefix: Vec<String> = Vec::new();
    let mut items = Vec::new();
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct(b';') => {
                j += 1;
                break;
            }
            Tok::Punct(b'{') => {
                // Grouped leaves: one entry each; nested groups flattened
                // with their sub-path appended.
                let end = skip_group(toks, j, b'{', b'}');
                let mut sub: Vec<String> = Vec::new();
                for t in &toks[j + 1..end.saturating_sub(1)] {
                    match t.tok {
                        Tok::Ident(s) if s != "self" => sub.push(s.to_string()),
                        Tok::Punct(b',') => {
                            flush_use(&prefix, &mut sub, &mut items);
                        }
                        _ => {}
                    }
                }
                flush_use(&prefix, &mut sub, &mut items);
                j = end;
            }
            Tok::Ident("as") => {
                // Alias: `use a::b as c;` — leaf becomes the alias.
                if let Some(alias) = ident(toks, j + 1) {
                    let mut path = prefix.clone();
                    path.push(alias.to_string());
                    items.push(UseItem {
                        leaf: alias.to_string(),
                        path,
                    });
                    prefix.clear();
                }
                j += 2;
            }
            Tok::Ident(s) => {
                prefix.push(s.to_string());
                j += 1;
            }
            _ => j += 1,
        }
    }
    if let Some(leaf) = prefix.last().cloned() {
        items.push(UseItem { leaf, path: prefix });
    }
    (items, j)
}

fn flush_use(prefix: &[String], sub: &mut Vec<String>, items: &mut Vec<UseItem>) {
    if let Some(leaf) = sub.last().cloned() {
        let mut path = prefix.to_vec();
        path.append(sub);
        items.push(UseItem { leaf, path });
    }
    sub.clear();
}

fn parse_static(
    text: &str,
    toks: &[Spanned],
    at: usize,
    starts: &[usize],
) -> Option<(StaticItem, usize)> {
    let mut j = at + 1;
    let is_mut = ident(toks, j) == Some("mut");
    if is_mut {
        j += 1;
    }
    let name = ident(toks, j)?;
    if punct(toks, j + 1) != Some(b':') {
        return None;
    }
    // Type text runs to the `=` (or `;` for extern statics).
    let ty_start = toks.get(j + 2)?.at;
    let mut k = j + 2;
    while k < toks.len() {
        match toks[k].tok {
            Tok::Punct(b'=') | Tok::Punct(b';') => break,
            Tok::Punct(b'<') => {
                k = skip_angles(toks, k);
                continue;
            }
            _ => {}
        }
        k += 1;
    }
    let ty_end = toks.get(k).map_or(text.len(), |t| t.at);
    let ty: String = text[ty_start..ty_end].split_whitespace().collect();
    Some((
        StaticItem {
            name: name.to_string(),
            is_mut,
            ty,
            line: line_of(starts, toks[at].at),
        },
        k,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&scrub(src).text)
    }

    #[test]
    fn free_fn_and_calls() {
        let p = parse("fn a() { b(); c::d(); x.e(); }\nfn b() {}\n");
        assert_eq!(p.fns.len(), 2);
        let a = &p.fns[0];
        assert_eq!(a.name, "a");
        assert!(a.qual.is_none());
        assert!(!a.has_self);
        let paths: Vec<String> = a.calls.iter().map(|c| c.path.join("::")).collect();
        assert_eq!(paths, vec!["b", "c::d", "e"]);
        assert!(a.calls[2].is_method);
        assert!(!a.calls[1].is_method);
    }

    #[test]
    fn impl_methods_carry_qual_and_trait() {
        let src = "impl Analyzer for SizeAnalyzer {\n    fn observe(&mut self, r: &LogRecord) { self.note(r); }\n}\nimpl SizeAnalyzer {\n    fn note(&mut self, r: &LogRecord) {}\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].qual.as_deref(), Some("SizeAnalyzer"));
        assert_eq!(p.fns[0].trait_name.as_deref(), Some("Analyzer"));
        assert!(p.fns[0].has_self);
        assert_eq!(p.fns[1].qual.as_deref(), Some("SizeAnalyzer"));
        assert!(p.fns[1].trait_name.is_none());
        assert_eq!(
            p.trait_impls,
            vec![("Analyzer".into(), "SizeAnalyzer".into())]
        );
    }

    #[test]
    fn generic_impl_headers_resolve_leaf_types() {
        let p = parse("impl<'a, T: Clone> Iterator for Cursor<'a, T> { fn next(&mut self) -> Option<T> { None } }");
        assert_eq!(p.trait_impls, vec![("Iterator".into(), "Cursor".into())]);
    }

    #[test]
    fn impl_trait_in_return_position_is_not_an_item() {
        let p = parse("fn make() -> impl Iterator<Item = u32> { (0..3).filter(|x| x > 0) }");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "make");
        assert!(p.fns[0].qual.is_none());
    }

    #[test]
    fn trait_default_methods_are_fns() {
        let src = "trait Analyzer {\n    fn observe(&mut self);\n    fn observe_batch(&mut self) { self.observe(); }\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[1].name, "observe_batch");
        assert_eq!(p.fns[1].trait_name.as_deref(), Some("Analyzer"));
        assert_eq!(p.fns[1].calls.len(), 1);
        assert!(p.fns[0].body.is_empty(), "declaration has no body");
    }

    #[test]
    fn statics_mut_and_types() {
        let src = "static mut COUNTER: u64 = 0;\nstatic TABLE: [u8; 4] = [0; 4];\nstatic CELL: RefCell<u32> = RefCell::new(0);\n";
        let p = parse(src);
        assert_eq!(p.statics.len(), 3);
        assert!(p.statics[0].is_mut);
        assert_eq!(p.statics[0].name, "COUNTER");
        assert!(!p.statics[1].is_mut);
        assert_eq!(p.statics[2].ty, "RefCell<u32>");
        assert_eq!(p.statics[2].line, 3);
    }

    #[test]
    fn use_items_map_leaves() {
        let src = "use std::collections::HashMap;\nuse oat_workload::{generate, merge::merge_runs};\nuse a::b as c;\n";
        let p = parse(src);
        let mut pairs: Vec<(String, String)> = p
            .uses
            .iter()
            .map(|u| (u.leaf.clone(), u.path.join("::")))
            .collect();
        pairs.sort();
        assert!(pairs.contains(&("HashMap".into(), "std::collections::HashMap".into())));
        assert!(pairs.contains(&("generate".into(), "oat_workload::generate".into())));
        assert!(pairs.contains(&(
            "merge_runs".into(),
            "oat_workload::merge::merge_runs".into()
        )));
        assert!(pairs.contains(&("c".into(), "a::b::c".into())));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let p = parse("fn a() { format!(\"x\"); if b() { vec![1] } else { c() }; }");
        let paths: Vec<String> = p.fns[0].calls.iter().map(|c| c.path.join("::")).collect();
        assert_eq!(paths, vec!["b", "c"]);
    }

    #[test]
    fn turbofish_calls_resolve() {
        let p = parse("fn a() { parse::<u32>(s); xs.iter().collect::<Vec<_>>(); }");
        let paths: Vec<String> = p.fns[0].calls.iter().map(|c| c.path.join("::")).collect();
        assert!(paths.contains(&"parse".to_string()));
        assert!(paths.contains(&"collect".to_string()));
        assert!(paths.contains(&"iter".to_string()));
    }

    #[test]
    fn nested_fn_calls_attributed_to_outer() {
        let p = parse("fn outer() { fn inner() { tainted(); } inner(); }");
        assert_eq!(p.fns.len(), 1, "nested fns are opaque");
        let paths: Vec<String> = p.fns[0].calls.iter().map(|c| c.path.join("::")).collect();
        assert!(paths.contains(&"tainted".to_string()));
        assert!(paths.contains(&"inner".to_string()));
    }

    #[test]
    fn where_clauses_and_lifetimes_do_not_confuse() {
        let src = "impl<T> Sweep<T> where T: Clone {\n    pub fn run<'a>(&'a self, xs: &[T]) -> usize { helper(xs) }\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].qual.as_deref(), Some("Sweep"));
        assert_eq!(p.fns[0].calls.len(), 1);
    }
}
