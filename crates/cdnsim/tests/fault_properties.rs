//! Property-based tests for the fault-injection layer: backoff shape,
//! plan serialization, and thread-invariant degraded replay.

use oat_cdnsim::faults::{Brownout, FaultPlan, PopOutage, RetryPolicy, Window};
use oat_cdnsim::{SimConfig, Simulator, Sweep};
use oat_httplog::{DegradedServe, LogRecord, ObjectId, Region, Request, RequestKind, UserId};
use proptest::prelude::*;

fn trace(spec: &[(u64, u64, usize, usize)]) -> Vec<Request> {
    spec.iter()
        .enumerate()
        .map(|(t, &(obj, user, region, kind))| {
            let kind = match kind {
                0 | 1 => RequestKind::Full,
                2 => RequestKind::Range {
                    offset: 0,
                    length: 1_000,
                },
                3 => RequestKind::Conditional,
                _ => RequestKind::Beacon,
            };
            Request {
                timestamp: t as u64,
                object: ObjectId::new(obj),
                object_size: 1_000 + obj * 200,
                user: UserId::new(user),
                region: Region::ALL[region % 4],
                kind,
                ..Request::example()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backoff_is_monotone_and_capped(
        base in 1u64..10_000,
        max in 1u64..1_000_000,
        attempts in 1u32..64,
    ) {
        let retry = RetryPolicy {
            max_retries: 8,
            base_backoff_ms: base,
            max_backoff_ms: max,
            jitter_frac: 0.5,
        };
        let mut prev = 0;
        for attempt in 1..=attempts {
            let b = retry.backoff_ms(attempt);
            prop_assert!(b >= prev, "backoff decreased at attempt {attempt}");
            prop_assert!(b <= max, "backoff {b} above cap {max}");
            prev = b;
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded(
        seed in any::<u64>(),
        identity in any::<u64>(),
        attempt in 1u32..20,
        jitter_frac in 0.0f64..=1.0,
    ) {
        let retry = RetryPolicy {
            jitter_frac,
            ..RetryPolicy::default()
        };
        let a = retry.jittered_backoff_ms(seed, identity, attempt);
        let b = retry.jittered_backoff_ms(seed, identity, attempt);
        prop_assert_eq!(a, b, "jitter must be a pure function");
        let base = retry.backoff_ms(attempt);
        prop_assert!(a >= base);
        prop_assert!(a as f64 <= base as f64 * (1.0 + jitter_frac) + 1.0);
    }

    #[test]
    fn sampled_plans_round_trip_through_toml(seed in any::<u64>()) {
        let plan = FaultPlan::sample(seed, 604_800, 8);
        plan.validate().expect("sampled plans validate");
        let parsed = FaultPlan::from_toml_str(&plan.to_toml()).expect("own output parses");
        prop_assert_eq!(parsed, plan);
    }

    #[test]
    fn faulted_replay_is_reproducible_and_matches_serial(
        spec in prop::collection::vec((0u64..20, 0u64..12, 0usize..4, 0usize..5), 1..250),
        seed in any::<u64>(),
    ) {
        let requests = trace(&spec);
        let plan = FaultPlan::sample(seed, requests.len() as u64, 8);
        let config = SimConfig {
            pops_per_region: 2,
            ..SimConfig::default_edge()
        };
        let serial_sim = Simulator::new(&config).with_faults(plan.clone());
        let serial: Vec<LogRecord> = requests
            .iter()
            .cloned()
            .map(|r| serial_sim.serve(r))
            .collect();
        // Parallel replay emits byte-identical records in input order.
        let par_sim = Simulator::new(&config).with_faults(plan.clone());
        let parallel = par_sim.replay(requests.clone());
        prop_assert_eq!(&parallel, &serial);
        prop_assert_eq!(par_sim.stats(), serial_sim.stats());
        // A second run from scratch reproduces the first exactly.
        let again = Simulator::new(&config).with_faults(plan).replay(requests);
        prop_assert_eq!(again, serial);
    }

    #[test]
    fn empty_plan_never_degrades(
        spec in prop::collection::vec((0u64..20, 0u64..12, 0usize..4, 0usize..5), 1..200),
        seed in any::<u64>(),
    ) {
        let requests = trace(&spec);
        let healthy = Simulator::new(&SimConfig::default_edge());
        let expected = healthy.replay(requests.clone());
        let faulted = Simulator::new(&SimConfig::default_edge()).with_faults(FaultPlan::new(seed));
        let records = faulted.replay(requests);
        prop_assert_eq!(&records, &expected);
        for rec in &records {
            prop_assert_eq!(rec.degraded, DegradedServe::None);
            prop_assert_eq!(rec.retries, 0);
        }
        let stats = faulted.stats();
        prop_assert_eq!(stats.shed + stats.stale_hits + stats.degraded_hits, 0);
        prop_assert_eq!(stats.availability().unwrap_or(1.0), 1.0);
    }

    #[test]
    fn availability_is_a_probability(
        spec in prop::collection::vec((0u64..10, 0u64..8, 0usize..4, 0usize..2), 1..200),
        seed in any::<u64>(),
        failure_prob in 0.0f64..=1.0,
    ) {
        let requests = trace(&spec);
        let mut plan = FaultPlan::new(seed);
        plan.brownouts.push(Brownout {
            window: Window::new(0, requests.len() as u64),
            failure_prob,
        });
        plan.outages.push(PopOutage {
            pop: 0,
            window: Window::new(0, requests.len() as u64 / 2),
        });
        let sim = Simulator::new(&SimConfig::default_edge()).with_faults(plan);
        let stats = sim.replay_stats(&requests);
        let availability = stats.availability().expect("trace is non-empty");
        prop_assert!((0.0..=1.0).contains(&availability));
        prop_assert!(stats.shed <= stats.requests);
        prop_assert_eq!(stats.requests, requests.len() as u64);
    }

    #[test]
    fn faulted_sweep_is_thread_invariant(
        spec in prop::collection::vec((0u64..15, 0u64..10, 0usize..4, 0usize..3), 1..150),
        seed in any::<u64>(),
    ) {
        let requests = trace(&spec);
        let plan = FaultPlan::sample(seed, requests.len() as u64, 4);
        let grid: Vec<SimConfig> = (1..=3u64)
            .map(|i| SimConfig::default_edge().with_capacity(i * 1_000_000))
            .collect();
        let serial = Sweep::new(&requests)
            .with_threads(1)
            .with_faults(plan.clone())
            .run(&grid);
        let parallel = Sweep::new(&requests)
            .with_threads(4)
            .with_faults(plan)
            .run(&grid);
        prop_assert_eq!(serial, parallel);
    }
}
