//! Property-based tests for cache policies and the simulator.

use oat_cdnsim::cache::{CacheKey, InfiniteCache, TtlCache};
use oat_cdnsim::{CachePolicy, PolicyKind, SimConfig, Simulator};
use oat_httplog::{ObjectId, Region, Request, RequestKind, UserId};
use proptest::prelude::*;

fn key(i: u64) -> CacheKey {
    CacheKey::whole(ObjectId::new(i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bounded_policies_never_exceed_capacity(
        ops in prop::collection::vec((0u64..50, 1u64..40), 1..400),
        capacity in 50u64..200,
        kind_idx in 0usize..6,
    ) {
        let kind = [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::Fifo, PolicyKind::TwoQ, PolicyKind::Gdsf, PolicyKind::Slru][kind_idx];
        let mut cache = kind.build(capacity);
        for (t, &(obj, size)) in ops.iter().enumerate() {
            cache.request(key(obj), size, t as u64);
            prop_assert!(cache.bytes_used() <= capacity,
                "{kind}: {} bytes > capacity {capacity}", cache.bytes_used());
            prop_assert!(cache.capacity_bytes() == capacity);
        }
    }

    #[test]
    fn hit_implies_previously_requested(
        ops in prop::collection::vec(0u64..30, 1..300),
        kind_idx in 0usize..6,
    ) {
        let kind = [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::Fifo, PolicyKind::TwoQ, PolicyKind::Gdsf, PolicyKind::Slru][kind_idx];
        let mut cache = kind.build(1_000);
        let mut seen = std::collections::HashSet::new();
        for (t, &obj) in ops.iter().enumerate() {
            let hit = cache.request(key(obj), 10, t as u64);
            if hit {
                prop_assert!(seen.contains(&obj), "{kind}: hit on never-seen object");
            }
            seen.insert(obj);
        }
    }

    #[test]
    fn infinite_cache_dominates_bounded(
        ops in prop::collection::vec((0u64..40, 1u64..30), 1..300),
        capacity in 30u64..300,
        kind_idx in 0usize..6,
    ) {
        let kind = [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::Fifo, PolicyKind::TwoQ, PolicyKind::Gdsf, PolicyKind::Slru][kind_idx];
        let mut bounded = kind.build(capacity);
        let mut infinite = InfiniteCache::new();
        let mut bounded_hits = 0u64;
        let mut infinite_hits = 0u64;
        for (t, &(obj, size)) in ops.iter().enumerate() {
            bounded_hits += u64::from(bounded.request(key(obj), size, t as u64));
            infinite_hits += u64::from(infinite.request(key(obj), size, t as u64));
        }
        prop_assert!(infinite_hits >= bounded_hits,
            "{kind}: bounded {bounded_hits} > infinite {infinite_hits}");
    }

    #[test]
    fn ttl_zero_never_repeat_hits(ops in prop::collection::vec(0u64..20, 1..200)) {
        // TTL 0 with strictly increasing time: every entry is stale by the
        // next access.
        let mut cache = TtlCache::new(InfiniteCache::new(), 0);
        for (t, &obj) in ops.iter().enumerate() {
            let hit = cache.request(key(obj), 10, t as u64 + 1);
            prop_assert!(!hit);
        }
    }

    #[test]
    fn simulator_records_are_consistent(
        reqs in prop::collection::vec((0u64..20, 0u64..10, 0usize..4, 0usize..5), 1..200),
    ) {
        let sim = Simulator::new(&SimConfig::default_edge());
        let requests: Vec<Request> = reqs
            .iter()
            .enumerate()
            .map(|(t, &(obj, user, region, kind))| {
                let kind = match kind {
                    0 => RequestKind::Full,
                    1 => RequestKind::Range { offset: 0, length: 1_000 },
                    2 => RequestKind::Conditional,
                    3 => RequestKind::Hotlink,
                    _ => RequestKind::InvalidRange,
                };
                Request {
                    timestamp: t as u64,
                    object: ObjectId::new(obj),
                    user: UserId::new(user),
                    region: Region::ALL[region],
                    kind,
                    ..Request::example()
                }
            })
            .collect();
        let n = requests.len();
        let records = sim.replay(requests.clone());
        prop_assert_eq!(records.len(), n);
        for (req, rec) in requests.iter().zip(&records) {
            prop_assert_eq!(rec.timestamp, req.timestamp);
            prop_assert_eq!(rec.object, req.object);
            match req.kind {
                RequestKind::Full => {
                    prop_assert_eq!(rec.status.code(), 200);
                    prop_assert_eq!(rec.bytes_served, req.object_size);
                }
                RequestKind::Range { length, .. } => {
                    prop_assert_eq!(rec.status.code(), 206);
                    prop_assert_eq!(rec.bytes_served, length);
                }
                RequestKind::Conditional => {
                    prop_assert_eq!(rec.status.code(), 304);
                    prop_assert_eq!(rec.bytes_served, 0);
                }
                RequestKind::Hotlink => prop_assert_eq!(rec.status.code(), 403),
                RequestKind::InvalidRange => prop_assert_eq!(rec.status.code(), 416),
                RequestKind::Beacon => prop_assert_eq!(rec.status.code(), 204),
            }
        }
        let stats = sim.stats();
        prop_assert_eq!(stats.requests, n as u64);
        prop_assert_eq!(
            stats.bytes_served,
            records.iter().map(|r| r.bytes_served).sum::<u64>()
        );
    }
}
