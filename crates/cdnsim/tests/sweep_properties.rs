//! Property-based tests for the sweep engine and the Mattson curve.
//!
//! The load-bearing property: the single-pass multi-capacity LRU curve is
//! *exact* — equal to a brute-force per-capacity cache replay, counter for
//! counter — at every capacity admitting the largest object. Everything
//! the sweep engine answers from the curve is cross-checked against the
//! simulator it replaces.

use oat_cdnsim::{MattsonCurve, PolicyKind, RoutePartition, SimConfig, Simulator, Sweep, Topology};
use oat_httplog::{ObjectId, Region, Request, RequestKind, UserId};
use proptest::prelude::*;

/// Deterministic per-object size, so every key keeps one size across the
/// trace (the Mattson exactness precondition the generator also upholds).
fn size_of(obj: u64) -> u64 {
    500 + (obj % 17) * 100
}

/// Builds a mixed trace: Full and Range bodies (fixed size per key) plus
/// bodyless Conditional/Hotlink noise, spread over users and regions.
fn trace(shape: &[(u64, u64, usize, usize)]) -> Vec<Request> {
    shape
        .iter()
        .enumerate()
        .map(|(t, &(obj, user, region, kind))| {
            let kind = match kind {
                0 | 1 => RequestKind::Full,
                2 => RequestKind::Range {
                    offset: 0,
                    length: size_of(obj),
                },
                3 => RequestKind::Conditional,
                _ => RequestKind::Hotlink,
            };
            Request {
                timestamp: t as u64,
                object: ObjectId::new(obj),
                object_size: size_of(obj),
                user: UserId::new(user),
                region: Region::ALL[region],
                kind,
                ..Request::example()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mattson == brute-force LRU replay at every sampled capacity: the
    /// full `ServeStats` (hits, misses, origin bytes, per-object
    /// counters), the hit ratio, and the byte-hit ratio all agree.
    #[test]
    fn mattson_matches_bruteforce_lru_replay(
        shape in prop::collection::vec((0u64..25, 0u64..12, 0usize..4, 0usize..5), 1..300),
    ) {
        let requests = trace(&shape);
        let partition = RoutePartition::build(&Topology::new(1), &requests);
        let curve = MattsonCurve::build(&requests, &partition);
        prop_assert!(curve.sizes_consistent());
        for offset in [0u64, 250, 900, 2_000, 10_000] {
            let capacity = curve.max_access_bytes() + offset;
            prop_assert!(curve.exact_at(capacity));
            let sim = Simulator::new(&SimConfig::default_edge().with_capacity(capacity));
            sim.replay(requests.clone());
            let replayed = sim.stats();
            prop_assert_eq!(curve.stats_at(capacity), replayed.clone(), "capacity {}", capacity);
            prop_assert_eq!(curve.hit_ratio(capacity), replayed.hit_ratio());
            // byte_hit_ratio and byte_savings compute the same quantity via
            // different float expressions; compare to an ulp-scale bound.
            match (curve.byte_hit_ratio(capacity), replayed.byte_savings()) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-12),
                (None, None) => {}
                (a, b) => prop_assert!(false, "ratio presence mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    /// Sweep results are byte-identical at 1 vs N worker threads.
    #[test]
    fn sweep_identical_at_any_thread_count(
        shape in prop::collection::vec((0u64..25, 0u64..12, 0usize..4, 0usize..5), 1..250),
        caps in prop::collection::vec(400u64..60_000, 1..8),
    ) {
        let requests = trace(&shape);
        let policies = [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::Fifo, PolicyKind::Slru];
        let grid: Vec<SimConfig> = caps
            .iter()
            .enumerate()
            .map(|(i, &cap)| {
                let mut config = SimConfig::default_edge()
                    .with_policy(policies[i % policies.len()])
                    .with_capacity(cap);
                if i % 3 == 2 {
                    config.ttl_secs = Some(50);
                }
                config
            })
            .collect();
        let serial = Sweep::new(&requests).with_threads(1).run(&grid);
        for threads in [2usize, 4, 8] {
            let parallel = Sweep::new(&requests).with_threads(threads).run(&grid);
            prop_assert_eq!(&serial, &parallel, "threads {}", threads);
        }
    }

    /// Every sweep grid point equals an independent simulator run of the
    /// same configuration — Mattson-answered LRU points, replayed points,
    /// and serially-served escalating points alike.
    #[test]
    fn sweep_matches_independent_simulator(
        shape in prop::collection::vec((0u64..25, 0u64..12, 0usize..4, 0usize..5), 1..250),
        cap in 400u64..100_000,
    ) {
        let requests = trace(&shape);
        let grid = vec![
            SimConfig::default_edge().with_capacity(cap),
            SimConfig::default_edge().with_policy(PolicyKind::Fifo).with_capacity(cap),
            SimConfig::default_edge().with_capacity(cap).with_ttl(40),
            SimConfig::default_edge().with_capacity(cap).with_cooperative(),
            SimConfig { pops_per_region: 2, ..SimConfig::default_edge() }
                .with_capacity(cap)
                .with_parent(4 * cap),
        ];
        let results = Sweep::new(&requests).run(&grid);
        for (config, result) in grid.iter().zip(&results) {
            let sim = Simulator::new(config);
            let expected = if config.cooperative || config.parent_capacity_bytes.is_some() {
                // Escalating points are defined by the serial trace-order
                // interleaving — the one the sweep engine uses.
                for req in &requests {
                    sim.serve_stats(req);
                }
                sim.stats()
            } else {
                sim.replay(requests.clone());
                sim.stats()
            };
            prop_assert_eq!(&result.stats, &expected, "config {:?}", config);
        }
    }

    /// The counters-only fast path equals record-producing replay.
    #[test]
    fn replay_stats_equals_replay(
        shape in prop::collection::vec((0u64..25, 0u64..12, 0usize..4, 0usize..5), 1..250),
        cap in 400u64..100_000,
        policy_idx in 0usize..3,
        ttl in prop::option::of(1u64..100),
    ) {
        let mut config = SimConfig::default_edge()
            .with_policy([PolicyKind::Lru, PolicyKind::TwoQ, PolicyKind::Gdsf][policy_idx])
            .with_capacity(cap);
        config.ttl_secs = ttl;
        let requests = trace(&shape);
        let with_records = Simulator::new(&config);
        with_records.replay(requests.clone());
        let counters_only = Simulator::new(&config);
        let stats = counters_only.replay_stats(&requests);
        prop_assert_eq!(&stats, &with_records.stats());
        prop_assert_eq!(&counters_only.stats(), &with_records.stats());
    }
}
