//! Push placement: prefetch popular objects to the edge.
//!
//! The paper's closing implication (§V/§VI): *"content delivery networks
//! can improve performance and reduce network traffic by pushing copies of
//! popular adult objects to locations closer to their end-users."*
//! [`plan_push`] builds the placement from an observation window and
//! [`Simulator::preload`](crate::Simulator::preload) applies it — ablation
//! A3 measures the resulting hit-ratio lift.

use crate::cache::CacheKey;
use oat_httplog::request::CHUNK_BYTES;
use oat_httplog::{Request, RequestKind};
use std::collections::BTreeMap;

/// One planned placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// What to push.
    pub key: CacheKey,
    /// Its size in bytes.
    pub size: u64,
    /// How many requests the observation window saw for it.
    pub observed_requests: u64,
}

/// The cacheable unit a request maps to, with its byte size — `None` for
/// bodyless kinds (conditional, hot-link, invalid-range, beacon).
///
/// This is the same mapping the simulator applies internally, exposed for
/// standalone cache studies (e.g. the tiered-cache ablation).
pub fn cacheable_key(req: &Request) -> Option<(CacheKey, u64)> {
    match req.kind {
        RequestKind::Full => Some((CacheKey::whole(req.object), req.object_size)),
        RequestKind::Range { offset, length } => Some((
            CacheKey::chunk(req.object, (offset / CHUNK_BYTES) as u32),
            length,
        )),
        _ => None,
    }
}

/// Plans a push set from an observation window of requests.
///
/// Counts body-carrying requests per cache key (chunks counted
/// individually, mirroring the CDN's per-chunk caching), ranks by observed
/// popularity, and greedily fills `budget_bytes`.
///
/// Returns placements ordered most-popular-first.
pub fn plan_push(window: &[Request], budget_bytes: u64) -> Vec<Placement> {
    let mut counts: BTreeMap<CacheKey, (u64, u64)> = BTreeMap::new();
    for req in window {
        let (key, size) = match req.kind {
            RequestKind::Full => (CacheKey::whole(req.object), req.object_size),
            RequestKind::Range { offset, length } => (
                CacheKey::chunk(req.object, (offset / CHUNK_BYTES) as u32),
                length,
            ),
            _ => continue,
        };
        let entry = counts.entry(key).or_insert((0, size));
        entry.0 += 1;
    }
    let mut ranked: Vec<Placement> = counts
        .into_iter()
        .map(|(key, (observed_requests, size))| Placement {
            key,
            size,
            observed_requests,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.observed_requests
            .cmp(&a.observed_requests)
            .then_with(|| a.size.cmp(&b.size))
            .then_with(|| a.key.cmp(&b.key))
    });
    let mut used = 0u64;
    ranked
        .into_iter()
        .filter(|p| {
            if used + p.size <= budget_bytes {
                used += p.size;
                true
            } else {
                false
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_httplog::ObjectId;

    fn full(object: u64, size: u64) -> Request {
        Request {
            object: ObjectId::new(object),
            object_size: size,
            kind: RequestKind::Full,
            ..Request::example()
        }
    }

    #[test]
    fn plans_by_popularity_within_budget() {
        let mut window = Vec::new();
        for _ in 0..10 {
            window.push(full(1, 100));
        }
        for _ in 0..5 {
            window.push(full(2, 100));
        }
        window.push(full(3, 100));
        let plan = plan_push(&window, 200);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].key, CacheKey::whole(ObjectId::new(1)));
        assert_eq!(plan[0].observed_requests, 10);
        assert_eq!(plan[1].key, CacheKey::whole(ObjectId::new(2)));
    }

    #[test]
    fn skips_over_budget_items_but_continues() {
        let mut window = Vec::new();
        for _ in 0..10 {
            window.push(full(1, 1_000)); // popular but too big
        }
        for _ in 0..3 {
            window.push(full(2, 50));
        }
        let plan = plan_push(&window, 100);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].key, CacheKey::whole(ObjectId::new(2)));
    }

    #[test]
    fn chunks_counted_separately() {
        let mut window = Vec::new();
        for _ in 0..4 {
            window.push(Request {
                object: ObjectId::new(7),
                object_size: 3 * CHUNK_BYTES,
                kind: RequestKind::Range {
                    offset: 0,
                    length: CHUNK_BYTES,
                },
                ..Request::example()
            });
        }
        window.push(Request {
            object: ObjectId::new(7),
            object_size: 3 * CHUNK_BYTES,
            kind: RequestKind::Range {
                offset: CHUNK_BYTES,
                length: CHUNK_BYTES,
            },
            ..Request::example()
        });
        let plan = plan_push(&window, 10 * CHUNK_BYTES);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].key.chunk, 0);
        assert_eq!(plan[0].observed_requests, 4);
        assert_eq!(plan[1].key.chunk, 1);
    }

    #[test]
    fn cacheable_key_mapping() {
        let full = full(1, 500);
        assert_eq!(
            cacheable_key(&full),
            Some((CacheKey::whole(ObjectId::new(1)), 500))
        );
        let range = Request {
            kind: RequestKind::Range {
                offset: CHUNK_BYTES,
                length: 100,
            },
            ..Request::example()
        };
        let (key, size) = cacheable_key(&range).unwrap();
        assert_eq!(key.chunk, 1);
        assert_eq!(size, 100);
        let cond = Request {
            kind: RequestKind::Conditional,
            ..Request::example()
        };
        assert_eq!(cacheable_key(&cond), None);
    }

    #[test]
    fn ignores_bodyless_kinds_and_empty_window() {
        assert!(plan_push(&[], 1_000).is_empty());
        let window = vec![
            Request {
                kind: RequestKind::Hotlink,
                ..Request::example()
            },
            Request {
                kind: RequestKind::Conditional,
                ..Request::example()
            },
            Request {
                kind: RequestKind::InvalidRange,
                ..Request::example()
            },
        ];
        assert!(plan_push(&window, 1_000_000_000).is_empty());
    }
}
