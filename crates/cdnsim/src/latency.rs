//! User-perceived response-time model.
//!
//! The paper's implications talk about "improving performance"; this model
//! turns cache outcomes into response times so ablations can report
//! latency, not just hit ratio. A response costs one RTT to wherever the
//! bytes came from plus transfer time at that path's bandwidth.

use crate::stats::ServeStats;
use oat_httplog::LogRecord;
use oat_stats::Ecdf;
use serde::{Deserialize, Serialize};

/// Where a response was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeSource {
    /// Local PoP cache hit.
    EdgeHit,
    /// Fetched from the origin (cache miss).
    OriginMiss,
    /// Bodyless response (304/403/416/204) — control-plane only.
    NoBody,
}

/// Latency parameters for one deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Client ↔ edge round trip, milliseconds.
    pub edge_rtt_ms: f64,
    /// Edge ↔ origin round trip, milliseconds.
    pub origin_rtt_ms: f64,
    /// Client download bandwidth from the edge, megabits/s.
    pub edge_mbps: f64,
    /// Edge fetch bandwidth from the origin, megabits/s.
    pub origin_mbps: f64,
}

impl LatencyModel {
    /// A 2015-era broadband deployment: 20 ms to the edge, 100 ms to the
    /// origin, 20 Mbps last-mile, 50 Mbps origin path.
    pub fn broadband() -> Self {
        Self {
            edge_rtt_ms: 20.0,
            origin_rtt_ms: 100.0,
            edge_mbps: 20.0,
            origin_mbps: 50.0,
        }
    }

    /// Response time for `bytes` served from `source`, in milliseconds.
    ///
    /// Bodyless responses cost one edge RTT. A miss pays the origin RTT
    /// and streams through the slower of the two paths.
    pub fn response_time_ms(&self, bytes: u64, source: ServeSource) -> f64 {
        let transfer = |mbps: f64| bytes as f64 * 8.0 / (mbps * 1_000.0);
        match source {
            ServeSource::NoBody => self.edge_rtt_ms,
            ServeSource::EdgeHit => self.edge_rtt_ms + transfer(self.edge_mbps),
            ServeSource::OriginMiss => {
                self.edge_rtt_ms
                    + self.origin_rtt_ms
                    + transfer(self.edge_mbps.min(self.origin_mbps))
            }
        }
    }

    /// The source implied by a finished log record.
    pub fn source_of(record: &LogRecord) -> ServeSource {
        if !record.status.carries_body() {
            ServeSource::NoBody
        } else if record.cache_status.is_hit() {
            ServeSource::EdgeHit
        } else {
            ServeSource::OriginMiss
        }
    }

    /// Response time implied by a finished log record.
    pub fn record_time_ms(&self, record: &LogRecord) -> f64 {
        self.response_time_ms(record.bytes_served, Self::source_of(record))
    }

    /// Summarizes a record stream into a latency distribution.
    pub fn summarize<'a, I>(&self, records: I) -> LatencySummary
    where
        I: IntoIterator<Item = &'a LogRecord>,
    {
        let ecdf = Ecdf::from_samples(records.into_iter().map(|r| self.record_time_ms(r)));
        LatencySummary { ecdf }
    }

    /// Mean response time implied by aggregate serve statistics (body
    /// responses only, using mean object sizes per outcome).
    pub fn mean_from_stats(&self, stats: &ServeStats) -> Option<f64> {
        let body = stats.hits + stats.misses;
        if body == 0 {
            return None;
        }
        let mean_bytes = stats.bytes_served as f64 / body as f64;
        let hit_time = self.response_time_ms(mean_bytes as u64, ServeSource::EdgeHit);
        let miss_time = self.response_time_ms(mean_bytes as u64, ServeSource::OriginMiss);
        let hit_ratio = stats.hits as f64 / body as f64;
        Some(hit_ratio * hit_time + (1.0 - hit_ratio) * miss_time)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::broadband()
    }
}

/// Latency distribution over a record stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// ECDF over per-request response times, milliseconds.
    pub ecdf: Ecdf,
}

impl LatencySummary {
    /// Median response time.
    pub fn median_ms(&self) -> Option<f64> {
        self.ecdf.median()
    }

    /// 95th-percentile response time.
    pub fn p95_ms(&self) -> Option<f64> {
        self.ecdf.quantile(0.95)
    }

    /// Mean response time.
    pub fn mean_ms(&self) -> Option<f64> {
        self.ecdf.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_httplog::{CacheStatus, HttpStatus};

    #[test]
    fn hits_are_faster_than_misses() {
        let m = LatencyModel::broadband();
        for bytes in [0u64, 10_000, 2_000_000] {
            let hit = m.response_time_ms(bytes, ServeSource::EdgeHit);
            let miss = m.response_time_ms(bytes, ServeSource::OriginMiss);
            assert!(miss > hit, "{bytes}: miss {miss} must exceed hit {hit}");
        }
        assert_eq!(m.response_time_ms(123, ServeSource::NoBody), 20.0);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let m = LatencyModel::broadband();
        let small = m.response_time_ms(100_000, ServeSource::EdgeHit);
        let large = m.response_time_ms(10_000_000, ServeSource::EdgeHit);
        assert!(large > small * 10.0);
        // 10 MB at 20 Mbps = 4 s transfer + 20 ms RTT.
        assert!((large - 4_020.0).abs() < 1.0, "got {large}");
    }

    #[test]
    fn record_sources() {
        let mut r = LogRecord::example();
        r.status = HttpStatus::OK;
        r.cache_status = CacheStatus::Hit;
        assert_eq!(LatencyModel::source_of(&r), ServeSource::EdgeHit);
        r.cache_status = CacheStatus::Miss;
        assert_eq!(LatencyModel::source_of(&r), ServeSource::OriginMiss);
        r.status = HttpStatus::NOT_MODIFIED;
        assert_eq!(LatencyModel::source_of(&r), ServeSource::NoBody);
    }

    #[test]
    fn summary_statistics() {
        let m = LatencyModel::broadband();
        let mut records = Vec::new();
        for i in 0..100u64 {
            let mut r = LogRecord::example();
            r.status = HttpStatus::OK;
            r.bytes_served = 10_000;
            r.cache_status = if i % 2 == 0 {
                CacheStatus::Hit
            } else {
                CacheStatus::Miss
            };
            records.push(r);
        }
        let summary = m.summarize(&records);
        let median = summary.median_ms().unwrap();
        let p95 = summary.p95_ms().unwrap();
        assert!(median >= 20.0);
        assert!(p95 >= median);
        assert!(summary.mean_ms().unwrap() > 20.0);
    }

    #[test]
    fn mean_from_stats_tracks_hit_ratio() {
        let m = LatencyModel::broadband();
        let mut good = ServeStats::new();
        let mut bad = ServeStats::new();
        for i in 0..100u64 {
            let obj = oat_httplog::ObjectId::new(1);
            good.record(obj, HttpStatus::OK, i % 10 != 0, 10_000); // 90% hits
            bad.record(obj, HttpStatus::OK, i % 10 == 0, 10_000); // 10% hits
        }
        let fast = m.mean_from_stats(&good).unwrap();
        let slow = m.mean_from_stats(&bad).unwrap();
        assert!(slow > fast);
        assert_eq!(m.mean_from_stats(&ServeStats::new()), None);
    }
}
