//! Single-pass multi-capacity LRU hit curves (Mattson et al., 1970).
//!
//! A capacity sweep normally replays the trace once per capacity. For LRU
//! the stack-inclusion property collapses that to **one** pass: the cache
//! of capacity `C` always holds the top of the recency stack, so a request
//! hits at capacity `C` iff its *byte-weighted reuse distance* — the size
//! of the requested key plus the sizes of the distinct keys touched since
//! its previous access — is at most `C`. Computing every distance with a
//! Fenwick tree over access positions costs `O(n log n)` total, after
//! which the hit/byte-hit ratio at *any* capacity is an `O(log n)` lookup
//! and the full [`ServeStats`] at a capacity is one cheap counting pass —
//! no cache simulation at all.
//!
//! Exactness conditions (checked by [`MattsonCurve::exact_at`], enforced
//! by the [`sweep`](crate::sweep) driver before taking this path):
//!
//! * LRU eviction only — other policies do not satisfy stack inclusion;
//! * no TTL (expiry breaks recency-only state);
//! * no cooperative / parent-tier escalation (hits would depend on sibling
//!   cache contents);
//! * every key keeps one size across the trace (the generator guarantees
//!   this: objects have fixed sizes and chunks are cut deterministically);
//! * the queried capacity admits every object (`capacity ≥` the largest
//!   cacheable access) — below that, LRU's refuse-oversized-objects rule
//!   makes cache contents capacity-dependent in a non-nested way.
//!
//! Anything outside these conditions falls back to the parallel grid
//! replay in [`sweep`](crate::sweep); nothing is approximated.

use crate::cache::CacheKey;
use crate::push::cacheable_key;
use crate::stats::ServeStats;
use crate::sweep::RoutePartition;
use oat_httplog::{HttpStatus, ObjectId, Request, RequestKind};
use std::collections::HashMap;

/// Sentinel reuse distance for a key's first access (a miss at every
/// capacity).
const COLD: u64 = u64::MAX;

/// Fenwick (binary indexed) tree over access positions, holding the byte
/// size of each key's most recent access.
///
/// Values use wrapping arithmetic: every logical prefix sum is a plain sum
/// of sizes (`< 2^64`), so intermediate wrap-around from subtraction
/// cancels out exactly.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `v` at 1-based position `i`.
    fn add(&mut self, mut i: usize, v: u64) {
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(v);
            i += i & i.wrapping_neg();
        }
    }

    /// Subtracts `v` at 1-based position `i`.
    fn sub(&mut self, mut i: usize, v: u64) {
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_sub(v);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `1..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        let mut sum = 0u64;
        while i > 0 {
            sum = sum.wrapping_add(self.tree[i]);
            i &= i - 1;
        }
        sum
    }
}

/// One body-carrying access with its precomputed reuse distance.
#[derive(Debug, Clone, Copy)]
struct Access {
    /// Byte-weighted LRU stack depth at access time ([`COLD`] on first
    /// access).
    depth: u64,
    /// Bytes this access serves (object size, or range length).
    bytes: u64,
    /// Owning object (per-object stats are keyed by object, not chunk).
    object: ObjectId,
}

/// The exact LRU hit curve of one trace at **all** capacities, built in a
/// single pass.
///
/// # Example
///
/// ```
/// use oat_cdnsim::{MattsonCurve, RoutePartition, Topology};
/// use oat_httplog::Request;
///
/// // Two accesses of the same 2 MB video chunk:
/// let requests = vec![Request::example(), Request::example()];
/// let partition = RoutePartition::build(&Topology::default(), &requests);
/// let curve = MattsonCurve::build(&requests, &partition);
/// // The second access hits once the per-PoP cache fits the chunk:
/// assert_eq!(curve.hit_ratio(2_000_000), Some(0.5));
/// assert_eq!(curve.hit_ratio(1_999_999), Some(0.0));
/// ```
#[derive(Debug, Clone)]
pub struct MattsonCurve {
    /// Every body access in per-PoP serve order.
    accesses: Vec<Access>,
    /// Capacity-independent counters: request/status/bytes-served totals.
    base: ServeStats,
    /// Finite reuse distances, ascending.
    sorted_depths: Vec<u64>,
    /// `cum_bytes[i]` = bytes served by the accesses behind
    /// `sorted_depths[..=i]`.
    cum_bytes: Vec<u64>,
    /// Total body-carrying accesses.
    body_requests: u64,
    /// Total bytes of body-carrying accesses.
    body_bytes: u64,
    /// Largest single cacheable access, in bytes.
    max_access_bytes: u64,
    /// Whether every key kept one size across the trace.
    sizes_consistent: bool,
}

impl MattsonCurve {
    /// Computes the curve for `requests` under the PoP routing captured in
    /// `partition` (each PoP runs its own LRU, so distances are computed
    /// per PoP subsequence and pooled).
    ///
    /// Requests must be passed in the same order `partition` was built
    /// from.
    pub fn build(requests: &[Request], partition: &RoutePartition) -> Self {
        let mut accesses = Vec::new();
        let mut base = ServeStats::new();
        let mut max_access_bytes = 0u64;
        let mut sizes_consistent = true;

        for indices in partition.per_pop() {
            // The pop's body accesses, in serve order.
            let mut body: Vec<(CacheKey, u64, ObjectId)> = Vec::new();
            for &i in indices {
                let Some(req) = requests.get(i as usize) else {
                    continue;
                };
                // Capacity-independent counters only — hit/miss/per-object
                // accounting is what `stats_at` derives per capacity.
                base.requests += 1;
                *base.status_counts.entry(status_of(req).code()).or_insert(0) += 1;
                base.bytes_served += body_bytes_of(req);
                if let Some((key, size)) = cacheable_key(req) {
                    body.push((key, size, req.object));
                }
            }
            // Reuse distances via the Fenwick tree: each key's latest
            // position holds its size, so the range sum between two
            // accesses of a key is exactly the bytes of the distinct keys
            // touched in between.
            let mut fen = Fenwick::new(body.len());
            let mut last: HashMap<CacheKey, (usize, u64)> = HashMap::new();
            for (idx, &(key, size, object)) in body.iter().enumerate() {
                let pos = idx + 1;
                let depth = match last.get(&key) {
                    Some(&(prev, prev_size)) => {
                        if prev_size != size {
                            sizes_consistent = false;
                        }
                        let between = fen.prefix(pos - 1).wrapping_sub(fen.prefix(prev));
                        fen.sub(prev, prev_size);
                        between.wrapping_add(size)
                    }
                    None => COLD,
                };
                fen.add(pos, size);
                last.insert(key, (pos, size));
                max_access_bytes = max_access_bytes.max(size);
                accesses.push(Access {
                    depth,
                    bytes: size,
                    object,
                });
            }
        }

        // The curve index: ascending finite distances with cumulative
        // served bytes, so hits/hit-bytes at any capacity are one binary
        // search away.
        let mut finite: Vec<(u64, u64)> = accesses
            .iter()
            .filter(|a| a.depth != COLD)
            .map(|a| (a.depth, a.bytes))
            .collect();
        finite.sort_unstable();
        let mut sorted_depths = Vec::with_capacity(finite.len());
        let mut cum_bytes = Vec::with_capacity(finite.len());
        let mut running = 0u64;
        for (depth, bytes) in finite {
            running += bytes;
            sorted_depths.push(depth);
            cum_bytes.push(running);
        }

        let body_requests = accesses.len() as u64;
        let body_bytes = accesses.iter().map(|a| a.bytes).sum();
        Self {
            accesses,
            base,
            sorted_depths,
            cum_bytes,
            body_requests,
            body_bytes,
            max_access_bytes,
            sizes_consistent,
        }
    }

    /// Whether the curve is an exact model of an LRU cache of
    /// `capacity_bytes` per PoP (see the module docs for the conditions
    /// this checks).
    pub fn exact_at(&self, capacity_bytes: u64) -> bool {
        self.sizes_consistent && capacity_bytes >= self.max_access_bytes
    }

    /// Cache hits an LRU of `capacity_bytes` per PoP would record.
    pub fn hits_at(&self, capacity_bytes: u64) -> u64 {
        self.sorted_depths.partition_point(|&d| d <= capacity_bytes) as u64
    }

    /// Bytes those hits would serve from cache.
    pub fn hit_bytes_at(&self, capacity_bytes: u64) -> u64 {
        let n = self.sorted_depths.partition_point(|&d| d <= capacity_bytes);
        if n == 0 {
            0
        } else {
            self.cum_bytes[n - 1]
        }
    }

    /// Hit ratio over body-carrying requests (`None` when the trace has
    /// none) — [`ServeStats::hit_ratio`] of the modelled replay.
    pub fn hit_ratio(&self, capacity_bytes: u64) -> Option<f64> {
        (self.body_requests > 0)
            .then(|| self.hits_at(capacity_bytes) as f64 / self.body_requests as f64)
    }

    /// Fraction of body bytes served from cache (`None` when no body
    /// bytes) — [`ServeStats::byte_savings`] of the modelled replay.
    pub fn byte_hit_ratio(&self, capacity_bytes: u64) -> Option<f64> {
        (self.body_bytes > 0)
            .then(|| self.hit_bytes_at(capacity_bytes) as f64 / self.body_bytes as f64)
    }

    /// Body-carrying accesses in the trace.
    pub fn body_requests(&self) -> u64 {
        self.body_requests
    }

    /// Largest single cacheable access, in bytes — the smallest capacity
    /// at which the curve is exact.
    pub fn max_access_bytes(&self) -> u64 {
        self.max_access_bytes
    }

    /// Whether every key kept one size across the trace (required for
    /// exactness).
    pub fn sizes_consistent(&self) -> bool {
        self.sizes_consistent
    }

    /// The full [`ServeStats`] an LRU replay at `capacity_bytes` per PoP
    /// would produce — per-object counters included — in one counting
    /// pass, no cache simulation.
    pub fn stats_at(&self, capacity_bytes: u64) -> ServeStats {
        let mut stats = self.base.clone();
        for access in &self.accesses {
            let hit = access.depth != COLD && access.depth <= capacity_bytes;
            if hit {
                stats.hits += 1;
            } else {
                stats.misses += 1;
                stats.origin_bytes += access.bytes;
            }
            let entry = stats.per_object.entry(access.object).or_insert((0, 0));
            entry.0 += u64::from(hit);
            entry.1 += 1;
        }
        stats
    }
}

/// The response status the simulator assigns to a request kind.
fn status_of(req: &Request) -> HttpStatus {
    match req.kind {
        RequestKind::Full => HttpStatus::OK,
        RequestKind::Range { .. } => HttpStatus::PARTIAL_CONTENT,
        RequestKind::Conditional => HttpStatus::NOT_MODIFIED,
        RequestKind::Hotlink => HttpStatus::FORBIDDEN,
        RequestKind::Beacon => HttpStatus::NO_CONTENT,
        RequestKind::InvalidRange => HttpStatus::RANGE_NOT_SATISFIABLE,
    }
}

/// Bytes a request serves (0 for bodyless kinds).
fn body_bytes_of(req: &Request) -> u64 {
    match req.kind {
        RequestKind::Full => req.object_size,
        RequestKind::Range { length, .. } => length,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use oat_httplog::{Region, UserId};

    fn request(object: u64, size: u64, user: u64, ts: u64) -> Request {
        Request {
            timestamp: ts,
            object: ObjectId::new(object),
            object_size: size,
            user: UserId::new(user),
            region: Region::Europe,
            kind: RequestKind::Full,
            ..Request::example()
        }
    }

    fn curve_of(requests: &[Request]) -> MattsonCurve {
        let partition = RoutePartition::build(&Topology::default(), requests);
        MattsonCurve::build(requests, &partition)
    }

    #[test]
    fn empty_trace() {
        let curve = curve_of(&[]);
        assert_eq!(curve.body_requests(), 0);
        assert_eq!(curve.hit_ratio(1_000), None);
        assert_eq!(curve.byte_hit_ratio(1_000), None);
        assert_eq!(curve.hits_at(u64::MAX - 1), 0);
        assert!(curve.exact_at(0));
        let stats = curve.stats_at(1_000);
        assert_eq!(stats, ServeStats::new());
    }

    #[test]
    fn reuse_distances_drive_hits() {
        // Same user/region → one PoP. Access pattern: a b a.
        // Second `a` has distance size(a) + size(b) = 30.
        let requests = vec![
            request(1, 10, 1, 0),
            request(2, 20, 1, 1),
            request(1, 10, 1, 2),
        ];
        let curve = curve_of(&requests);
        assert_eq!(curve.body_requests(), 3);
        assert_eq!(curve.hits_at(29), 0);
        assert_eq!(curve.hits_at(30), 1);
        assert_eq!(curve.hit_bytes_at(30), 10);
        assert_eq!(curve.max_access_bytes(), 20);
        assert!(curve.sizes_consistent());
    }

    #[test]
    fn repeated_interleavers_count_once() {
        // a b b b a: distance of the final `a` counts b once.
        let requests = vec![
            request(1, 10, 1, 0),
            request(2, 20, 1, 1),
            request(2, 20, 1, 2),
            request(2, 20, 1, 3),
            request(1, 10, 1, 4),
        ];
        let curve = curve_of(&requests);
        // Final `a` needs 30 bytes; middle `b`s need 20.
        assert_eq!(curve.hits_at(19), 0);
        assert_eq!(curve.hits_at(20), 2);
        assert_eq!(curve.hits_at(30), 3);
    }

    #[test]
    fn stats_at_matches_hand_count() {
        let requests = vec![
            request(1, 10, 1, 0),
            request(2, 20, 1, 1),
            request(1, 10, 1, 2),
            Request {
                kind: RequestKind::Conditional,
                ..request(1, 10, 1, 3)
            },
        ];
        let curve = curve_of(&requests);
        let stats = curve.stats_at(30);
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.bytes_served, 40);
        assert_eq!(stats.origin_bytes, 30);
        assert_eq!(stats.status_count(HttpStatus::NOT_MODIFIED), 1);
        assert_eq!(stats.per_object[&ObjectId::new(1)], (1, 2));
        assert_eq!(stats.per_object[&ObjectId::new(2)], (0, 1));
    }

    #[test]
    fn per_pop_isolation() {
        // Same object from two regions → two PoPs → both accesses cold.
        let mut eu = request(1, 10, 1, 0);
        eu.region = Region::Europe;
        let mut asia = request(1, 10, 2, 1);
        asia.region = Region::Asia;
        let curve = curve_of(&[eu, asia]);
        assert_eq!(curve.hits_at(u64::MAX - 1), 0);
    }

    #[test]
    fn inconsistent_sizes_detected() {
        let requests = vec![request(1, 10, 1, 0), request(1, 11, 1, 1)];
        let curve = curve_of(&requests);
        assert!(!curve.sizes_consistent());
        assert!(!curve.exact_at(1_000_000));
    }

    #[test]
    fn curve_is_monotone_in_capacity() {
        let requests: Vec<Request> = (0..200)
            .map(|i| request(i % 13, 5 + (i % 7), i % 3, i))
            .collect();
        let curve = curve_of(&requests);
        let mut prev_hits = 0;
        for cap in (0..200).step_by(7) {
            let hits = curve.hits_at(cap);
            assert!(hits >= prev_hits, "hit curve must be non-decreasing");
            prev_hits = hits;
        }
    }
}
