//! Serving statistics: hit ratios, byte volumes, response-code counts.

use oat_httplog::{HttpStatus, ObjectId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters accumulated while serving requests (per PoP or aggregated).
///
/// Both maps are `BTreeMap` so serialized stats (and anything iterating
/// them) are byte-identical across runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Total requests served (all response codes).
    pub requests: u64,
    /// Cache hits among body-carrying (200/206) requests.
    pub hits: u64,
    /// Cache misses among body-carrying requests.
    pub misses: u64,
    /// Bytes sent to clients.
    pub bytes_served: u64,
    /// Bytes fetched from the origin (miss traffic).
    pub origin_bytes: u64,
    /// Requests per HTTP status code.
    pub status_counts: BTreeMap<u16, u64>,
    /// Per-object (hits, body requests) — feeds the paper's Figure 15
    /// per-object hit-ratio distributions.
    pub per_object: BTreeMap<ObjectId, (u64, u64)>,
}

impl ServeStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request.
    pub fn record(&mut self, object: ObjectId, status: HttpStatus, hit: bool, bytes: u64) {
        self.requests += 1;
        *self.status_counts.entry(status.code()).or_insert(0) += 1;
        self.bytes_served += bytes;
        if status.carries_body() {
            if hit {
                self.hits += 1;
            } else {
                self.misses += 1;
                self.origin_bytes += bytes;
            }
            let entry = self.per_object.entry(object).or_insert((0, 0));
            entry.0 += u64::from(hit);
            entry.1 += 1;
        }
    }

    /// Overall cache hit ratio over body-carrying requests
    /// (`None` before any such request).
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Per-object `(object, hit_ratio, body_requests)` triples.
    pub fn object_hit_ratios(&self) -> Vec<(ObjectId, f64, u64)> {
        let mut v: Vec<_> = self
            .per_object
            .iter()
            .filter(|(_, &(_, total))| total > 0)
            .map(|(&id, &(hits, total))| (id, hits as f64 / total as f64, total))
            .collect();
        v.sort_by_key(|&(id, _, _)| id);
        v
    }

    /// Count for one status code.
    pub fn status_count(&self, status: HttpStatus) -> u64 {
        self.status_counts.get(&status.code()).copied().unwrap_or(0)
    }

    /// Fraction of origin traffic avoided thanks to the cache
    /// (`None` before any body request).
    pub fn byte_savings(&self) -> Option<f64> {
        if self.bytes_served == 0 {
            return None;
        }
        Some(1.0 - self.origin_bytes as f64 / self.bytes_served as f64)
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &ServeStats) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.misses += other.misses;
        self.bytes_served += other.bytes_served;
        self.origin_bytes += other.origin_bytes;
        for (&code, &n) in &other.status_counts {
            *self.status_counts.entry(code).or_insert(0) += n;
        }
        for (&obj, &(h, t)) in &other.per_object {
            let entry = self.per_object.entry(obj).or_insert((0, 0));
            entry.0 += h;
            entry.1 += t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u64) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn empty_stats() {
        let s = ServeStats::new();
        assert_eq!(s.hit_ratio(), None);
        assert_eq!(s.byte_savings(), None);
        assert!(s.object_hit_ratios().is_empty());
        assert_eq!(s.status_count(HttpStatus::OK), 0);
    }

    #[test]
    fn body_vs_bodyless_accounting() {
        let mut s = ServeStats::new();
        s.record(obj(1), HttpStatus::OK, false, 100);
        s.record(obj(1), HttpStatus::OK, true, 100);
        s.record(obj(1), HttpStatus::NOT_MODIFIED, false, 0);
        s.record(obj(2), HttpStatus::FORBIDDEN, false, 0);
        assert_eq!(s.requests, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hit_ratio(), Some(0.5));
        assert_eq!(s.status_count(HttpStatus::NOT_MODIFIED), 1);
        assert_eq!(s.status_count(HttpStatus::FORBIDDEN), 1);
        // 304/403 don't contribute to per-object ratios.
        let ratios = s.object_hit_ratios();
        assert_eq!(ratios.len(), 1);
        assert_eq!(ratios[0].0, obj(1));
        assert_eq!(ratios[0].1, 0.5);
        assert_eq!(ratios[0].2, 2);
    }

    #[test]
    fn byte_savings() {
        let mut s = ServeStats::new();
        s.record(obj(1), HttpStatus::OK, false, 100); // origin
        s.record(obj(1), HttpStatus::OK, true, 100); // cache
        s.record(obj(1), HttpStatus::OK, true, 100); // cache
        assert_eq!(s.bytes_served, 300);
        assert_eq!(s.origin_bytes, 100);
        assert!((s.byte_savings().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = ServeStats::new();
        a.record(obj(1), HttpStatus::OK, true, 10);
        let mut b = ServeStats::new();
        b.record(obj(1), HttpStatus::OK, false, 10);
        b.record(obj(2), HttpStatus::PARTIAL_CONTENT, true, 5);
        a.merge(&b);
        assert_eq!(a.requests, 3);
        assert_eq!(a.hits, 2);
        assert_eq!(a.misses, 1);
        assert_eq!(a.per_object[&obj(1)], (1, 2));
        assert_eq!(a.per_object[&obj(2)], (1, 1));
        assert_eq!(a.status_count(HttpStatus::OK), 2);
    }
}
