//! Serving statistics: hit ratios, byte volumes, response-code counts.

use oat_httplog::{DegradedServe, HttpStatus, ObjectId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters accumulated while serving requests (per PoP or aggregated).
///
/// Both maps are `BTreeMap` so serialized stats (and anything iterating
/// them) are byte-identical across runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Total requests served (all response codes).
    pub requests: u64,
    /// Cache hits among body-carrying (200/206) requests.
    pub hits: u64,
    /// Cache misses among body-carrying requests.
    pub misses: u64,
    /// Bytes sent to clients.
    pub bytes_served: u64,
    /// Bytes fetched from the origin (miss traffic).
    pub origin_bytes: u64,
    /// Requests per HTTP status code.
    pub status_counts: BTreeMap<u16, u64>,
    /// Per-object (hits, body requests) — feeds the paper's Figure 15
    /// per-object hit-ratio distributions.
    pub per_object: BTreeMap<ObjectId, (u64, u64)>,
    /// Requests served at a sibling PoP because the routed PoP was down.
    #[serde(default)]
    pub degraded_hits: u64,
    /// Requests served stale past TTL during an origin brownout.
    #[serde(default)]
    pub stale_hits: u64,
    /// Requests load-shed with `503` (origin unreachable with no cached
    /// copy, region dark, or capacity pressure).
    #[serde(default)]
    pub shed: u64,
    /// Origin-fetch retries spent beyond first attempts.
    #[serde(default)]
    pub retries: u64,
    /// Bytes served degraded (failover or stale).
    #[serde(default)]
    pub degraded_bytes: u64,
    /// Requests delivered inside a link-latency inflation window.
    #[serde(default)]
    pub inflated_requests: u64,
}

impl ServeStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request.
    pub fn record(&mut self, object: ObjectId, status: HttpStatus, hit: bool, bytes: u64) {
        self.requests += 1;
        *self.status_counts.entry(status.code()).or_insert(0) += 1;
        self.bytes_served += bytes;
        if status.carries_body() {
            if hit {
                self.hits += 1;
            } else {
                self.misses += 1;
                self.origin_bytes += bytes;
            }
            let entry = self.per_object.entry(object).or_insert((0, 0));
            entry.0 += u64::from(hit);
            entry.1 += 1;
        }
    }

    /// Records the degradation outcome of one request, after
    /// [`record`](Self::record) has counted its response. `bytes` is what
    /// the request actually served (0 for a shed `503`).
    pub fn note_degraded(&mut self, degraded: DegradedServe, retries: u8, bytes: u64) {
        self.retries += u64::from(retries);
        match degraded {
            DegradedServe::None => {}
            DegradedServe::Failover => {
                self.degraded_hits += 1;
                self.degraded_bytes += bytes;
            }
            DegradedServe::Stale => {
                self.stale_hits += 1;
                self.degraded_bytes += bytes;
            }
            DegradedServe::Shed => self.shed += 1,
        }
    }

    /// Counts one request delivered inside a latency-inflation window.
    pub fn note_inflated(&mut self) {
        self.inflated_requests += 1;
    }

    /// Fraction of requests answered with something other than a shed
    /// `503` (`None` before any request). Degraded serves count as
    /// available — that is the point of graceful degradation.
    pub fn availability(&self) -> Option<f64> {
        (self.requests > 0).then(|| 1.0 - self.shed as f64 / self.requests as f64)
    }

    /// Mean origin-fetch attempts per request relative to the retry-free
    /// baseline: `1 + retries / requests` (`None` before any request). A
    /// value of 1.0 means no retry amplification.
    pub fn retry_amplification(&self) -> Option<f64> {
        (self.requests > 0).then(|| 1.0 + self.retries as f64 / self.requests as f64)
    }

    /// Fraction of served bytes delivered degraded — via failover or
    /// stale-while-revalidate (`None` before any byte is served).
    pub fn degraded_byte_hit_rate(&self) -> Option<f64> {
        (self.bytes_served > 0).then(|| self.degraded_bytes as f64 / self.bytes_served as f64)
    }

    /// Overall cache hit ratio over body-carrying requests
    /// (`None` before any such request).
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Per-object `(object, hit_ratio, body_requests)` triples.
    pub fn object_hit_ratios(&self) -> Vec<(ObjectId, f64, u64)> {
        let mut v: Vec<_> = self
            .per_object
            .iter()
            .filter(|(_, &(_, total))| total > 0)
            .map(|(&id, &(hits, total))| (id, hits as f64 / total as f64, total))
            .collect();
        v.sort_by_key(|&(id, _, _)| id);
        v
    }

    /// Count for one status code.
    pub fn status_count(&self, status: HttpStatus) -> u64 {
        self.status_counts.get(&status.code()).copied().unwrap_or(0)
    }

    /// Fraction of origin traffic avoided thanks to the cache
    /// (`None` before any body request).
    pub fn byte_savings(&self) -> Option<f64> {
        if self.bytes_served == 0 {
            return None;
        }
        Some(1.0 - self.origin_bytes as f64 / self.bytes_served as f64)
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &ServeStats) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.misses += other.misses;
        self.bytes_served += other.bytes_served;
        self.origin_bytes += other.origin_bytes;
        for (&code, &n) in &other.status_counts {
            *self.status_counts.entry(code).or_insert(0) += n;
        }
        for (&obj, &(h, t)) in &other.per_object {
            let entry = self.per_object.entry(obj).or_insert((0, 0));
            entry.0 += h;
            entry.1 += t;
        }
        self.degraded_hits += other.degraded_hits;
        self.stale_hits += other.stale_hits;
        self.shed += other.shed;
        self.retries += other.retries;
        self.degraded_bytes += other.degraded_bytes;
        self.inflated_requests += other.inflated_requests;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u64) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn empty_stats() {
        let s = ServeStats::new();
        assert_eq!(s.hit_ratio(), None);
        assert_eq!(s.byte_savings(), None);
        assert!(s.object_hit_ratios().is_empty());
        assert_eq!(s.status_count(HttpStatus::OK), 0);
    }

    #[test]
    fn body_vs_bodyless_accounting() {
        let mut s = ServeStats::new();
        s.record(obj(1), HttpStatus::OK, false, 100);
        s.record(obj(1), HttpStatus::OK, true, 100);
        s.record(obj(1), HttpStatus::NOT_MODIFIED, false, 0);
        s.record(obj(2), HttpStatus::FORBIDDEN, false, 0);
        assert_eq!(s.requests, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hit_ratio(), Some(0.5));
        assert_eq!(s.status_count(HttpStatus::NOT_MODIFIED), 1);
        assert_eq!(s.status_count(HttpStatus::FORBIDDEN), 1);
        // 304/403 don't contribute to per-object ratios.
        let ratios = s.object_hit_ratios();
        assert_eq!(ratios.len(), 1);
        assert_eq!(ratios[0].0, obj(1));
        assert_eq!(ratios[0].1, 0.5);
        assert_eq!(ratios[0].2, 2);
    }

    #[test]
    fn byte_savings() {
        let mut s = ServeStats::new();
        s.record(obj(1), HttpStatus::OK, false, 100); // origin
        s.record(obj(1), HttpStatus::OK, true, 100); // cache
        s.record(obj(1), HttpStatus::OK, true, 100); // cache
        assert_eq!(s.bytes_served, 300);
        assert_eq!(s.origin_bytes, 100);
        assert!((s.byte_savings().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degradation_accounting() {
        let mut s = ServeStats::new();
        assert_eq!(s.availability(), None);
        assert_eq!(s.retry_amplification(), None);
        assert_eq!(s.degraded_byte_hit_rate(), None);
        // Healthy hit.
        s.record(obj(1), HttpStatus::OK, true, 100);
        s.note_degraded(DegradedServe::None, 0, 100);
        // Stale serve with 2 retries burnt.
        s.record(obj(1), HttpStatus::OK, true, 100);
        s.note_degraded(DegradedServe::Stale, 2, 100);
        // Failover serve.
        s.record(obj(2), HttpStatus::OK, false, 50);
        s.note_degraded(DegradedServe::Failover, 0, 50);
        // Shed 503 after a full retry budget.
        s.record(obj(3), HttpStatus::SERVICE_UNAVAILABLE, false, 0);
        s.note_degraded(DegradedServe::Shed, 3, 0);
        s.note_inflated();

        assert_eq!(s.requests, 4);
        assert_eq!(s.stale_hits, 1);
        assert_eq!(s.degraded_hits, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.retries, 5);
        assert_eq!(s.degraded_bytes, 150);
        assert_eq!(s.inflated_requests, 1);
        assert_eq!(s.availability(), Some(0.75));
        assert_eq!(s.retry_amplification(), Some(1.0 + 5.0 / 4.0));
        assert_eq!(s.degraded_byte_hit_rate(), Some(150.0 / 250.0));
        // The shed 503 is bodyless: no per-object or hit/miss pollution.
        assert!(!s.per_object.contains_key(&obj(3)));
        assert_eq!(s.status_count(HttpStatus::SERVICE_UNAVAILABLE), 1);
    }

    #[test]
    fn merge_combines_degradation_counters() {
        let mut a = ServeStats::new();
        a.record(obj(1), HttpStatus::OK, true, 10);
        a.note_degraded(DegradedServe::Stale, 1, 10);
        let mut b = ServeStats::new();
        b.record(obj(2), HttpStatus::SERVICE_UNAVAILABLE, false, 0);
        b.note_degraded(DegradedServe::Shed, 3, 0);
        b.note_inflated();
        a.merge(&b);
        assert_eq!(a.stale_hits, 1);
        assert_eq!(a.shed, 1);
        assert_eq!(a.retries, 4);
        assert_eq!(a.degraded_bytes, 10);
        assert_eq!(a.inflated_requests, 1);
        assert_eq!(a.availability(), Some(0.5));
    }

    #[test]
    fn merge_combines() {
        let mut a = ServeStats::new();
        a.record(obj(1), HttpStatus::OK, true, 10);
        let mut b = ServeStats::new();
        b.record(obj(1), HttpStatus::OK, false, 10);
        b.record(obj(2), HttpStatus::PARTIAL_CONTENT, true, 5);
        a.merge(&b);
        assert_eq!(a.requests, 3);
        assert_eq!(a.hits, 2);
        assert_eq!(a.misses, 1);
        assert_eq!(a.per_object[&obj(1)], (1, 2));
        assert_eq!(a.per_object[&obj(2)], (1, 1));
        assert_eq!(a.status_count(HttpStatus::OK), 2);
    }
}
