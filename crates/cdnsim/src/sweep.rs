//! Single-pass multi-configuration cache sweeps.
//!
//! The paper's §V cache implications (Fig 15/16 and the A1/A5/A7/A8
//! ablations) are grids over cache configurations — policy × capacity ×
//! TTL × topology. Evaluating a grid point used to mean constructing a
//! fresh [`Simulator`], cloning the full request vector, and replaying the
//! whole trace; ablation cost grew linearly with grid size. [`Sweep`]
//! evaluates an entire grid in (near) one pass over the trace instead:
//!
//! 1. the PoP routing partition is computed **once** per distinct topology
//!    ([`RoutePartition`]) and the trace is shared by reference across all
//!    grid points — no per-configuration request clone;
//! 2. pure-LRU capacity points collapse onto an exact
//!    [`MattsonCurve`](crate::MattsonCurve): one `O(n log n)` stack pass
//!    answers *every* capacity, replacing K independent replays;
//! 3. the remaining points replay counters-only (no `LogRecord`
//!    materialization) on a crossbeam worker pool, with results collected
//!    in grid order.
//!
//! Results are byte-identical at any thread count: every grid point is
//! evaluated independently and deterministically. Configurations with
//! miss escalation (cooperative siblings, parent tier) are served
//! serially in trace order inside their grid task — unlike
//! [`Simulator::replay`], whose cross-PoP `try_lock` probes can race —
//! so even A7/A8-style points are reproducible.
//!
//! [`Sweep::with_faults`] evaluates the whole grid degraded under one
//! [`FaultPlan`], so a healthy grid and its degraded twin come from the
//! same trace and can be compared point for point.

use crate::cache::PolicyKind;
use crate::faults::FaultPlan;
use crate::mattson::MattsonCurve;
use crate::simulator::{build_policy, serve_outcome, SimConfig, Simulator};
use crate::stats::ServeStats;
use crate::topology::Topology;
use oat_httplog::{ColumnarDirReader, HttplogError, Request, ShardFilter};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The per-PoP routing partition of one trace: for each PoP, the indices
/// of the requests it serves, in trace order.
///
/// Routing is a pure function of `(pops_per_region, region, user)`, so one
/// partition is shared by every grid point with the same topology.
#[derive(Debug, Clone)]
pub struct RoutePartition {
    pops_per_region: usize,
    per_pop: Vec<Vec<u32>>,
}

impl RoutePartition {
    /// Routes every request once, pre-sizing each PoP's index list with a
    /// counting pass.
    pub fn build(topology: &Topology, requests: &[Request]) -> Self {
        assert!(
            requests.len() <= u32::MAX as usize,
            "RoutePartition indexes requests with u32"
        );
        let mut counts = vec![0usize; topology.pop_count()];
        for req in requests {
            counts[topology.route(req.region, req.user).raw() as usize] += 1;
        }
        let mut per_pop: Vec<Vec<u32>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (i, req) in requests.iter().enumerate() {
            per_pop[topology.route(req.region, req.user).raw() as usize].push(i as u32);
        }
        Self {
            pops_per_region: topology.pops_per_region(),
            per_pop,
        }
    }

    /// Per-PoP request indices, in PoP order.
    pub fn per_pop(&self) -> &[Vec<u32>] {
        &self.per_pop
    }

    /// The `pops_per_region` this partition was routed for.
    pub fn pops_per_region(&self) -> usize {
        self.pops_per_region
    }
}

/// How a grid point was evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepEngine {
    /// Answered from the single-pass LRU stack curve (exact, no replay).
    Mattson,
    /// Counters-only trace replay.
    Replay,
}

impl std::fmt::Display for SweepEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SweepEngine::Mattson => "mattson",
            SweepEngine::Replay => "replay",
        })
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The configuration this point evaluated.
    pub config: SimConfig,
    /// Aggregated serving statistics across all PoPs.
    pub stats: ServeStats,
    /// How the point was evaluated.
    pub engine: SweepEngine,
}

/// A configuration-grid evaluator over one shared trace.
///
/// # Example
///
/// ```
/// use oat_cdnsim::{SimConfig, Sweep};
/// use oat_httplog::Request;
///
/// let requests = vec![Request::example(); 4];
/// let grid: Vec<SimConfig> = [1_000_000u64, 4_000_000]
///     .iter()
///     .map(|&cap| SimConfig::default_edge().with_capacity(cap))
///     .collect();
/// let results = Sweep::new(&requests).run(&grid);
/// assert_eq!(results.len(), 2);
/// // Larger caches never hit less:
/// assert!(results[1].stats.hits >= results[0].stats.hits);
/// ```
#[derive(Debug, Clone)]
pub struct Sweep<'a> {
    requests: &'a [Request],
    threads: usize,
    faults: Option<FaultPlan>,
}

impl<'a> Sweep<'a> {
    /// Creates a sweep over `requests` (time-sorted, as emitted by the
    /// workload generator) using all cores.
    pub fn new(requests: &'a [Request]) -> Self {
        Self {
            requests,
            threads: 0,
            faults: None,
        }
    }

    /// Caps the worker pool (`0` = all cores). Throughput-only: results
    /// are identical at any setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a fault schedule: every grid point is evaluated degraded
    /// under the same plan, so healthy-vs-degraded grids can be compared
    /// point for point. Fault handling bypasses the Mattson shortcut
    /// (degraded serving is not a pure LRU stack process), so every point
    /// replays.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Evaluates every configuration in `configs`, returning results in
    /// the same order.
    pub fn run(&self, configs: &[SimConfig]) -> Vec<SweepResult> {
        // One routing partition per distinct topology in the grid.
        let mut partitions: BTreeMap<usize, RoutePartition> = BTreeMap::new();
        for config in configs {
            let ppr = config.pops_per_region.max(1);
            partitions
                .entry(ppr)
                .or_insert_with(|| RoutePartition::build(&Topology::new(ppr), self.requests));
        }
        // One Mattson curve per topology that has eligible LRU points; the
        // curve replaces every capacity replay it covers. Faulted sweeps
        // never build curves — every point replays degraded.
        let mut curves: BTreeMap<usize, MattsonCurve> = BTreeMap::new();
        for config in configs
            .iter()
            .filter(|c| self.faults.is_none() && mattson_eligible(c))
        {
            let ppr = config.pops_per_region.max(1);
            if let std::collections::btree_map::Entry::Vacant(slot) = curves.entry(ppr) {
                if let Some(partition) = partitions.get(&ppr) {
                    slot.insert(MattsonCurve::build(self.requests, partition));
                }
            }
        }

        let workers = resolve_threads(self.threads, configs.len());
        let next = AtomicUsize::new(0);
        let scope_result = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (next, partitions, curves) = (&next, &partitions, &curves);
                    scope.spawn(move |_| {
                        let mut local: Vec<(usize, SweepResult)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(config) = configs.get(i) else {
                                break;
                            };
                            local.push((i, self.eval(config, partitions, curves)));
                        }
                        local
                    })
                })
                .collect();
            let mut indexed = Vec::with_capacity(configs.len());
            for handle in handles {
                match handle.join() {
                    Ok(mut results) => indexed.append(&mut results),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            indexed
        });
        let mut indexed = match scope_result {
            Ok(results) => results,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        // Deterministic, ordered collection: grid order regardless of
        // which worker finished when.
        indexed.sort_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, result)| result).collect()
    }

    /// Evaluates every configuration against a columnar shard directory,
    /// streaming requests from disk instead of the in-memory trace.
    ///
    /// Each grid point replays the whole directory through
    /// [`Simulator::replay_stats`] in bounded batches of `batch_rows`
    /// requests (`0` picks the reader default), so peak memory per worker
    /// is one request batch — independent of trace size. Statistics equal
    /// [`Sweep::run`] over the materialized trace, point for point, and
    /// results come back in grid order. The Mattson shortcut needs the
    /// whole trace resident and is never taken here, so every point
    /// reports [`SweepEngine::Replay`]; the trace slice this sweep was
    /// constructed over is not consulted.
    ///
    /// The first shard-read error aborts the sweep.
    pub fn run_columnar(
        &self,
        reader: &ColumnarDirReader<Request>,
        configs: &[SimConfig],
        batch_rows: usize,
    ) -> Result<Vec<SweepResult>, HttplogError> {
        let workers = resolve_threads(self.threads, configs.len());
        let next = AtomicUsize::new(0);
        let scope_result = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move |_| {
                        let mut local: Vec<(usize, Result<SweepResult, HttplogError>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(config) = configs.get(i) else {
                                break;
                            };
                            local.push((i, self.eval_columnar(config, reader, batch_rows)));
                        }
                        local
                    })
                })
                .collect();
            let mut indexed = Vec::with_capacity(configs.len());
            for handle in handles {
                match handle.join() {
                    Ok(mut results) => indexed.append(&mut results),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            indexed
        });
        let mut indexed = match scope_result {
            Ok(results) => results,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        indexed.sort_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, result)| result).collect()
    }

    /// Evaluates one grid point from disk: a fresh (optionally fault-aware)
    /// simulator accumulates [`Simulator::replay_stats`] state across
    /// streamed batches — caches and counters live in the simulator, and
    /// fault windows key off request timestamps, so batch boundaries never
    /// change the outcome.
    fn eval_columnar(
        &self,
        config: &SimConfig,
        reader: &ColumnarDirReader<Request>,
        batch_rows: usize,
    ) -> Result<SweepResult, HttplogError> {
        let sim = match &self.faults {
            Some(plan) => Simulator::new(config).with_faults(plan.clone()),
            None => Simulator::new(config),
        };
        reader.scan(&ShardFilter::all(), batch_rows, |batch| {
            sim.replay_stats(batch);
        })?;
        Ok(SweepResult {
            config: config.clone(),
            stats: sim.stats(),
            engine: SweepEngine::Replay,
        })
    }

    /// Evaluates one grid point.
    fn eval(
        &self,
        config: &SimConfig,
        partitions: &BTreeMap<usize, RoutePartition>,
        curves: &BTreeMap<usize, MattsonCurve>,
    ) -> SweepResult {
        let ppr = config.pops_per_region.max(1);
        if let Some(plan) = &self.faults {
            // Degraded evaluation: one fault-aware simulator per point.
            // `replay_stats` partitions by effective PoP and keeps
            // escalating points serial, so results are deterministic at
            // any thread count.
            let sim = Simulator::new(config).with_faults(plan.clone());
            return SweepResult {
                config: config.clone(),
                stats: sim.replay_stats(self.requests),
                engine: SweepEngine::Replay,
            };
        }
        if mattson_eligible(config) {
            if let Some(curve) = curves.get(&ppr) {
                if curve.exact_at(config.cache_capacity_bytes) {
                    return SweepResult {
                        config: config.clone(),
                        stats: curve.stats_at(config.cache_capacity_bytes),
                        engine: SweepEngine::Mattson,
                    };
                }
            }
        }
        let escalates = config.cooperative || config.parent_capacity_bytes.is_some();
        let stats = if escalates {
            // Serial, in trace order: cross-PoP probes see one
            // deterministic interleaving.
            let sim = Simulator::new(config);
            for req in self.requests {
                sim.serve_stats(req);
            }
            sim.stats()
        } else {
            match partitions.get(&ppr) {
                Some(partition) => replay_partitioned(self.requests, partition, config),
                // Unreachable: `run` builds a partition for every ppr.
                None => ServeStats::new(),
            }
        };
        SweepResult {
            config: config.clone(),
            stats,
            engine: SweepEngine::Replay,
        }
    }
}

/// Counters-only replay of one non-escalating configuration over a shared
/// partition: each PoP runs its cache to completion with zero locking and
/// zero record materialization. Statistics equal
/// [`Simulator::replay`] + [`Simulator::stats`] for the same trace.
fn replay_partitioned(
    requests: &[Request],
    partition: &RoutePartition,
    config: &SimConfig,
) -> ServeStats {
    let mut total = ServeStats::new();
    for indices in partition.per_pop() {
        let mut cache = build_policy(config);
        let mut stats = ServeStats::new();
        for &i in indices {
            let Some(req) = requests.get(i as usize) else {
                continue;
            };
            let (status, cache_status, bytes) = serve_outcome(cache.as_mut(), req, None);
            stats.record(req.object, status, cache_status.is_hit(), bytes);
        }
        total.merge(&stats);
    }
    total
}

/// Whether a configuration can be answered from the LRU stack curve
/// (subject to the curve's own [`MattsonCurve::exact_at`] capacity check).
fn mattson_eligible(config: &SimConfig) -> bool {
    config.policy == PolicyKind::Lru
        && config.ttl_secs.is_none()
        && !config.cooperative
        && config.parent_capacity_bytes.is_none()
}

fn resolve_threads(threads: usize, tasks: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let chosen = if threads == 0 { hw } else { threads };
    chosen.clamp(1, tasks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_httplog::{ObjectId, Region, RequestKind, UserId};

    fn trace(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                let object = i % 7;
                Request {
                    timestamp: i,
                    object: ObjectId::new(object),
                    // Size is a function of the object id, so every key
                    // keeps one size (the Mattson exactness precondition).
                    object_size: 1_000 + object * 300,
                    user: UserId::new(i % 13),
                    region: Region::ALL[(i % 4) as usize],
                    kind: RequestKind::Full,
                    ..Request::example()
                }
            })
            .collect()
    }

    #[test]
    fn empty_grid_and_empty_trace() {
        assert!(Sweep::new(&[]).run(&[]).is_empty());
        let results = Sweep::new(&[]).run(&[SimConfig::default_edge()]);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].stats, ServeStats::new());
    }

    #[test]
    fn results_follow_grid_order() {
        let requests = trace(200);
        let grid: Vec<SimConfig> = [4_000_000u64, 2_000_000, 8_000_000]
            .iter()
            .map(|&cap| SimConfig::default_edge().with_capacity(cap))
            .collect();
        let results = Sweep::new(&requests).run(&grid);
        let caps: Vec<u64> = results
            .iter()
            .map(|r| r.config.cache_capacity_bytes)
            .collect();
        assert_eq!(caps, vec![4_000_000, 2_000_000, 8_000_000]);
    }

    #[test]
    fn lru_points_use_mattson_and_match_replay() {
        let requests = trace(400);
        let grid = vec![
            SimConfig::default_edge().with_capacity(3_000_000),
            SimConfig::default_edge()
                .with_policy(PolicyKind::Fifo)
                .with_capacity(3_000_000),
        ];
        let results = Sweep::new(&requests).run(&grid);
        assert_eq!(results[0].engine, SweepEngine::Mattson);
        assert_eq!(results[1].engine, SweepEngine::Replay);
        for (config, result) in grid.iter().zip(&results) {
            let sim = Simulator::new(config);
            sim.replay(requests.clone());
            assert_eq!(result.stats, sim.stats(), "policy {}", config.policy);
        }
    }

    #[test]
    fn tiny_capacity_falls_back_to_replay() {
        // Capacity below the largest object: stack inclusion does not
        // apply, so the LRU point must be replayed.
        let requests = trace(100);
        let grid = vec![SimConfig::default_edge().with_capacity(10)];
        let results = Sweep::new(&requests).run(&grid);
        assert_eq!(results[0].engine, SweepEngine::Replay);
        let sim = Simulator::new(&grid[0]);
        sim.replay(requests.clone());
        assert_eq!(results[0].stats, sim.stats());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let requests = trace(300);
        let grid: Vec<SimConfig> = (1..=6u64)
            .map(|i| SimConfig::default_edge().with_capacity(i * 1_500_000))
            .collect();
        let serial = Sweep::new(&requests).with_threads(1).run(&grid);
        for threads in [2, 3, 8] {
            let parallel = Sweep::new(&requests).with_threads(threads).run(&grid);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn escalating_points_are_deterministic() {
        let requests = trace(300);
        let grid = vec![
            SimConfig::default_edge()
                .with_capacity(2_000_000)
                .with_cooperative(),
            SimConfig {
                pops_per_region: 2,
                ..SimConfig::default_edge()
            }
            .with_capacity(2_000_000)
            .with_parent(8_000_000),
        ];
        let a = Sweep::new(&requests).with_threads(2).run(&grid);
        let b = Sweep::new(&requests).with_threads(1).run(&grid);
        assert_eq!(a, b);
        assert_eq!(a[0].engine, SweepEngine::Replay);
    }

    fn spool(name: &str, requests: &[Request]) -> (std::path::PathBuf, ColumnarDirReader<Request>) {
        use oat_httplog::ColumnarDirWriter;
        let dir = std::env::temp_dir().join("oat-sweep-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        let mut writer = ColumnarDirWriter::new(&dir, "req", 96).expect("create writer");
        writer.push_batch(requests).expect("spool");
        writer.finish().expect("finish");
        let reader = ColumnarDirReader::open(&dir, "req").expect("open dir");
        (dir, reader)
    }

    #[test]
    fn run_columnar_matches_run() {
        let requests = trace(400);
        let (dir, reader) = spool("matches-run", &requests);
        // Mixed grid: a Mattson-eligible LRU point, a FIFO point, and an
        // escalating cooperative point.
        let grid = vec![
            SimConfig::default_edge().with_capacity(3_000_000),
            SimConfig::default_edge()
                .with_policy(PolicyKind::Fifo)
                .with_capacity(3_000_000),
            SimConfig::default_edge()
                .with_capacity(2_000_000)
                .with_cooperative(),
        ];
        let in_memory = Sweep::new(&requests).run(&grid);
        let columnar = Sweep::new(&requests)
            .run_columnar(&reader, &grid, 64)
            .expect("columnar sweep");
        assert_eq!(columnar.len(), in_memory.len());
        for (mem, col) in in_memory.iter().zip(&columnar) {
            assert_eq!(mem.config, col.config);
            assert_eq!(mem.stats, col.stats, "policy {}", mem.config.policy);
            // The disk path never takes the Mattson shortcut.
            assert_eq!(col.engine, SweepEngine::Replay);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_columnar_thread_count_does_not_change_results() {
        let requests = trace(300);
        let (dir, reader) = spool("threads", &requests);
        let grid: Vec<SimConfig> = (1..=5u64)
            .map(|i| SimConfig::default_edge().with_capacity(i * 1_500_000))
            .collect();
        let serial = Sweep::new(&requests)
            .with_threads(1)
            .run_columnar(&reader, &grid, 50)
            .expect("serial");
        for threads in [2, 4] {
            let parallel = Sweep::new(&requests)
                .with_threads(threads)
                .run_columnar(&reader, &grid, 50)
                .expect("parallel");
            assert_eq!(serial, parallel, "threads={threads}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulted_run_columnar_matches_run() {
        let requests = trace(400);
        let (dir, reader) = spool("faulted", &requests);
        let plan = FaultPlan::sample(0xAB, 400, 4);
        let grid: Vec<SimConfig> = [2_000_000u64, 8_000_000]
            .iter()
            .map(|&cap| SimConfig::default_edge().with_capacity(cap))
            .collect();
        let in_memory = Sweep::new(&requests).with_faults(plan.clone()).run(&grid);
        let columnar = Sweep::new(&requests)
            .with_faults(plan)
            .run_columnar(&reader, &grid, 64)
            .expect("columnar sweep");
        assert_eq!(in_memory, columnar);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulted_sweep_matches_independent_simulation() {
        let requests = trace(400);
        let plan = FaultPlan::sample(0xAB, 400, 4);
        // An A1-shaped grid: LRU capacity sweep.
        let grid: Vec<SimConfig> = [2_000_000u64, 4_000_000, 8_000_000]
            .iter()
            .map(|&cap| SimConfig::default_edge().with_capacity(cap))
            .collect();
        let results = Sweep::new(&requests).with_faults(plan.clone()).run(&grid);
        for (config, result) in grid.iter().zip(&results) {
            assert_eq!(result.engine, SweepEngine::Replay, "faults bypass Mattson");
            let sim = Simulator::new(config).with_faults(plan.clone());
            assert_eq!(
                result.stats,
                sim.replay_stats(&requests),
                "counter-for-counter"
            );
        }
        // The plan actually degraded traffic somewhere in the grid.
        assert!(results
            .iter()
            .any(|r| r.stats.shed + r.stats.stale_hits + r.stats.degraded_hits > 0));
    }

    #[test]
    fn faulted_sweep_is_thread_invariant() {
        let requests = trace(300);
        let plan = FaultPlan::sample(9, 300, 4);
        let grid: Vec<SimConfig> = (1..=4u64)
            .map(|i| SimConfig::default_edge().with_capacity(i * 1_500_000))
            .collect();
        let serial = Sweep::new(&requests)
            .with_threads(1)
            .with_faults(plan.clone())
            .run(&grid);
        for threads in [2, 4] {
            let parallel = Sweep::new(&requests)
                .with_threads(threads)
                .with_faults(plan.clone())
                .run(&grid);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn partition_covers_every_request_once() {
        let requests = trace(500);
        let topo = Topology::new(3);
        let partition = RoutePartition::build(&topo, &requests);
        assert_eq!(partition.pops_per_region(), 3);
        let mut seen = vec![false; requests.len()];
        for indices in partition.per_pop() {
            for &i in indices {
                assert!(!seen[i as usize], "request partitioned twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Within a PoP, indices stay in trace order.
        for indices in partition.per_pop() {
            assert!(indices.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn engine_display_names() {
        assert_eq!(SweepEngine::Mattson.to_string(), "mattson");
        assert_eq!(SweepEngine::Replay.to_string(), "replay");
    }
}
