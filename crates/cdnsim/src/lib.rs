//! A multi-PoP CDN edge simulator.
//!
//! The paper measures traffic at a commercial CDN whose internals are
//! proprietary; this crate is the substitution (DESIGN.md §1): a
//! discrete-event edge model that consumes the pre-response
//! [`Request`](oat_httplog::Request) stream from `oat-workload` and emits
//! finished [`LogRecord`](oat_httplog::LogRecord)s with realistic cache
//! statuses and HTTP response codes (200/204/206/304/403/416 — Fig 16).
//!
//! Components:
//!
//! * [`cache`] — LRU / LFU / FIFO / 2Q / SLRU / infinite eviction policies
//!   behind one trait, plus TTL and size-tiered wrappers for the paper's
//!   §IV-B cache-configuration implications.
//! * [`topology`] — four-continent PoP placement and nearest-PoP routing.
//! * [`simulator`] — HTTP semantics (range chunking, conditional
//!   revalidation, hot-link rejection) over per-PoP caches, with parallel
//!   trace replay.
//! * [`push`] — popularity-driven push placement (the paper's "push copies
//!   of popular adult objects closer to end-users").
//! * [`stats`] — hit ratios, byte savings, per-object and per-status
//!   accounting feeding Figures 15–16.
//! * [`sweep`] — single-pass evaluation of whole configuration grids
//!   (policy × capacity × TTL × topology) over one shared trace, backed by
//!   [`mattson`]'s exact `O(n log n)` multi-capacity LRU hit curve.
//! * [`faults`] — a deterministic fault-injection schedule (PoP outages,
//!   origin brownouts, latency inflation, capacity pressure) and the
//!   graceful-degradation semantics (failover, bounded retry with seeded
//!   jitter, stale-while-revalidate, load shedding) the simulator applies
//!   when one is attached.
//!
//! # Example
//!
//! ```
//! use oat_cdnsim::{SimConfig, Simulator};
//! use oat_httplog::Request;
//!
//! let sim = Simulator::new(&SimConfig::default_edge());
//! let record = sim.serve(Request::example());
//! assert!(record.status.is_success());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod faults;
pub mod latency;
pub mod mattson;
pub mod push;
pub mod simulator;
pub mod stats;
pub mod sweep;
pub mod topology;

pub use cache::{CacheKey, CachePolicy, PolicyKind};
pub use faults::{FaultClock, FaultPlan, FaultPlanError, RetryPolicy, Window};
pub use latency::{LatencyModel, LatencySummary};
pub use mattson::MattsonCurve;
pub use push::{cacheable_key, plan_push, Placement};
pub use simulator::{SimConfig, Simulator};
pub use stats::ServeStats;
pub use sweep::{RoutePartition, Sweep, SweepEngine, SweepResult};
pub use topology::Topology;
