//! PoP topology and request routing.
//!
//! The paper (§III): *"A CDN operator typically places content at multiple
//! geographically distributed data centers. A user's request … is
//! redirected to the closest data center via DNS redirection, anycast, or
//! other CDN-specific methods."* We model that as: each region hosts
//! `pops_per_region` PoPs, and a user is stably mapped (by id hash) to one
//! PoP in their region.

use oat_httplog::{PopId, Region, UserId};
use serde::{Deserialize, Serialize};

/// The set of PoPs and the region → PoP routing function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    pops_per_region: usize,
}

impl Topology {
    /// Creates a topology with `pops_per_region` PoPs in each of the four
    /// regions.
    ///
    /// # Panics
    ///
    /// Panics if `pops_per_region == 0`.
    pub fn new(pops_per_region: usize) -> Self {
        assert!(pops_per_region > 0, "each region needs at least one PoP");
        Self { pops_per_region }
    }

    /// Total number of PoPs.
    pub fn pop_count(&self) -> usize {
        self.pops_per_region * Region::ALL.len()
    }

    /// PoPs per region.
    pub fn pops_per_region(&self) -> usize {
        self.pops_per_region
    }

    /// Routes a user in `region` to their (stable) closest PoP.
    pub fn route(&self, region: Region, user: UserId) -> PopId {
        let base = region.code() as usize * self.pops_per_region;
        // SplitMix-style stable hash of the user id.
        let mut h = user.raw().wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        let slot = (h % self.pops_per_region as u64) as usize;
        PopId::new((base + slot) as u16)
    }

    /// The region a PoP belongs to, if the id is valid for this topology.
    pub fn pop_region(&self, pop: PopId) -> Option<Region> {
        let idx = pop.raw() as usize;
        if idx >= self.pop_count() {
            return None;
        }
        Region::from_code((idx / self.pops_per_region) as u8)
    }

    /// All PoP ids.
    pub fn pops(&self) -> impl Iterator<Item = PopId> + '_ {
        (0..self.pop_count()).map(|i| PopId::new(i as u16))
    }

    /// The other PoPs in `pop`'s region, in deterministic wrap-around
    /// order starting just after `pop` — the failover candidate sequence
    /// when `pop` is down. Empty for an invalid `pop` or a one-PoP region.
    pub fn siblings(&self, pop: PopId) -> impl Iterator<Item = PopId> + '_ {
        let idx = pop.raw() as usize;
        let ppr = self.pops_per_region;
        let base = (idx / ppr) * ppr;
        let take = if idx < self.pop_count() { ppr - 1 } else { 0 };
        (1..ppr)
            .take(take)
            .map(move |step| PopId::new((base + (idx - base + step) % ppr) as u16))
    }
}

impl Default for Topology {
    /// One PoP per continent — the smallest realistic deployment.
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one PoP")]
    fn zero_pops_panics() {
        let _ = Topology::new(0);
    }

    #[test]
    fn routing_is_stable_and_regional() {
        let topo = Topology::new(3);
        assert_eq!(topo.pop_count(), 12);
        for region in Region::ALL {
            for uid in 0..200u64 {
                let user = UserId::new(uid * 7919);
                let pop = topo.route(region, user);
                assert_eq!(topo.route(region, user), pop, "stable routing");
                assert_eq!(topo.pop_region(pop), Some(region), "PoP in user region");
            }
        }
    }

    #[test]
    fn users_spread_across_regional_pops() {
        let topo = Topology::new(4);
        let mut seen = std::collections::HashSet::new();
        for uid in 0..1_000u64 {
            seen.insert(topo.route(Region::Europe, UserId::new(uid)));
        }
        assert_eq!(seen.len(), 4, "all PoPs of the region receive users");
    }

    #[test]
    fn siblings_wrap_within_the_region() {
        let topo = Topology::new(3);
        // Europe is region code 1 → PoPs 3, 4, 5.
        let sibs: Vec<u16> = topo.siblings(PopId::new(4)).map(|p| p.raw()).collect();
        assert_eq!(sibs, vec![5, 3], "wrap-around order, self excluded");
        let sibs: Vec<u16> = topo.siblings(PopId::new(3)).map(|p| p.raw()).collect();
        assert_eq!(sibs, vec![4, 5]);
        for pop in topo.pops() {
            let region = topo.pop_region(pop);
            for sib in topo.siblings(pop) {
                assert_ne!(sib, pop, "a PoP is not its own sibling");
                assert_eq!(topo.pop_region(sib), region, "siblings share the region");
            }
        }
    }

    #[test]
    fn siblings_edge_cases() {
        let single = Topology::new(1);
        assert_eq!(single.siblings(PopId::new(2)).count(), 0, "one-PoP region");
        let topo = Topology::new(2);
        assert_eq!(topo.siblings(PopId::new(99)).count(), 0, "invalid PoP");
    }

    #[test]
    fn pop_region_bounds() {
        let topo = Topology::default();
        assert_eq!(topo.pop_count(), 4);
        assert_eq!(topo.pop_region(PopId::new(0)), Some(Region::NorthAmerica));
        assert_eq!(topo.pop_region(PopId::new(3)), Some(Region::Asia));
        assert_eq!(topo.pop_region(PopId::new(4)), None);
        assert_eq!(topo.pops().count(), 4);
    }
}
