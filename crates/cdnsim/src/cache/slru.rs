//! Segmented LRU.

use super::core_lru::LruCore;
use super::{CacheKey, CachePolicy};

/// Segmented LRU: new admissions enter a *probationary* segment; a hit
/// promotes an entry to the *protected* segment. Protected overflow demotes
/// back to probation, probation overflow leaves the cache.
///
/// The protected segment gets 80 % of the byte budget by default, matching
/// common CDN configurations.
#[derive(Debug)]
pub struct SlruCache {
    probation: LruCore,
    protected: LruCore,
    protected_capacity: u64,
    capacity: u64,
    evictions: u64,
}

impl SlruCache {
    /// Creates an SLRU cache with an 80 % protected segment.
    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_protected_fraction(capacity_bytes, 0.8)
    }

    /// Creates an SLRU cache with the given protected-segment fraction
    /// (clamped to `[0, 1]`).
    pub fn with_protected_fraction(capacity_bytes: u64, fraction: f64) -> Self {
        let fraction = fraction.clamp(0.0, 1.0);
        Self {
            probation: LruCore::new(),
            protected: LruCore::new(),
            protected_capacity: (capacity_bytes as f64 * fraction) as u64,
            capacity: capacity_bytes,
            evictions: 0,
        }
    }

    /// Evicts from probation until total use fits `size` more bytes.
    fn evict_for(&mut self, size: u64) {
        while self.probation.bytes() + self.protected.bytes() + size > self.capacity {
            if self.probation.pop_lru().is_some() {
                self.evictions += 1;
                continue;
            }
            // Probation empty: evict from protected directly.
            if self.protected.pop_lru().is_some() {
                self.evictions += 1;
                continue;
            }
            break;
        }
    }

    fn promote(&mut self, key: CacheKey, size: u64) {
        self.probation.remove(&key);
        // oat-lint: allow(bounded-memory) -- demotion loop below caps protected bytes
        self.protected.insert(key, size);
        // Demote protected overflow into probation (may cascade to real
        // evictions).
        while self.protected.bytes() > self.protected_capacity {
            let Some((demoted, dsize)) = self.protected.pop_lru() else {
                break;
            };
            // oat-lint: allow(bounded-memory) -- total-capacity eviction loop follows
            self.probation.insert(demoted, dsize);
        }
        // Demotions may have pushed total over capacity.
        while self.probation.bytes() + self.protected.bytes() > self.capacity {
            if self.probation.pop_lru().is_none() {
                break;
            }
            self.evictions += 1;
        }
    }
}

impl CachePolicy for SlruCache {
    fn request(&mut self, key: CacheKey, size: u64, now: u64) -> bool {
        if self.protected.touch(&key) {
            return true;
        }
        if let Some(actual) = self.probation.size_of(&key) {
            self.promote(key, actual);
            return true;
        }
        self.insert(key, size, now);
        false
    }

    fn insert(&mut self, key: CacheKey, size: u64, _now: u64) {
        if size > self.capacity || self.contains(&key) {
            return;
        }
        self.evict_for(size);
        self.probation.insert(key, size);
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.probation.contains(key) || self.protected.contains(key)
    }

    fn len(&self) -> usize {
        self.probation.len() + self.protected.len()
    }

    fn bytes_used(&self) -> u64 {
        self.probation.bytes() + self.protected.bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy_tests::key;
    use super::*;

    #[test]
    fn one_hit_wonders_stay_probationary() {
        let mut cache = SlruCache::new(50);
        // Hot entry, promoted by a second hit.
        cache.request(key(1), 10, 0);
        cache.request(key(1), 10, 1);
        // Scan of one-hit wonders.
        for i in 100..110 {
            cache.request(key(i), 10, i);
        }
        assert!(cache.contains(&key(1)), "promoted entry survives the scan");
    }

    #[test]
    fn protected_overflow_demotes() {
        let mut cache = SlruCache::with_protected_fraction(40, 0.5);
        // Promote three 10-byte entries; protected capacity is 20.
        for i in 1..=3 {
            cache.request(key(i), 10, i);
            cache.request(key(i), 10, i + 10);
        }
        // All three are still cached (demotion, not eviction).
        assert_eq!(cache.len(), 3);
        assert!(cache.bytes_used() <= 40);
    }

    #[test]
    fn probation_hit_promotes() {
        let mut cache = SlruCache::new(100);
        cache.request(key(1), 10, 0);
        assert!(cache.request(key(1), 10, 1));
        // Entry is now protected; a long scan cannot displace it.
        for i in 10..19 {
            cache.request(key(i), 10, i);
        }
        assert!(cache.contains(&key(1)));
    }
}
