//! Unbounded cache: the hit-ratio upper bound (compulsory misses only).

use super::{CacheKey, CachePolicy};
use std::collections::HashMap;

/// A cache that never evicts. Every miss is compulsory, so its hit ratio is
/// the ceiling any finite policy can reach on the same trace.
#[derive(Debug, Default)]
pub struct InfiniteCache {
    entries: HashMap<CacheKey, u64>,
    bytes: u64,
}

impl InfiniteCache {
    /// Creates an empty unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CachePolicy for InfiniteCache {
    fn request(&mut self, key: CacheKey, size: u64, now: u64) -> bool {
        if self.entries.contains_key(&key) {
            return true;
        }
        self.insert(key, size, now);
        false
    }

    fn insert(&mut self, key: CacheKey, size: u64, _now: u64) {
        if self.entries.insert(key, size).is_none() {
            self.bytes += size;
        }
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn bytes_used(&self) -> u64 {
        self.bytes
    }

    fn capacity_bytes(&self) -> u64 {
        u64::MAX
    }

    fn evictions(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy_tests::key;
    use super::*;

    #[test]
    fn never_evicts() {
        let mut cache = InfiniteCache::new();
        for i in 0..10_000 {
            cache.request(key(i), 1_000_000, i);
        }
        assert_eq!(cache.len(), 10_000);
        assert_eq!(cache.evictions(), 0);
        for i in 0..10_000 {
            assert!(cache.request(key(i), 1_000_000, i));
        }
    }

    #[test]
    fn bytes_accounting() {
        let mut cache = InfiniteCache::new();
        cache.insert(key(1), 5, 0);
        cache.insert(key(1), 5, 1); // duplicate ignored
        assert_eq!(cache.bytes_used(), 5);
        assert_eq!(cache.capacity_bytes(), u64::MAX);
    }
}
