//! Exact least-frequently-used eviction.

use super::{CacheKey, CachePolicy};
use std::collections::{BTreeSet, HashMap};

/// Byte-bounded exact LFU with LRU tie-breaking among equal frequencies.
///
/// Frequency counts persist only while the entry is cached (no ghost
/// history), which is the classic in-cache LFU the caching literature
/// compares against.
#[derive(Debug)]
pub struct LfuCache {
    /// (frequency, recency-sequence, key) — the first element is the
    /// eviction victim.
    order: BTreeSet<(u64, u64, CacheKey)>,
    entries: HashMap<CacheKey, EntryMeta>,
    bytes: u64,
    capacity: u64,
    evictions: u64,
    next_seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    freq: u64,
    seq: u64,
    size: u64,
}

impl LfuCache {
    /// Creates an LFU cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            order: BTreeSet::new(),
            entries: HashMap::new(),
            bytes: 0,
            capacity: capacity_bytes,
            evictions: 0,
            next_seq: 0,
        }
    }

    fn bump(&mut self, key: CacheKey) {
        let meta = self.entries.get_mut(&key).expect("bump of cached key");
        self.order.remove(&(meta.freq, meta.seq, key));
        meta.freq += 1;
        meta.seq = self.next_seq;
        self.next_seq += 1;
        // oat-lint: allow(bounded-memory) -- paired with the remove above: size is constant
        self.order.insert((meta.freq, meta.seq, key));
    }

    fn evict_for(&mut self, size: u64) {
        while self.bytes + size > self.capacity {
            let Some(&victim) = self.order.iter().next() else {
                break;
            };
            self.order.remove(&victim);
            let meta = self.entries.remove(&victim.2).expect("index consistency");
            self.bytes -= meta.size;
            self.evictions += 1;
        }
    }
}

impl CachePolicy for LfuCache {
    fn request(&mut self, key: CacheKey, size: u64, now: u64) -> bool {
        if self.entries.contains_key(&key) {
            self.bump(key);
            return true;
        }
        self.insert(key, size, now);
        false
    }

    fn insert(&mut self, key: CacheKey, size: u64, _now: u64) {
        if size > self.capacity {
            return;
        }
        if self.entries.contains_key(&key) {
            self.bump(key);
            return;
        }
        self.evict_for(size);
        let meta = EntryMeta {
            freq: 1,
            seq: self.next_seq,
            size,
        };
        self.next_seq += 1;
        self.order.insert((meta.freq, meta.seq, key));
        self.entries.insert(key, meta);
        self.bytes += size;
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn bytes_used(&self) -> u64 {
        self.bytes
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy_tests::key;
    use super::*;

    #[test]
    fn frequent_entries_survive_scans() {
        let mut cache = LfuCache::new(30);
        // Make key 1 hot.
        for t in 0..5 {
            cache.request(key(1), 10, t);
        }
        // Scan through many one-hit wonders.
        for i in 100..120 {
            cache.request(key(i), 10, i);
        }
        assert!(cache.contains(&key(1)), "hot object survives LFU scans");
    }

    #[test]
    fn ties_broken_by_recency() {
        let mut cache = LfuCache::new(30);
        cache.request(key(1), 10, 0);
        cache.request(key(2), 10, 1);
        cache.request(key(3), 10, 2);
        // All frequency 1; oldest (1) is the victim.
        cache.request(key(4), 10, 3);
        assert!(!cache.contains(&key(1)));
        assert!(cache.contains(&key(2)));
    }

    #[test]
    fn hit_increments_frequency() {
        let mut cache = LfuCache::new(20);
        cache.request(key(1), 10, 0);
        cache.request(key(2), 10, 1);
        cache.request(key(2), 10, 2); // freq(2)=2
        cache.request(key(3), 10, 3); // evicts 1 (freq 1)
        assert!(!cache.contains(&key(1)));
        assert!(cache.contains(&key(2)));
        assert!(cache.contains(&key(3)));
    }
}
