//! Size-tiered cache: separate small-object and large-object platforms.
//!
//! The paper (§IV-B): *"ISPs/CDNs can employ separate caching platforms to
//! optimally serve small and large sized objects. The caching platform for
//! small objects can be optimized for high-throughput I/O; whereas, the
//! caching platform for large objects can be optimized for more storage
//! capacity."* Ablation A2 compares this split against one unified cache.

use super::{CacheKey, CachePolicy};

/// Routes requests to one of two inner caches by object size.
#[derive(Debug)]
pub struct TieredCache {
    small: Box<dyn CachePolicy>,
    large: Box<dyn CachePolicy>,
    threshold_bytes: u64,
}

impl TieredCache {
    /// Creates a tiered cache: objects `<= threshold_bytes` go to `small`,
    /// the rest to `large`.
    pub fn new(
        small: Box<dyn CachePolicy>,
        large: Box<dyn CachePolicy>,
        threshold_bytes: u64,
    ) -> Self {
        Self {
            small,
            large,
            threshold_bytes,
        }
    }

    /// The size threshold separating the tiers.
    pub fn threshold_bytes(&self) -> u64 {
        self.threshold_bytes
    }

    fn tier_mut(&mut self, size: u64) -> &mut Box<dyn CachePolicy> {
        if size <= self.threshold_bytes {
            &mut self.small
        } else {
            &mut self.large
        }
    }
}

impl CachePolicy for TieredCache {
    fn request(&mut self, key: CacheKey, size: u64, now: u64) -> bool {
        self.tier_mut(size).request(key, size, now)
    }

    fn insert(&mut self, key: CacheKey, size: u64, now: u64) {
        self.tier_mut(size).insert(key, size, now);
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.small.contains(key) || self.large.contains(key)
    }

    fn peek(&self, key: &CacheKey, now: u64) -> bool {
        self.small.peek(key, now) || self.large.peek(key, now)
    }

    fn len(&self) -> usize {
        self.small.len() + self.large.len()
    }

    fn bytes_used(&self) -> u64 {
        self.small.bytes_used() + self.large.bytes_used()
    }

    fn capacity_bytes(&self) -> u64 {
        self.small
            .capacity_bytes()
            .saturating_add(self.large.capacity_bytes())
    }

    fn evictions(&self) -> u64 {
        self.small.evictions() + self.large.evictions()
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy_tests::key;
    use super::super::{LruCache, PolicyKind};
    use super::*;

    fn tiered() -> TieredCache {
        TieredCache::new(
            Box::new(LruCache::new(100)),
            Box::new(LruCache::new(1_000)),
            50,
        )
    }

    #[test]
    fn routes_by_size() {
        let mut cache = tiered();
        cache.request(key(1), 10, 0); // small tier
        cache.request(key(2), 500, 1); // large tier
        assert!(cache.contains(&key(1)));
        assert!(cache.contains(&key(2)));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes_used(), 510);
        assert_eq!(cache.capacity_bytes(), 1_100);
        assert_eq!(cache.threshold_bytes(), 50);
    }

    #[test]
    fn large_scan_does_not_evict_small_objects() {
        let mut cache = tiered();
        for i in 0..10 {
            cache.request(key(i), 10, i); // fill small tier
        }
        for i in 100..120 {
            cache.request(key(i), 400, i); // churn the large tier
        }
        // The small working set is untouched by large-object churn.
        for i in 0..10 {
            assert!(
                cache.contains(&key(i)),
                "small object {i} evicted by large scan"
            );
        }
    }

    #[test]
    fn builds_from_policy_kinds() {
        let mut cache =
            TieredCache::new(PolicyKind::Slru.build(64), PolicyKind::Lru.build(512), 32);
        assert!(!cache.request(key(1), 16, 0));
        assert!(cache.request(key(1), 16, 1));
    }
}
