//! Cache eviction policies.
//!
//! The CDN in the paper runs proprietary caching; this module provides the
//! standard policy family (LRU, LFU, FIFO, 2Q, SLRU, plus an infinite
//! upper bound), all behind one object-safe [`CachePolicy`] trait so the
//! simulator and the ablation benches can swap them freely. A [`TtlCache`]
//! wrapper adds expiry-based revalidation (ablation A5) and a
//! [`TieredCache`] splits small/large objects across two caches — the
//! paper's §IV-B suggestion of separate platforms for thumbnails vs videos
//! (ablation A2).

mod admit;
mod core_lru;
mod fifo;
mod gdsf;
mod infinite;
mod lfu;
mod lru;
mod slru;
mod tiered;
mod ttl;
mod twoq;

pub use admit::AdmitOnSecond;
pub use fifo::FifoCache;
pub use gdsf::GdsfCache;
pub use infinite::InfiniteCache;
pub use lfu::LfuCache;
pub use lru::LruCache;
pub use slru::SlruCache;
pub use tiered::TieredCache;
pub use ttl::TtlCache;
pub use twoq::TwoQCache;

use oat_httplog::ObjectId;
use serde::{Deserialize, Serialize};

/// A cacheable unit: one chunk of one object (chunk 0 for whole objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheKey {
    /// The object.
    pub object: ObjectId,
    /// Chunk index within the object (0 for unchunked content).
    pub chunk: u32,
}

impl CacheKey {
    /// Key for a whole (unchunked) object.
    pub fn whole(object: ObjectId) -> Self {
        Self { object, chunk: 0 }
    }

    /// Key for one chunk.
    pub fn chunk(object: ObjectId, chunk: u32) -> Self {
        Self { object, chunk }
    }
}

/// An eviction policy with byte-capacity accounting.
///
/// `request` performs the full lookup-or-admit cycle: on hit it refreshes
/// the entry per the policy and returns `true`; on miss it admits the entry
/// (evicting as needed) and returns `false`. Objects larger than the
/// capacity are never admitted.
pub trait CachePolicy: Send + std::fmt::Debug {
    /// Look up `key`; admit on miss. Returns whether it was a hit.
    fn request(&mut self, key: CacheKey, size: u64, now: u64) -> bool;

    /// Admits `key` without counting a request (push/prefetch placement).
    fn insert(&mut self, key: CacheKey, size: u64, now: u64);

    /// Whether `key` is currently cached (no recency side effects).
    fn contains(&self, key: &CacheKey) -> bool;

    /// Whether a `request` for `key` at `now` would be a hit, without any
    /// side effects (no recency bump, no admission, no TTL refresh).
    ///
    /// Defaults to [`contains`](Self::contains); freshness-aware wrappers
    /// ([`TtlCache`]) also require freshness. The simulator uses this
    /// during origin brownouts to decide between a normal hit, a
    /// stale-while-revalidate serve (present but not peek-able), and a
    /// load-shed `503` — without spuriously admitting or refreshing
    /// entries whose origin fetch failed.
    fn peek(&self, key: &CacheKey, now: u64) -> bool {
        let _ = now;
        self.contains(key)
    }

    /// Number of cached entries.
    fn len(&self) -> usize;

    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently cached.
    fn bytes_used(&self) -> u64;

    /// Capacity in bytes (`u64::MAX` for unbounded).
    fn capacity_bytes(&self) -> u64;

    /// Total evictions so far.
    fn evictions(&self) -> u64;
}

/// Selector for constructing a policy by name (benches, config files).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Least-recently-used.
    Lru,
    /// Least-frequently-used (exact).
    Lfu,
    /// First-in-first-out.
    Fifo,
    /// 2Q (Johnson & Shasha).
    TwoQ,
    /// GreedyDual-Size-Frequency (size-aware, Cherkasova 1998).
    Gdsf,
    /// Segmented LRU.
    Slru,
    /// Unbounded cache (upper bound on achievable hit ratio).
    Infinite,
}

impl PolicyKind {
    /// All bounded policies plus the infinite upper bound.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Fifo,
        PolicyKind::TwoQ,
        PolicyKind::Gdsf,
        PolicyKind::Slru,
        PolicyKind::Infinite,
    ];

    /// Builds a boxed policy with the given byte capacity.
    pub fn build(self, capacity_bytes: u64) -> Box<dyn CachePolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruCache::new(capacity_bytes)),
            PolicyKind::Lfu => Box::new(LfuCache::new(capacity_bytes)),
            PolicyKind::Fifo => Box::new(FifoCache::new(capacity_bytes)),
            PolicyKind::TwoQ => Box::new(TwoQCache::new(capacity_bytes)),
            PolicyKind::Gdsf => Box::new(GdsfCache::new(capacity_bytes)),
            PolicyKind::Slru => Box::new(SlruCache::new(capacity_bytes)),
            PolicyKind::Infinite => Box::new(InfiniteCache::new()),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Fifo => "fifo",
            PolicyKind::TwoQ => "2q",
            PolicyKind::Gdsf => "gdsf",
            PolicyKind::Slru => "slru",
            PolicyKind::Infinite => "infinite",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
pub(crate) mod policy_tests {
    use super::*;

    pub fn key(i: u64) -> CacheKey {
        CacheKey::whole(ObjectId::new(i))
    }

    /// Shared conformance suite every bounded policy must pass.
    pub fn conformance(mut cache: Box<dyn CachePolicy>, capacity: u64) {
        assert_eq!(cache.capacity_bytes(), capacity);
        assert!(cache.is_empty());
        // Cold miss then warm hit.
        assert!(!cache.request(key(1), 10, 0));
        assert!(cache.request(key(1), 10, 1));
        assert!(cache.contains(&key(1)));
        assert!(cache.peek(&key(1), 2), "peek matches contains by default");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes_used(), 10);
        // Never exceeds capacity.
        for i in 2..200 {
            cache.request(key(i), 10, i);
            assert!(cache.bytes_used() <= capacity, "capacity exceeded");
        }
        assert!(cache.evictions() > 0, "evictions must occur");
        // Oversized object is not admitted.
        let before = cache.bytes_used();
        assert!(!cache.request(key(9999), capacity + 1, 1000));
        assert!(!cache.contains(&key(9999)));
        assert_eq!(cache.bytes_used(), before);
        // Insert (push) admits without a request.
        cache.insert(key(5000), 10, 1001);
        assert!(cache.contains(&key(5000)));
        assert!(cache.bytes_used() <= capacity);
    }

    #[test]
    fn all_policies_pass_conformance() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Lfu,
            PolicyKind::Fifo,
            PolicyKind::TwoQ,
            PolicyKind::Gdsf,
            PolicyKind::Slru,
        ] {
            conformance(kind.build(100), 100);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(PolicyKind::Lru.to_string(), "lru");
        assert_eq!(PolicyKind::TwoQ.to_string(), "2q");
        assert_eq!(PolicyKind::Infinite.to_string(), "infinite");
        assert_eq!(PolicyKind::Gdsf.to_string(), "gdsf");
        assert_eq!(PolicyKind::ALL.len(), 7);
    }

    #[test]
    fn cache_key_constructors() {
        let k = CacheKey::whole(ObjectId::new(5));
        assert_eq!(k.chunk, 0);
        let c = CacheKey::chunk(ObjectId::new(5), 3);
        assert_eq!(c.chunk, 3);
        assert_ne!(k, c);
    }
}
