//! Least-recently-used eviction.

use super::core_lru::LruCore;
use super::{CacheKey, CachePolicy};

/// Classic byte-bounded LRU.
///
/// # Example
///
/// ```
/// use oat_cdnsim::cache::{CacheKey, CachePolicy, LruCache};
/// use oat_httplog::ObjectId;
///
/// let mut cache = LruCache::new(100);
/// let k = CacheKey::whole(ObjectId::new(1));
/// assert!(!cache.request(k, 60, 0)); // cold miss
/// assert!(cache.request(k, 60, 1));  // warm hit
/// ```
#[derive(Debug)]
pub struct LruCache {
    core: LruCore,
    capacity: u64,
    evictions: u64,
}

impl LruCache {
    /// Creates an LRU cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            core: LruCore::new(),
            capacity: capacity_bytes,
            evictions: 0,
        }
    }

    fn evict_for(&mut self, size: u64) {
        while self.core.bytes() + size > self.capacity {
            if self.core.pop_lru().is_none() {
                break;
            }
            self.evictions += 1;
        }
    }
}

impl CachePolicy for LruCache {
    fn request(&mut self, key: CacheKey, size: u64, now: u64) -> bool {
        if self.core.touch(&key) {
            return true;
        }
        self.insert(key, size, now);
        false
    }

    fn insert(&mut self, key: CacheKey, size: u64, _now: u64) {
        if size > self.capacity {
            return; // uncacheable
        }
        self.evict_for(size);
        self.core.insert(key, size);
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.core.contains(key)
    }

    fn len(&self) -> usize {
        self.core.len()
    }

    fn bytes_used(&self) -> u64 {
        self.core.bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy_tests::key;
    use super::*;

    #[test]
    fn evicts_least_recent_first() {
        let mut cache = LruCache::new(30);
        cache.request(key(1), 10, 0);
        cache.request(key(2), 10, 1);
        cache.request(key(3), 10, 2);
        cache.request(key(1), 10, 3); // 1 is now most recent
        cache.request(key(4), 10, 4); // evicts 2
        assert!(cache.contains(&key(1)));
        assert!(!cache.contains(&key(2)));
        assert!(cache.contains(&key(3)));
        assert!(cache.contains(&key(4)));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn large_object_evicts_many() {
        let mut cache = LruCache::new(30);
        for i in 0..3 {
            cache.request(key(i), 10, i);
        }
        cache.request(key(10), 25, 10);
        assert!(cache.contains(&key(10)));
        assert_eq!(cache.bytes_used(), 25);
        assert_eq!(cache.evictions(), 3);
    }

    #[test]
    fn scan_resistance_is_absent() {
        // Characteristic LRU weakness: a scan flushes the working set.
        let mut cache = LruCache::new(50);
        for i in 0..5 {
            cache.request(key(i), 10, i);
        }
        for i in 100..105 {
            cache.request(key(i), 10, i);
        }
        for i in 0..5 {
            assert!(!cache.contains(&key(i)));
        }
    }
}
